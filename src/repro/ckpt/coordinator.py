"""Master-side checkpoint epoch state machine and rollback splitting.

The :class:`CheckpointCoordinator` is deliberately pure: the master
calls it with facts (time, acks, deposits) and reads decisions back;
all message traffic and partition mutation stays in
``repro.runtime.master``.  The two re-partition helpers compute how a
dead slave's iterations at an epoch cut are divided among survivors:

- :func:`pipeline_repartition` splits each maximal run of dead slaves'
  contiguous block at its midpoint between the two adjacent live
  neighbours (one-sided when the run touches the edge of the ring), so
  the block distribution — and hence minimal boundary communication —
  is preserved.
- :func:`reduction_repartition` apportions the pooled dead units over
  the survivors proportionally to their measured rates, the same policy
  PR 3's reassignment uses for independent iterations.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..config import CheckpointConfig
from ..errors import PartitionError
from .model import CheckpointEpoch, SlaveSnapshot

__all__ = [
    "CheckpointCoordinator",
    "pipeline_repartition",
    "reduction_repartition",
]


class CheckpointCoordinator:
    """Epoch ledger: open -> (deposit per member) -> commit, or abort.

    At most one epoch is open at a time.  Only the latest *committed*
    epoch (plus the synthetic epoch 0, the initial state) is retained as
    a rollback target, matching the slaves' pruning of local snapshots.
    """

    def __init__(self, cfg: CheckpointConfig):
        self.cfg = cfg
        self.margin = cfg.barrier_margin
        self.next_epoch = 1
        self.open: CheckpointEpoch | None = None
        self.committed: CheckpointEpoch | None = None
        self.epoch0: CheckpointEpoch | None = None
        self.last_activity = 0.0
        # Lifetime counters (mirrored into ckpt.* metrics by the master).
        self.epochs_opened = 0
        self.epochs_committed = 0
        self.epochs_aborted = 0
        self.barrier_misses = 0

    # -- epoch lifecycle -------------------------------------------------

    def due(self, now: float) -> bool:
        """Is it time to initiate a new epoch?"""
        return (
            self.open is None
            and now - self.last_activity >= self.cfg.interval
        )

    def open_epoch(
        self,
        now: float,
        barrier: int,
        members: Sequence[int],
        cut: Mapping[int, Sequence[int]],
        boundaries: Sequence[int] | None,
        next_move_id: int,
        buddies: Mapping[int, int] | None = None,
    ) -> CheckpointEpoch:
        if self.open is not None:
            raise PartitionError("checkpoint epoch already open")
        epoch = CheckpointEpoch(
            epoch=self.next_epoch,
            barrier=barrier,
            opened_at=now,
            members=tuple(sorted(members)),
            cut={p: tuple(int(u) for u in units) for p, units in cut.items()},
            boundaries=None if boundaries is None else tuple(boundaries),
            next_move_id=next_move_id,
            placement=self.cfg.placement,
            buddies=dict(buddies or {}),
        )
        self.next_epoch += 1
        self.open = epoch
        self.epochs_opened += 1
        self.last_activity = now
        return epoch

    def deposit(self, pid: int, snapshot: SlaveSnapshot, now: float) -> bool:
        """Record a member's snapshot (or manifest); True on commit."""
        epoch = self.open
        if epoch is None or snapshot.epoch != epoch.epoch:
            return False  # late deposit for an aborted epoch: ignore
        if pid not in epoch.members:
            return False
        epoch.snapshots[pid] = snapshot
        if len(epoch.snapshots) == len(epoch.members):
            epoch.committed_at = now
            self.committed = epoch
            self.open = None
            self.epochs_committed += 1
            self.last_activity = now
            return True
        return False

    def abort(self, now: float, missed: bool = False) -> CheckpointEpoch | None:
        """Drop the open epoch (barrier miss, done report, or death)."""
        epoch = self.open
        if epoch is None:
            return None
        self.open = None
        self.epochs_aborted += 1
        self.last_activity = now
        if missed:
            self.barrier_misses += 1
            self.margin += 1  # place the next barrier further out
        return epoch

    def rollback_target(self) -> CheckpointEpoch:
        """The epoch survivors roll back to: latest committed, else 0."""
        if self.committed is not None:
            return self.committed
        if self.epoch0 is None:
            raise PartitionError("checkpoint coordinator has no epoch 0")
        return self.epoch0


# -- rollback re-partitioning ------------------------------------------


def pipeline_repartition(
    boundaries: Sequence[int], dead: Sequence[int]
) -> tuple[list[int], dict[int, list[tuple[int, list[int]]]]]:
    """Split dead slaves' blocks between adjacent live neighbours.

    ``boundaries`` is the epoch cut's block partition (slave ``s`` owned
    ``[boundaries[s], boundaries[s+1])``).  Returns the new boundaries
    and ``grants[receiver] = [(dead_pid, units), ...]`` listing which
    dead slave's snapshot each granted unit must be extracted from.

    Raises :class:`~repro.errors.PartitionError` when no live slave
    remains to adopt a dead run (the caller surfaces this as
    ``SlaveLostError``).
    """
    n = len(boundaries) - 1
    dead_set = {int(d) for d in dead}
    counts = [boundaries[s + 1] - boundaries[s] for s in range(n)]
    grants: dict[int, list[tuple[int, list[int]]]] = {}
    i = 0
    while i < n:
        if i not in dead_set:
            i += 1
            continue
        j = i
        while j + 1 < n and (j + 1) in dead_set:
            j += 1
        a, b = boundaries[i], boundaries[j + 1]
        left = i - 1 if i > 0 else None
        right = j + 1 if j + 1 < n else None
        if left is None and right is None:
            raise PartitionError(
                "no surviving slave can adopt the dead pipeline run "
                f"{sorted(dead_set)}"
            )
        if b > a:
            if left is not None and right is not None:
                mid = a + (b - a) // 2
            elif left is not None:
                mid = b
            else:
                mid = a
            for d in range(i, j + 1):
                da, db = boundaries[d], boundaries[d + 1]
                lpart = [u for u in range(da, db) if u < mid]
                rpart = [u for u in range(da, db) if u >= mid]
                if lpart and left is not None:
                    grants.setdefault(left, []).append((d, lpart))
                if rpart and right is not None:
                    grants.setdefault(right, []).append((d, rpart))
            if left is not None:
                counts[left] += mid - a
            if right is not None:
                counts[right] += b - mid
        for d in range(i, j + 1):
            counts[d] = 0
        i = j + 1
    new_boundaries = [int(boundaries[0])]
    for c in counts:
        new_boundaries.append(new_boundaries[-1] + c)
    return new_boundaries, grants


def reduction_repartition(
    cut: Mapping[int, Sequence[int]],
    live: Sequence[int],
    dead: Sequence[int],
    weights: Mapping[int, float],
) -> tuple[dict[int, list[int]], dict[int, list[tuple[int, list[int]]]]]:
    """Apportion dead slaves' units over survivors by measured rate.

    Returns ``(new_owned, grants)``: the complete post-rollback
    ownership map (live slaves keep their cut units plus adoptions;
    dead slaves own nothing) and the per-receiver grant source list.
    """
    # Imported lazily: repro.runtime's package init pulls in the master,
    # which imports this module — a module-level import here would make
    # ``import repro.ckpt`` order-dependent.
    from ..runtime.partition import proportional_counts

    live_list = sorted(int(p) for p in live)
    if not live_list:
        raise PartitionError("no surviving slave can adopt dead units")
    pool: list[tuple[int, int]] = []  # (dead pid, unit), sorted by unit
    for d in sorted(int(p) for p in dead):
        for u in cut.get(d, ()):
            pool.append((d, int(u)))
    pool.sort(key=lambda du: du[1])
    shares = proportional_counts(
        len(pool), [max(weights.get(p, 0.0), 0.0) for p in live_list]
    )
    new_owned: dict[int, list[int]] = {
        p: [int(u) for u in cut.get(p, ())] for p in live_list
    }
    grants: dict[int, list[tuple[int, list[int]]]] = {}
    idx = 0
    for p, share in zip(live_list, shares):
        chunk = pool[idx : idx + share]
        idx += share
        if not chunk:
            continue
        by_dead: dict[int, list[int]] = {}
        for d, u in chunk:
            by_dead.setdefault(d, []).append(u)
            new_owned[p].append(u)
        new_owned[p].sort()
        grants[p] = sorted(by_dead.items())
    return new_owned, grants
