"""Coordinated checkpoint/rollback for the failure-tolerant runtime.

PR 3's control plane recovers ``PARALLEL_MAP`` schedules by regranting a
dead slave's iterations from the master's global state — possible only
because independent iterations carry no cross-slave progress.  The
dependence-carrying shapes (``PIPELINE``, ``REDUCTION_FRONT``) need a
consistent *global cut* to restart from; this package provides it:

- :mod:`repro.ckpt.model` — the serializable snapshot artifacts: one
  :class:`~repro.ckpt.model.SlaveSnapshot` per slave per epoch and the
  master-side :class:`~repro.ckpt.model.CheckpointEpoch` ledger entry
  recording the cut (ownership, move-id horizon, barrier repetition).
- :mod:`repro.ckpt.coordinator` — the pure epoch state machine the
  master drives (open / ack / deposit / commit / abort) plus the
  rollback re-partitioning helpers that split a dead slave's iterations
  among survivors while preserving each shape's movement constraints.

The protocol itself (checkpoint barrier control messages, snapshot
deposits, rollback restore) lives in ``repro.runtime``; everything here
is side-effect-free so it can be strictly typed and property-tested.
"""

from .coordinator import (
    CheckpointCoordinator,
    pipeline_repartition,
    reduction_repartition,
)
from .model import CheckpointEpoch, SlaveSnapshot

__all__ = [
    "CheckpointCoordinator",
    "CheckpointEpoch",
    "SlaveSnapshot",
    "pipeline_repartition",
    "reduction_repartition",
]
