"""Checkpoint artifacts: per-slave snapshots and the epoch ledger entry.

Both classes are plain data with explicit JSON codecs.  Snapshot locals
are opaque application state (numpy-bearing dicts), so the codec encodes
arrays, scalars, tuples, and non-string-keyed dicts through tagged
wrapper objects; :func:`encode_state` / :func:`decode_state` round-trip
exactly (dtype, shape, and key types included), which the property tests
in ``tests/ckpt`` verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = [
    "SlaveSnapshot",
    "CheckpointEpoch",
    "encode_state",
    "decode_state",
]

_KIND = "__kind__"


def encode_state(value: Any) -> Any:
    """JSON-safe encoding of opaque (numpy-bearing) local state."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {
            _KIND: "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": value.ravel().tolist(),
        }
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_state(v) for v in value]}
    if isinstance(value, list):
        return [encode_state(v) for v in value]
    if isinstance(value, Mapping):
        return {
            _KIND: "dict",
            "items": [
                [encode_state(k), encode_state(v)] for k, v in value.items()
            ],
        }
    raise TypeError(f"cannot encode state of type {type(value).__name__}")


def decode_state(value: Any) -> Any:
    """Inverse of :func:`encode_state`."""
    if isinstance(value, list):
        return [decode_state(v) for v in value]
    if isinstance(value, Mapping):
        kind = value.get(_KIND)
        if kind == "ndarray":
            arr = np.asarray(value["data"], dtype=np.dtype(str(value["dtype"])))
            return arr.reshape([int(s) for s in value["shape"]])
        if kind == "tuple":
            return tuple(decode_state(v) for v in value["items"])
        if kind == "dict":
            return {
                decode_state(k): decode_state(v) for k, v in value["items"]
            }
        raise TypeError(f"cannot decode tagged state kind {kind!r}")
    return value


@dataclass
class SlaveSnapshot:
    """One slave's state at a checkpoint barrier.

    Attributes:
        pid: owning slave.
        epoch: checkpoint epoch this snapshot belongs to.
        rep: distributed-loop repetition the slave will execute next
            (the epoch's barrier repetition; 0 for the initial state).
        units: unit ids owned at the barrier (the epoch cut for ``pid``).
        local: deep-copied opaque local state (``None`` on cost-only
            runs, where no numerics exist to restore).
        completed: per-unit progress (``REDUCTION_FRONT``: next front
            each unit must absorb); empty for other shapes.
        front_sent: per-unit broadcast-done flags (``REDUCTION_FRONT``).
        meta: free-form shape extras.
    """

    pid: int
    epoch: int
    rep: int
    units: tuple[int, ...] = ()
    local: Any = None
    completed: dict[int, int] = field(default_factory=dict)
    front_sent: dict[int, bool] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "epoch": self.epoch,
            "rep": self.rep,
            "units": [int(u) for u in self.units],
            "local": encode_state(self.local),
            "completed": [[int(u), int(r)] for u, r in self.completed.items()],
            "front_sent": [
                [int(u), bool(f)] for u, f in self.front_sent.items()
            ],
            "meta": encode_state(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SlaveSnapshot":
        return cls(
            pid=int(data["pid"]),
            epoch=int(data["epoch"]),
            rep=int(data["rep"]),
            units=tuple(int(u) for u in data.get("units", ())),
            local=decode_state(data.get("local")),
            completed={
                int(u): int(r) for u, r in data.get("completed", ())
            },
            front_sent={
                int(u): bool(f) for u, f in data.get("front_sent", ())
            },
            meta=dict(decode_state(data.get("meta", {})) or {}),
        )


@dataclass
class CheckpointEpoch:
    """Master-side ledger entry for one coordinated checkpoint epoch.

    Attributes:
        epoch: epoch number (0 is the synthetic initial-state epoch).
        barrier: repetition at which every member snapshots (top of
            sweep ``barrier`` for PIPELINE, top of front step ``barrier``
            for REDUCTION_FRONT; unused for PARALLEL_MAP, which
            snapshots at any hook).
        opened_at: simulated time the epoch was initiated.
        members: slaves that must deposit for the epoch to commit.
        cut: ownership at the cut, ``pid -> sorted unit ids``.
        boundaries: block-partition boundaries at the cut (``None`` for
            index partitions).
        next_move_id: first move id *not* covered by the cut; moves with
            ``id >= next_move_id`` are voided on rollback to this epoch.
        placement: ``"master"`` or ``"buddy"``.
        buddies: ``pid -> buddy pid`` holding its snapshot data (buddy
            placement only).
        committed_at: commit time, ``None`` while open/aborted.
        snapshots: deposited snapshots (master placement; buddy
            placement stores only manifests here, keyed with
            ``local=None``).
    """

    epoch: int
    barrier: int
    opened_at: float
    members: tuple[int, ...]
    cut: dict[int, tuple[int, ...]]
    boundaries: tuple[int, ...] | None = None
    next_move_id: int = 0
    placement: str = "master"
    buddies: dict[int, int] = field(default_factory=dict)
    committed_at: float | None = None
    snapshots: dict[int, SlaveSnapshot] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.committed_at is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "barrier": self.barrier,
            "opened_at": self.opened_at,
            "members": [int(p) for p in self.members],
            "cut": [
                [int(p), [int(u) for u in units]]
                for p, units in self.cut.items()
            ],
            "boundaries": (
                None
                if self.boundaries is None
                else [int(b) for b in self.boundaries]
            ),
            "next_move_id": self.next_move_id,
            "placement": self.placement,
            "buddies": [[int(p), int(b)] for p, b in self.buddies.items()],
            "committed_at": self.committed_at,
            "snapshots": [
                snap.to_dict() for _, snap in sorted(self.snapshots.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckpointEpoch":
        boundaries = data.get("boundaries")
        committed_at = data.get("committed_at")
        snapshots = {
            int(s["pid"]): SlaveSnapshot.from_dict(s)
            for s in data.get("snapshots", ())
        }
        return cls(
            epoch=int(data["epoch"]),
            barrier=int(data["barrier"]),
            opened_at=float(data["opened_at"]),
            members=tuple(int(p) for p in data.get("members", ())),
            cut={
                int(p): tuple(int(u) for u in units)
                for p, units in data.get("cut", ())
            },
            boundaries=(
                None
                if boundaries is None
                else tuple(int(b) for b in boundaries)
            ),
            next_move_id=int(data.get("next_move_id", 0)),
            placement=str(data.get("placement", "master")),
            buddies={
                int(p): int(b) for p, b in data.get("buddies", ())
            },
            committed_at=(
                None if committed_at is None else float(committed_at)
            ),
            snapshots=snapshots,
        )
