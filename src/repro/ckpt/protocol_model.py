"""Finite-state abstraction of the checkpoint/rollback control plane.

Models the epoch and era machinery of
:class:`~repro.ckpt.coordinator.CheckpointCoordinator` plus the
master/slave rollback exchange in ``runtime/master.py``:

- Slaves run a rep-counted loop (work -> ``lb.status`` -> ``lb.instr``
  hook cycle, like the centralized model but with repetition progress
  instead of unit custody).
- The master nondeterministically opens checkpoint epochs (bounded by
  ``epochs``): every live member gets a ``ckpt`` control and answers
  with a deposit carrying its repetition and owned units; when all
  members have deposited, the epoch commits and becomes the rollback
  target.  A crash aborts the open epoch, exactly like
  ``Master._abort_epoch``.
- On a crash the master rolls back atomically (master placement — the
  deposits live at the master, so no buddy pulls are needed): the era
  increments, survivors are sent a ``rollback`` control with the target
  epoch's cut (their deposited repetition and units, plus the dead
  members' units regranted to the first survivor), and all traffic
  stamped with an older era is dropped on both sides.

Verified properties: era/epoch monotonicity (``RA703`` — applying a
stale-era instruction or accepting a deposit into the wrong epoch is a
transition violation), ledger unit conservation across rollback
repartition (``RA701``/``RA702``), deadlock-freedom and termination
reachability.  Out of scope (documented): buddy placement and snapshot
pulls, barrier placement margins, and checkpoint timing — the open
step is a nondeterministic choice wherever the real coordinator's
``due()`` could fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, NamedTuple

from ..analysis.model.core import Invariant, Model, Msg, Step, selective

__all__ = ["CkptConfig", "MUTATIONS", "build_model"]

MASTER = "master"

#: Seeded checkpoint-protocol corruptions for the checker's test suite.
MUTATIONS: dict[str, str] = {
    "skip_era_check": "slaves apply stale-era instructions after rollback",
    "commit_stale_deposit": (
        "master accepts a deposit from an aborted epoch into the open one"
    ),
    "skip_dead_grant": (
        "rollback restores survivors but never regrants dead units"
    ),
}


@dataclass(frozen=True)
class CkptConfig:
    """Size of the explored configuration (keep these small)."""

    n_slaves: int = 2
    units: int = 2
    reps: int = 2
    epochs: int = 1
    crashable: tuple[str, ...] = ("s1",)
    mutation: str | None = None

    def slave_names(self) -> list[str]:
        return [f"s{i}" for i in range(self.n_slaves)]

    def initial_owned(self, index: int) -> frozenset[int]:
        return frozenset(
            u for u in range(self.units) if u % self.n_slaves == index
        )


class CkptSlaveLocal(NamedTuple):
    phase: str  # run | wait_instr | done | crashed
    era: int
    rep: int
    owned: tuple[int, ...]


class CkptSlave:
    """Rep-loop slave with checkpoint deposits and rollback adoption."""

    def __init__(self, name: str, cfg: CkptConfig, index: int):
        self.name = name
        self.cfg = cfg
        self.index = index
        self.crashable = name in cfg.crashable

    def init(self) -> Hashable:
        return CkptSlaveLocal(
            phase="run",
            era=0,
            rep=0,
            owned=tuple(sorted(self.cfg.initial_owned(self.index))),
        )

    def _ctrl_steps(
        self, s: CkptSlaveLocal, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        for msg in selective(pending, lambda m: m.tag == "lb.ctrl"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            kind = payload[0]
            if kind == "ckpt":
                epoch = payload[1]
                yield Step(
                    actor=self.name,
                    label=f"deposit(e{epoch} rep={s.rep})",
                    next_state=s,
                    consumed=msg,
                    sends=(
                        Msg(
                            self.name,
                            MASTER,
                            "ckpt",
                            ("deposit", epoch, s.rep, s.owned),
                        ),
                    ),
                )
            elif kind == "rollback":
                _, era, epoch, rep, owned = payload
                if era <= s.era:
                    # A rollback control is only ever stamped with a
                    # fresh era; an equal-or-older one is unreachable
                    # unless the protocol regressed.
                    yield Step(
                        actor=self.name,
                        label=f"drop stale rollback(era {era})",
                        next_state=s,
                        consumed=msg,
                    )
                    continue
                yield Step(
                    actor=self.name,
                    label=f"rollback(era {era} -> e{epoch} rep={rep})",
                    next_state=CkptSlaveLocal(
                        phase="run", era=era, rep=rep, owned=owned
                    ),
                    consumed=msg,
                )
            else:  # pragma: no cover - malformed model
                raise ValueError(f"unknown control {payload!r}")

    def _instr_steps(
        self, s: CkptSlaveLocal, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        for msg in selective(pending, lambda m: m.tag == "lb.instr"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            era, kind = payload
            if era < s.era:
                if self.cfg.mutation == "skip_era_check":
                    # Mutation: the era guard is gone — the slave acts
                    # on an instruction from before the rollback.
                    yield Step(
                        actor=self.name,
                        label=f"APPLY stale instr({kind}, era {era})",
                        next_state=s._replace(
                            phase="done" if kind == "release" else "run"
                        ),
                        consumed=msg,
                        violation=(
                            "RA703",
                            f"slave {self.name} applied a stale-era "
                            f"instruction ({kind!r} from era {era} at "
                            f"era {s.era}); pre-rollback state leaked "
                            f"across the era fence",
                        ),
                    )
                else:
                    yield Step(
                        actor=self.name,
                        label=f"drop stale instr(era {era})",
                        next_state=s,
                        consumed=msg,
                    )
            elif kind == "noop":
                yield Step(
                    actor=self.name,
                    label="instr(noop)",
                    next_state=s._replace(phase="run"),
                    consumed=msg,
                )
            elif kind == "release":
                yield Step(
                    actor=self.name,
                    label="instr(release)",
                    next_state=s._replace(phase="done"),
                    consumed=msg,
                )
            else:  # pragma: no cover - malformed model
                raise ValueError(f"unknown instruction {payload!r}")

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        s = local
        assert isinstance(s, CkptSlaveLocal)
        if s.phase in ("done", "crashed"):
            return
        if self.crashable:
            yield Step(
                actor=self.name,
                label="crash",
                next_state=s._replace(phase="crashed"),
                sends=(Msg("fd", MASTER, "fd.crash", (self.name,)),),
            )
        yield from self._ctrl_steps(s, pending)
        if s.phase == "run":
            if s.rep < self.cfg.reps:
                nxt = s._replace(phase="wait_instr", rep=s.rep + 1)
                yield Step(
                    actor=self.name,
                    label=f"work(rep {s.rep})",
                    next_state=nxt,
                    sends=(
                        Msg(
                            self.name,
                            MASTER,
                            "lb.status",
                            ("status", s.era, s.rep + 1, False),
                        ),
                    ),
                )
            else:
                yield Step(
                    actor=self.name,
                    label="report_done",
                    next_state=s._replace(phase="wait_instr"),
                    sends=(
                        Msg(
                            self.name,
                            MASTER,
                            "lb.status",
                            ("status", s.era, s.rep, True),
                        ),
                    ),
                )
        elif s.phase == "wait_instr":
            yield from self._instr_steps(s, pending)


#: An open epoch: ``(epoch, members, cut, deposited)`` where ``cut`` is
#: the ownership ledger at open time and ``deposited`` maps member ->
#: deposited rep (-1 while missing).
OpenEpoch = tuple[
    int,
    tuple[str, ...],
    tuple[tuple[str, tuple[int, ...]], ...],
    tuple[tuple[str, int], ...],
]

#: A committed epoch: ``(epoch, cut, reps)``.
Committed = tuple[
    int,
    tuple[tuple[str, tuple[int, ...]], ...],
    tuple[tuple[str, int], ...],
]


class CkptMasterLocal(NamedTuple):
    phase: str  # run | final
    era: int
    next_epoch: int
    epochs_left: int
    open: OpenEpoch | None
    committed: Committed | None
    owned: tuple[tuple[str, tuple[int, ...]], ...]  # authoritative ledger
    parked: frozenset[str]
    dead: frozenset[str]


class CkptMaster:
    """Epoch coordinator + rollback driver + release barrier."""

    def __init__(self, cfg: CkptConfig):
        self.name = MASTER
        self.cfg = cfg

    def init(self) -> Hashable:
        return CkptMasterLocal(
            phase="run",
            era=0,
            next_epoch=1,
            epochs_left=self.cfg.epochs,
            open=None,
            committed=None,
            owned=tuple(
                (name, tuple(sorted(self.cfg.initial_owned(i))))
                for i, name in enumerate(self.cfg.slave_names())
            ),
            parked=frozenset(),
            dead=frozenset(),
        )

    def _live(self, m: CkptMasterLocal) -> list[str]:
        return [n for n in self.cfg.slave_names() if n not in m.dead]

    def _epoch0(self, m: CkptMasterLocal) -> Committed:
        cut = tuple(
            (name, tuple(sorted(self.cfg.initial_owned(i))))
            for i, name in enumerate(self.cfg.slave_names())
        )
        reps = tuple((name, 0) for name in self.cfg.slave_names())
        return (0, cut, reps)

    # -- epoch lifecycle -------------------------------------------------

    def _open_step(self, m: CkptMasterLocal) -> Step:
        members = tuple(self._live(m))
        epoch = m.next_epoch
        nxt = m._replace(
            next_epoch=epoch + 1,
            epochs_left=m.epochs_left - 1,
            open=(
                epoch,
                members,
                m.owned,
                tuple((p, -1) for p in members),
            ),
        )
        return Step(
            actor=self.name,
            label=f"open_epoch(e{epoch})",
            next_state=nxt,
            sends=tuple(
                Msg(self.name, p, "lb.ctrl", ("ckpt", epoch))
                for p in members
            ),
        )

    def _deposit_steps(
        self, m: CkptMasterLocal, msg: Msg
    ) -> Iterable[Step]:
        payload = msg.payload
        assert isinstance(payload, tuple)
        _, epoch, rep, _owned = payload
        depositor = msg.src
        stale = (
            m.open is None
            or epoch != m.open[0]
            or depositor not in m.open[1]
        )
        if stale:
            if (
                self.cfg.mutation == "commit_stale_deposit"
                and m.open is not None
                and depositor in m.open[1]
            ):
                # Mutation: the epoch guard is gone — a deposit taken
                # for an aborted epoch is folded into the open one.
                yield from self._record_deposit(
                    m,
                    msg,
                    depositor,
                    rep,
                    violation=(
                        "RA703",
                        f"deposit for epoch {epoch} accepted into open "
                        f"epoch {m.open[0]}: the committed cut mixes "
                        f"epochs",
                    ),
                )
            else:
                yield Step(
                    actor=self.name,
                    label=f"ignore late deposit(e{epoch} {depositor})",
                    next_state=m,
                    consumed=msg,
                )
            return
        yield from self._record_deposit(m, msg, depositor, rep)

    def _record_deposit(
        self,
        m: CkptMasterLocal,
        msg: Msg,
        depositor: str,
        rep: int,
        violation: tuple[str, str] | None = None,
    ) -> Iterable[Step]:
        assert m.open is not None
        epoch, members, cut, deposited = m.open
        new_dep = tuple(
            (p, rep if p == depositor else r) for p, r in deposited
        )
        if all(r >= 0 for _, r in new_dep):
            nxt = m._replace(
                open=None, committed=(epoch, cut, new_dep)
            )
            label = f"commit(e{epoch})"
        else:
            nxt = m._replace(open=(epoch, members, cut, new_dep))
            label = f"deposit({depositor} -> e{epoch})"
        yield Step(
            actor=self.name,
            label=label,
            next_state=nxt,
            consumed=msg,
            violation=violation,
        )

    # -- rollback --------------------------------------------------------

    def _declare_step(self, m: CkptMasterLocal, msg: Msg) -> Step:
        payload = msg.payload
        assert isinstance(payload, tuple)
        victim = str(payload[0])
        if victim in m.dead:
            return Step(
                actor=self.name,
                label=f"fd({victim}: already declared)",
                next_state=m,
                consumed=msg,
            )
        if m.phase == "final":
            # The run already released: a late death needs no rollback,
            # only a tombstone so the victim's channels stop counting.
            return Step(
                actor=self.name,
                label=f"declare_dead({victim}) post-release",
                next_state=m._replace(dead=m.dead | {victim}),
                consumed=msg,
            )
        dead = m.dead | {victim}
        live = [n for n in self.cfg.slave_names() if n not in dead]
        target = m.committed or self._epoch0(m)
        epoch, cut, reps = target
        cut_map = dict(cut)
        rep_map = dict(reps)
        era = m.era + 1
        # Survivors restore their own cut; every dead member's cut units
        # are adopted by the first survivor (the model does not score
        # placement quality, only custody).
        adopted: set[int] = set()
        for d in sorted(dead):
            adopted.update(cut_map.get(d, ()))
        new_owned: list[tuple[str, tuple[int, ...]]] = []
        sends: list[Msg] = []
        for i, name in enumerate(sorted(live)):
            units = set(cut_map.get(name, ()))
            if i == 0 and self.cfg.mutation != "skip_dead_grant":
                units |= adopted
            owned_t = tuple(sorted(units))
            new_owned.append((name, owned_t))
            sends.append(
                Msg(
                    self.name,
                    name,
                    "lb.ctrl",
                    (
                        "rollback",
                        era,
                        epoch,
                        rep_map.get(name, 0),
                        owned_t,
                    ),
                )
            )
        full_owned = tuple(
            sorted(new_owned + [(d, ()) for d in sorted(dead)])
        )
        nxt = m._replace(
            era=era,
            open=None,  # a death aborts the open epoch
            owned=full_owned,
            parked=frozenset(),  # survivors restart from the cut
            dead=dead,
        )
        if not live:
            nxt = nxt._replace(phase="final")
            sends = []
        return Step(
            actor=self.name,
            label=f"declare_dead({victim}) + rollback(era {era})",
            next_state=nxt,
            consumed=msg,
            sends=tuple(sends),
        )

    # -- status / release ------------------------------------------------

    def _status_steps(
        self, m: CkptMasterLocal, msg: Msg
    ) -> Iterable[Step]:
        payload = msg.payload
        assert isinstance(payload, tuple)
        _, era, _rep, done = payload
        reporter = msg.src
        if era < m.era:
            yield Step(
                actor=self.name,
                label=f"drop stale status({reporter}, era {era})",
                next_state=m,
                consumed=msg,
            )
            return
        if not done:
            yield Step(
                actor=self.name,
                label=f"reply({reporter}: noop)",
                next_state=m,
                consumed=msg,
                sends=(
                    Msg(self.name, reporter, "lb.instr", (m.era, "noop")),
                ),
            )
            return
        parked = m.parked | {reporter}
        live = self._live(m)
        if all(p in parked for p in live):
            yield Step(
                actor=self.name,
                label=f"park({reporter}) + release-all",
                next_state=m._replace(
                    phase="final",
                    parked=frozenset(),
                    open=None,
                ),
                consumed=msg,
                sends=tuple(
                    Msg(self.name, p, "lb.instr", (m.era, "release"))
                    for p in sorted(live)
                ),
            )
        else:
            yield Step(
                actor=self.name,
                label=f"park({reporter})",
                next_state=m._replace(parked=parked),
                consumed=msg,
            )

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        m = local
        assert isinstance(m, CkptMasterLocal)
        for msg in selective(pending, lambda x: x.tag == "fd.crash"):
            yield self._declare_step(m, msg)
        if m.phase != "run":
            # Post-release: drain stray reports and late deposits so
            # the run can quiesce (the real master ignores them too).
            for msg in selective(
                pending, lambda x: x.tag in ("lb.status", "ckpt")
            ):
                yield Step(
                    actor=self.name,
                    label=f"discard post-release {msg.tag} from {msg.src}",
                    next_state=m,
                    consumed=msg,
                )
            return
        for msg in selective(
            pending,
            lambda x: x.tag in ("lb.status", "ckpt") and x.src in m.dead,
        ):
            yield Step(
                actor=self.name,
                label=f"drop ghost {msg.tag} from {msg.src}",
                next_state=m,
                consumed=msg,
            )
        for msg in selective(
            pending,
            lambda x: x.tag == "lb.status" and x.src not in m.dead,
        ):
            yield from self._status_steps(m, msg)
        for msg in selective(
            pending, lambda x: x.tag == "ckpt" and x.src not in m.dead
        ):
            yield from self._deposit_steps(m, msg)
        if (
            m.open is None
            and m.epochs_left > 0
            and not m.parked
            and self._live(m)
        ):
            yield self._open_step(m)


# -- invariants and model assembly -------------------------------------


def ledger_conservation(cfg: CkptConfig) -> Invariant:
    """The master's post-rollback ownership ledger must partition the
    unit space over live slaves (authoritative custody for this plane:
    rollback rebuilds every slave's owned set from the cut)."""

    def check(
        locals_: Mapping[str, Hashable],
        channels: Mapping[tuple[str, str], tuple[Msg, ...]],
    ) -> tuple[str, str] | None:
        m = locals_.get(MASTER)
        if not isinstance(m, CkptMasterLocal):
            return None
        if m.phase != "run":
            return None  # released or abandoned; the ledger is retired
        if len(m.dead) >= cfg.n_slaves:
            return None  # nobody left; the run is abandoned
        counts = {u: 0 for u in range(cfg.units)}
        for slave, units in m.owned:
            if slave in m.dead:
                continue
            for u in units:
                counts[u] = counts.get(u, 0) + 1
        lost = sorted(u for u, c in counts.items() if c == 0)
        dup = sorted(u for u, c in counts.items() if c > 1)
        if dup:
            return (
                "RA702",
                f"rollback ledger assigns unit(s) {dup} to more than "
                f"one survivor",
            )
        if lost:
            return (
                "RA701",
                f"rollback ledger dropped unit(s) {lost}: dead members' "
                f"checkpointed units were never regranted",
            )
        return None

    return check


def _tombstoned(locals_: Mapping[str, Hashable]) -> frozenset[str]:
    """Actors whose mailboxes no longer matter for quiescence: declared
    dead, crashed, or released (a released slave's process has exited,
    so a checkpoint order it never drained is discarded, not stuck)."""
    out = set(getattr(locals_[MASTER], "dead", frozenset()))
    for name, local in locals_.items():
        if name != MASTER and getattr(local, "phase", "") in (
            "done",
            "crashed",
        ):
            out.add(name)
    return frozenset(out)


def _terminal(
    cfg: CkptConfig,
) -> "Callable[[Mapping[str, Hashable]], bool]":
    def done(locals_: Mapping[str, Hashable]) -> bool:
        for name, local in locals_.items():
            if name == MASTER:
                if getattr(local, "phase", "") != "final":
                    return False
            elif getattr(local, "phase", "") not in ("done", "crashed"):
                return False
        return True

    return done


def build_model(
    cfg: CkptConfig | None = None, mutation: str | None = None
) -> Model:
    """Build the checkpoint-plane model for one configuration."""
    cfg = cfg or CkptConfig()
    if mutation is not None:
        if mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutation!r}")
        cfg = CkptConfig(
            n_slaves=cfg.n_slaves,
            units=cfg.units,
            reps=cfg.reps,
            epochs=cfg.epochs,
            crashable=cfg.crashable,
            mutation=mutation,
        )
    name = (
        f"ckpt-p{cfg.n_slaves}-u{cfg.units}-r{cfg.reps}"
        f"-e{cfg.epochs}-x{len(cfg.crashable)}"
    )
    if cfg.mutation:
        name += f"!{cfg.mutation}"
    actors: list[object] = [CkptMaster(cfg)] + [
        CkptSlave(n, cfg, i) for i, n in enumerate(cfg.slave_names())
    ]
    return Model(
        name=name,
        plane="ckpt",
        actors=actors,  # type: ignore[arg-type]
        invariants=[ledger_conservation(cfg)],
        terminal=_terminal(cfg),
        dead_of=_tombstoned,
        notes=(
            "master snapshot placement (no buddy pulls); epoch opening "
            "is a nondeterministic choice bounded by the epoch budget; "
            "accurate failure detector"
        ),
    )
