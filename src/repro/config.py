"""Configuration dataclasses for the simulator, runtime, and compiler.

Defaults are calibrated to the paper's testbed: Sun 4/330 workstations
(~1 Mop/s for the scalar loop kernels measured), Nectar links at
100 Mbyte/s, a 100 ms Unix scheduling quantum, and the load-balancer
constants given in Sections 3.2 and 4.3/4.4 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .errors import ConfigError

__all__ = [
    "ProcessorSpec",
    "NetworkSpec",
    "TopologySpec",
    "ClusterSpec",
    "BalancerConfig",
    "GrainConfig",
    "FaultToleranceConfig",
    "CheckpointConfig",
    "RunConfig",
]


@dataclass(frozen=True)
class ProcessorSpec:
    """A single workstation's CPU model.

    Attributes:
        speed: application operations per second of dedicated CPU.
        quantum: OS scheduling time quantum in seconds (round-robin).
        phase: offset, in seconds, of this processor's round-robin cycle
            relative to the start of each constant-load segment.  Giving
            processors different phases reproduces the measurement noise
            the paper attributes to context switching (Section 4.3).
        scheduler: ``"round_robin"`` models the quantum staircase (the
            paper's environment); ``"fair"`` is an idealised fluid
            processor-sharing scheduler with no quantum effects — useful
            for ablating the Section 4.3 measurement-noise claims.
    """

    speed: float = 1.0e6
    quantum: float = 0.1
    phase: float = 0.0
    scheduler: str = "round_robin"

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ConfigError(f"processor speed must be positive, got {self.speed}")
        if self.quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {self.quantum}")
        if not (0.0 <= self.phase < math.inf):
            raise ConfigError(f"phase must be finite and >= 0, got {self.phase}")
        if self.scheduler not in ("round_robin", "fair"):
            raise ConfigError(
                f"scheduler must be 'round_robin' or 'fair', got {self.scheduler!r}"
            )


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point network model (Nectar-like crossbar, no contention).

    Message transfer time is ``latency + nbytes / bandwidth``; in addition
    the sender spends ``send_cpu`` seconds of CPU and the receiver spends
    ``recv_cpu`` seconds of CPU per message (protocol/software overhead).
    CPU overheads are charged through the processor model, so they dilate
    on loaded machines just like computation does.
    """

    latency: float = 5.0e-4
    bandwidth: float = 100.0e6
    send_cpu: float = 5.0e-4
    recv_cpu: float = 5.0e-4

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.send_cpu < 0 or self.recv_cpu < 0:
            raise ConfigError("per-message CPU overheads must be >= 0")

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for a message of ``nbytes`` (excluding CPU overheads)."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class TopologySpec:
    """Interconnect topology replacing the default uncontended crossbar.

    With a topology configured, message transfer time is computed by a
    :class:`repro.sim.network.Fabric` over the topology's links (per-hop
    latency, per-link bandwidth, and — with ``contention`` — per-link
    store-and-forward queueing) instead of the single dedicated path the
    crossbar assumes.  Per-message CPU overheads are unchanged.

    The fabric spans ``n_members`` *member* nodes (defaults to the
    cluster's slave count); processors beyond the members (masters,
    sub-masters) are attached to a member's network port via the
    ``Cluster``'s attach map.

    Attributes:
        kind: ``"ring"``, ``"mesh2d"``, ``"fat_tree"``, or
            ``"two_cluster"``.
        n_members: fabric node count (default: the cluster's slaves).
        radix: fat-tree switch radix (leaves per edge switch).
        fat_factor: fat-tree per-level uplink bandwidth multiplier
            (``radix`` gives full bisection; lower oversubscribes).
        split: two-cluster boundary — members ``< split`` are in cluster
            A (default: half).
        wan_latency: two-cluster A-to-B one-way latency in seconds.
        wan_latency_back: B-to-A latency (defaults to ``wan_latency``;
            setting it differently models asymmetric WAN paths).
        wan_bandwidth: shared inter-cluster link bandwidth, bytes/s.
        hop_latency: per-hop wire latency (default: the network spec's
            crossbar latency).
        contention: model per-link serialization queueing (deterministic
            busy-time bookkeeping) instead of latency-only routes.
    """

    kind: str = "ring"
    n_members: int | None = None
    radix: int = 4
    fat_factor: float = 2.0
    split: int | None = None
    wan_latency: float = 0.025
    wan_latency_back: float | None = None
    wan_bandwidth: float = 10.0e6
    hop_latency: float | None = None
    contention: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("ring", "mesh2d", "fat_tree", "two_cluster"):
            raise ConfigError(
                "topology kind must be one of 'ring', 'mesh2d', 'fat_tree', "
                f"'two_cluster', got {self.kind!r}"
            )
        if self.n_members is not None and self.n_members < 2:
            raise ConfigError(f"topology needs >= 2 members, got {self.n_members}")
        if self.radix < 2:
            raise ConfigError(f"fat-tree radix must be >= 2, got {self.radix}")
        if self.fat_factor < 1.0:
            raise ConfigError(f"fat_factor must be >= 1, got {self.fat_factor}")
        if self.split is not None and self.split < 1:
            raise ConfigError(f"two_cluster split must be >= 1, got {self.split}")
        if self.wan_latency < 0 or (
            self.wan_latency_back is not None and self.wan_latency_back < 0
        ):
            raise ConfigError("WAN latencies must be >= 0")
        if self.wan_bandwidth <= 0:
            raise ConfigError("WAN bandwidth must be positive")
        if self.hop_latency is not None and self.hop_latency < 0:
            raise ConfigError("hop_latency must be >= 0")


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster: ``n_slaves`` worker processors plus one master processor.

    Processor ``i`` in ``0..n_slaves-1`` hosts slave ``i``; processor
    ``n_slaves`` hosts the master (central load balancer).  A heterogeneous
    cluster can be described by ``processor_overrides``.
    """

    n_slaves: int = 4
    processor: ProcessorSpec = field(default_factory=ProcessorSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    processor_overrides: tuple[tuple[int, ProcessorSpec], ...] = ()
    stagger_phases: bool = True
    # None keeps the legacy uncontended crossbar (byte-identical traces).
    topology: TopologySpec | None = None

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise ConfigError(f"need at least one slave, got {self.n_slaves}")
        for pid, _spec in self.processor_overrides:
            if not 0 <= pid <= self.n_slaves:
                raise ConfigError(f"processor override pid {pid} out of range")
        if self.topology is not None:
            members = self.topology.n_members
            if members is not None and members > self.n_processors:
                raise ConfigError(
                    f"topology spans {members} members but the cluster has "
                    f"only {self.n_processors} processors"
                )

    @property
    def n_processors(self) -> int:
        """Total processor count (slaves + master)."""
        return self.n_slaves + 1

    @property
    def master_pid(self) -> int:
        """Processor id hosting the central load balancer."""
        return self.n_slaves

    def spec_for(self, pid: int) -> ProcessorSpec:
        """Resolve the :class:`ProcessorSpec` for processor ``pid``."""
        spec = self.processor
        for opid, ospec in self.processor_overrides:
            if opid == pid:
                spec = ospec
        if self.stagger_phases and spec.phase == 0.0:
            # Deterministic per-processor stagger so round-robin cycles do
            # not align across the cluster.
            spec = replace(spec, phase=(pid * 0.37) % spec.quantum)
        return spec


@dataclass(frozen=True)
class BalancerConfig:
    """Central load balancer parameters (paper Sections 3.2, 3.3, 4.3).

    Attributes:
        improvement_threshold: minimum projected reduction in completion
            time before movement instructions are issued (paper: 10%).
        pipelined: use pipelined master-slave interactions (Figure 2b)
            instead of synchronous ones (Figure 2a).
        filter_enabled: apply the trend-weighted rate filter.
        profitability_enabled: run the detailed profitability check that can
            cancel unprofitable movements.
        min_period: absolute floor on the load-balancing period (500 ms).
        quantum_multiple: period must exceed this many scheduling quanta (5).
        interaction_multiple: period must exceed this many times the
            measured master-slave interaction cost (20, i.e. <=5% overhead).
        movement_multiple: period must exceed this fraction of the measured
            work-movement cost (0.1).
        restricted: force restricted (adjacent-only) movement even for
            applications without loop-carried dependences.
        profitability_horizon_periods: how many load-balancing periods of
            projected savings the profitability check may credit (rates
            can change again, so far-future benefit is not trusted).
    """

    improvement_threshold: float = 0.10
    pipelined: bool = True
    filter_enabled: bool = True
    profitability_enabled: bool = True
    min_period: float = 0.5
    quantum_multiple: float = 5.0
    interaction_multiple: float = 20.0
    movement_multiple: float = 0.1
    restricted: bool | None = None
    profitability_horizon_periods: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.improvement_threshold < 1.0:
            raise ConfigError("improvement_threshold must be in [0, 1)")
        if self.min_period <= 0:
            raise ConfigError("min_period must be positive")


@dataclass(frozen=True)
class GrainConfig:
    """Granularity control (paper Section 4.4).

    The compiler strip-mines pipelined loops; the runtime sizes the strip at
    startup so one strip of work takes ``target_block_time`` seconds
    (paper: 150 ms = 1.5x the scheduling quantum).
    """

    target_block_time: float = 0.15
    hook_overhead_ops: float = 50.0
    hook_cost_fraction: float = 0.01
    block_size_override: int | None = None

    def __post_init__(self) -> None:
        if self.target_block_time <= 0:
            raise ConfigError("target_block_time must be positive")
        if not 0 < self.hook_cost_fraction < 1:
            raise ConfigError("hook_cost_fraction must be in (0, 1)")


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Failure-tolerant runtime parameters (see docs/fault-tolerance.md).

    Disabled by default: with ``enabled=False`` the runtime takes exactly
    the legacy code paths, so fault-free runs are byte-for-byte identical
    to runs before fault tolerance existed.

    Attributes:
        enabled: turn on heartbeats, the master's poll loop, suspicion/
            death detection, control retries, and work reassignment.
        heartbeat_interval: a slave that has not sent the master anything
            (status report, ack) for this long sends an explicit
            heartbeat so silence means trouble, not idleness.
        suspect_after: silence before the master *suspects* a slave —
            it stops directing new work at it but keeps its slices.
        dead_after: silence before the master declares a slave dead and
            reassigns its work.  Must comfortably exceed the worst-case
            transport retransmission span plus one heartbeat interval.
        ctrl_rto: base timeout before an unacknowledged recovery control
            message (grant / cancel) is retransmitted.
        ctrl_backoff: exponential backoff factor between control retries.
        ctrl_max_retries: control retries before the target is given up
            on (:class:`~repro.errors.SlaveLostError` if it is not dead).
        master_tick: master poll-loop sleep between empty polls.
        wait_tick: *maximum* slave poll-loop sleep inside failure-
            tolerant waits; the loops start at ``wait_tick / 16`` and
            back off exponentially, so this bounds the wake-up latency
            (and the per-pipeline-hop overshoot) once a wait is long.
    """

    enabled: bool = False
    heartbeat_interval: float = 0.5
    suspect_after: float = 2.0
    dead_after: float = 8.0
    ctrl_rto: float = 0.5
    ctrl_backoff: float = 2.0
    ctrl_max_retries: int = 6
    master_tick: float = 0.05
    wait_tick: float = 0.005

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        if not 0 < self.suspect_after < self.dead_after:
            raise ConfigError(
                "need 0 < suspect_after < dead_after, got "
                f"{self.suspect_after} / {self.dead_after}"
            )
        if self.ctrl_rto <= 0 or self.ctrl_backoff < 1.0:
            raise ConfigError("ctrl_rto must be > 0 and ctrl_backoff >= 1")
        if self.ctrl_max_retries < 0:
            raise ConfigError("ctrl_max_retries must be >= 0")
        if self.master_tick <= 0 or self.wait_tick <= 0:
            raise ConfigError("poll ticks must be positive")


@dataclass(frozen=True)
class CheckpointConfig:
    """Coordinated checkpoint/rollback parameters (see docs/fault-tolerance.md).

    Disabled by default: with ``enabled=False`` no checkpoint traffic is
    generated and fault-free event traces are byte-for-byte identical to
    runs before checkpointing existed.  Enabling checkpoints implies the
    failure-tolerant control plane (``RunConfig.ft``).

    Attributes:
        enabled: take periodic coordinated snapshots and allow the master
            to roll surviving slaves back after a death on dependence-
            carrying schedules (PIPELINE / REDUCTION_FRONT).
        interval: minimum simulated seconds between checkpoint epochs.
        placement: where slave snapshots are deposited — ``"master"``
            ships each snapshot to the master's epoch ledger;
            ``"buddy"`` ships the data to the next live slave
            (pid + 1 mod n) and only a light manifest to the master.
        barrier_margin: how many reps past the latest reported progress
            the master places the checkpoint barrier; grows on a miss.
    """

    enabled: bool = False
    interval: float = 2.0
    placement: str = "master"
    barrier_margin: int = 2

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError(f"ckpt interval must be positive, got {self.interval}")
        if self.placement not in ("master", "buddy"):
            raise ConfigError(
                f"ckpt placement must be 'master' or 'buddy', got {self.placement!r}"
            )
        if self.barrier_margin < 1:
            raise ConfigError("ckpt barrier_margin must be >= 1")


@dataclass(frozen=True)
class RunConfig:
    """Top-level knobs for one simulated application run.

    ``strategy`` selects the DLB control plane for PARALLEL_MAP
    workloads: ``"centralized"`` is the paper's runtime
    (:func:`repro.runtime.run_application`); the other names are the
    :mod:`repro.strategies` registry (``rate``, ``hier``, ``diffusion``,
    ``stealing``, ``rdlb``, ``fsc``, ``gss``, ``factoring``,
    ``trapezoid``).  The name is validated where it is consumed
    (:func:`repro.strategies.run_strategy`), not here, so the config
    module stays dependency-free.

    ``engine`` selects the simulator event core: ``"reference"`` is the
    original heap loop, ``"batch"`` the pooled/vectorized core that is
    byte-identical on observed traces, and ``"auto"`` (default) resolves
    to ``batch`` unless fault injection is armed — an armed
    :class:`~repro.faults.FaultInjector` always forces ``reference``.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    balancer: BalancerConfig = field(default_factory=BalancerConfig)
    grain: GrainConfig = field(default_factory=GrainConfig)
    ft: FaultToleranceConfig = field(default_factory=FaultToleranceConfig)
    ckpt: CheckpointConfig = field(default_factory=CheckpointConfig)
    execute_numerics: bool = True
    dlb_enabled: bool = True
    trace_enabled: bool = False
    max_virtual_time: float = 1.0e7
    strategy: str = "centralized"
    engine: str = "auto"

    def __post_init__(self) -> None:
        if not self.strategy or not isinstance(self.strategy, str):
            raise ConfigError(f"strategy must be a non-empty name, got {self.strategy!r}")
        if self.engine not in ("auto", "reference", "batch"):
            raise ConfigError(
                "engine must be 'auto', 'reference', or 'batch', "
                f"got {self.engine!r}"
            )
