"""Run-and-verify helpers: the library's own acceptance check.

``verify_run`` executes a plan and compares the distributed result with
the application's sequential reference; SOR and LU must match
bit-for-bit (their in-place operation order is reproduced exactly even
under movement), MM/ADAPT to numerical tolerance (different reduction
grouping).  Used by examples and available to downstream users as a
one-call sanity check of any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from .compiler.plan import ExecutionPlan
from .config import RunConfig
from .errors import ReproError
from .runtime.launcher import RunResult, run_application
from .sim import LoadGenerator

__all__ = ["VerificationError", "VerifiedRun", "verify_run"]


class VerificationError(ReproError):
    """Raised when a distributed result disagrees with the sequential
    reference."""


@dataclass
class VerifiedRun:
    """A run plus the outcome of its verification."""

    result: RunResult
    reference: Any
    exact: bool
    max_abs_error: float

    def summary(self) -> str:
        kind = "bit-exact" if self.exact else f"max|err|={self.max_abs_error:.2e}"
        return f"{self.result.summary()}  [verified: {kind}]"


def _compare(a: Any, b: Any) -> tuple[bool, float]:
    if isinstance(a, dict) and isinstance(b, dict):
        exact, err = True, 0.0
        for key in b:
            e2, m2 = _compare(a[key], b[key])
            exact &= e2
            err = max(err, m2)
        return exact, err
    aa, bb = np.asarray(a), np.asarray(b)
    if aa.shape != bb.shape:
        raise VerificationError(f"shape mismatch: {aa.shape} vs {bb.shape}")
    return bool(np.array_equal(aa, bb)), float(np.max(np.abs(aa - bb), initial=0.0))


def verify_run(
    plan: ExecutionPlan,
    run_cfg: RunConfig | None = None,
    loads: Mapping[int, LoadGenerator] | None = None,
    seed: int = 0,
    atol: float = 1e-9,
) -> VerifiedRun:
    """Run ``plan`` with numerics enabled and verify the result.

    Raises :class:`VerificationError` if the distributed result deviates
    from the sequential reference by more than ``atol`` anywhere.
    """
    run_cfg = run_cfg or RunConfig()
    if not run_cfg.execute_numerics:
        raise VerificationError("verification requires execute_numerics=True")
    res = run_application(plan, run_cfg, loads=loads, seed=seed)
    reference = plan.kernels.sequential(
        plan.kernels.make_global(np.random.default_rng(seed))
    )
    exact, err = _compare(res.result, reference)
    if not exact and err > atol:
        raise VerificationError(
            f"{plan.name}: distributed result deviates from the sequential "
            f"reference by {err:.3e} (> atol {atol:.0e})"
        )
    return VerifiedRun(result=res, reference=reference, exact=exact, max_abs_error=err)
