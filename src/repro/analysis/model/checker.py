"""Model-check entry points: explore a model, report ``RA6xx``/``RA7xx``.

:func:`check_model` explores one :class:`~repro.analysis.model.core.Model`
and converts every violation into a :class:`Diagnostic` whose ``details``
carry the minimized counterexample as a rendered message-sequence trace
(``details["trace"]``) plus exploration statistics.  A budget-truncated
run additionally reports ``RA603`` (info): the verdict is bounded, not
exhaustive.
"""

from __future__ import annotations

from ..diagnostics import CheckResult, Diagnostic
from .core import Model
from .explore import ExplorationResult, explore
from .trace import render_trace

__all__ = ["check_model"]


def check_model(
    model: Model,
    *,
    por: bool = True,
    budget: int | None = None,
    seed: int = 0,
) -> tuple[CheckResult, ExplorationResult]:
    """Explore ``model`` exhaustively and report findings.

    Returns the :class:`CheckResult` (subject ``model:<name>``) and the
    raw :class:`ExplorationResult` for callers that want statistics.
    """
    result = explore(model, por=por, budget=budget, seed=seed)
    check = CheckResult(subject=f"model:{model.name}")
    stats: dict[str, object] = {
        "plane": model.plane,
        "states": result.states,
        "transitions": result.transitions,
        "terminal_states": result.terminal_states,
        "exhaustive": result.exhaustive,
    }
    for violation in result.violations:
        check.diagnostics.append(
            Diagnostic.new(
                violation.code,
                violation.message,
                locus=model.name,
                details={
                    **stats,
                    "kind": violation.kind,
                    "trace": render_trace(violation.trace),
                },
            )
        )
    if not result.exhaustive:
        check.diagnostics.append(
            Diagnostic.new(
                "RA603",
                f"state budget {budget} exhausted after {result.states} "
                f"states; verdict is from bounded exploration plus "
                f"{result.walks} random walks, not an exhaustive proof",
                locus=model.name,
                details=stats,
            )
        )
    return check, result
