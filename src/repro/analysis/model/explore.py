"""Explicit-state exploration of a control-plane :class:`Model`.

:func:`explore` enumerates every reachable interleaving of the model's
actor steps and checks three property classes:

- **Deadlock-freedom** (``RA601``): no reachable state may be stuck —
  zero enabled transitions — unless it is the model's quiescent success
  state (terminal predicate holds *and* every live channel is drained).
- **Safety invariants** (``RA7xx``): the model's global invariants
  (unit conservation, at-most-one owner, ...) are evaluated on every
  reached state, and steps may carry transition-local violations
  (era/epoch monotonicity).
- **Liveness** (``RA602``): after an exhaustive exploration, every
  reachable state must be able to reach a terminal state (``AG EF
  terminal`` over the reduced graph).  A state from which quiescence is
  unreachable is a livelock: some weakly-fair scheduler runs forever
  without completing the computation.

**Partial-order reduction.**  The explorer expands a single actor's
step set as a persistent set, but only when that reduction provably
loses nothing for *all three* property classes: the actor's enabled
steps must be *pure-local* — consume nothing, send nothing, flag no
transition violation — and *pending-insensitive* (re-deriving them
with an empty mailbox yields the same set — the :class:`~.core.Actor`
contract).  Such steps commute with every other actor's steps (locals
are disjoint and nothing observable leaves the actor), so delaying
everyone else merely postpones states that are reached anyway, and a
*stable* invariant violation (one that persists to successors, as
custody violations do) survives the postponement.  Send-carrying
internal steps are deliberately **not** reduced even though classic
persistent-set theory admits them for deadlock detection: delaying a
visible send prunes exactly the intermediate states that state
invariants and violation-carrying edges are written to catch (this
masked seeded mutations in the hierarchical plane before the rule was
tightened).  Receive steps are never reduced: which message arrives
first at an actor genuinely branches the protocol (that is the race
the checker exists to explore), so any state whose enabled actors all
consume or send is fully expanded.  The standard cycle proviso (no
successor on the DFS stack) guards against the ignoring problem,
falling back to full expansion when the chosen singleton closes a
cycle.

**Budget fallback.**  Exhaustive exploration stops after ``budget``
states; the run is then marked non-exhaustive and a seeded random-walk
sweep keeps probing deep interleavings for deadlocks and invariant
violations (liveness needs the full graph and is skipped).

Counterexamples are minimized by breadth-first search over the explored
graph, so the reported trace is a shortest path to the violation within
the reduced state space.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from .core import (
    Actor,
    Model,
    Step,
    SystemState,
    Violation,
    initial_state,
    pending_for,
)

__all__ = ["ExplorationResult", "explore"]


@dataclass
class ExplorationResult:
    """Outcome of one model exploration."""

    model: str
    plane: str
    exhaustive: bool
    states: int
    transitions: int
    terminal_states: int
    violations: list[Violation] = field(default_factory=list)
    walks: int = 0  # random walks run by the bounded fallback

    @property
    def ok(self) -> bool:
        return not self.violations


def _enabled_by_actor(
    model: Model, state: SystemState
) -> list[tuple[Actor, list[Step]]]:
    """Enabled steps grouped per actor (actors with none are omitted)."""
    locals_ = state.locals_map()
    out: list[tuple[Actor, list[Step]]] = []
    for actor in model.actors:
        steps = list(
            actor.steps(locals_[actor.name], pending_for(state, actor.name))
        )
        if steps:
            out.append((actor, steps))
    return out


def _reducible(actor: Actor, local: Hashable, steps: list[Step]) -> bool:
    """Whether ``{actor}`` is a sound singleton persistent set here.

    True only for *pure-local* step sets: nothing is consumed, nothing
    is sent, no transition violation is flagged, and the steps are
    identical when re-derived with an empty mailbox (so no other
    actor's send can enable, disable, or alter them).  Sends are
    excluded because delaying a visible send can hide the very
    interleavings the invariants and transition checks are written for
    (a send-carrying internal step commutes for deadlock detection,
    but the checker also reports stable state invariants and
    violation-carrying edges, which demand the intermediate states).
    """
    if any(
        step.consumed is not None
        or step.sends
        or step.violation is not None
        for step in steps
    ):
        return False
    return list(actor.steps(local, ())) == steps


def _check_state(
    model: Model, state: SystemState
) -> list[tuple[str, str]]:
    locals_ = state.locals_map()
    channels = state.channels_map()
    found: list[tuple[str, str]] = []
    for inv in model.invariants:
        hit = inv(locals_, channels)
        if hit is not None:
            found.append(hit)
    return found


@dataclass
class _Search:
    """Shared exploration bookkeeping (graph + violations)."""

    model: Model
    budget: int | None
    ids: dict[SystemState, int] = field(default_factory=dict)
    states: list[SystemState] = field(default_factory=list)
    edges: dict[int, list[tuple[Step, int]]] = field(default_factory=dict)
    terminal: set[int] = field(default_factory=set)
    deadlocks: dict[int, str] = field(default_factory=dict)
    # state id -> (code, message) of the first invariant violation there
    bad_states: dict[int, tuple[str, str]] = field(default_factory=dict)
    # edge (src id, step index) transition violations
    bad_steps: list[tuple[int, Step]] = field(default_factory=list)
    transitions: int = 0
    truncated: bool = False

    def intern(self, state: SystemState) -> tuple[int, bool]:
        sid = self.ids.get(state)
        if sid is not None:
            return sid, False
        sid = len(self.states)
        self.ids[state] = sid
        self.states.append(state)
        for hit in _check_state(self.model, state):
            self.bad_states.setdefault(sid, hit)
            break
        return sid, True

    def over_budget(self) -> bool:
        return self.budget is not None and len(self.states) >= self.budget


def _expand(
    search: _Search, sid: int, on_stack: set[int], por: bool
) -> list[tuple[Step, int]]:
    """Compute (and record) the outgoing edges of state ``sid``.

    With POR on, tries to expand a single *reducible* actor's step set
    (pure-local steps — see :func:`_reducible`); the cycle proviso
    falls back to the next candidate, then to full expansion, when the
    chosen singleton closes a cycle into the DFS stack.
    """
    model = search.model
    state = search.states[sid]
    groups = _enabled_by_actor(model, state)
    if not groups:
        if model.is_terminal(state):
            search.terminal.add(sid)
        else:
            search.deadlocks.setdefault(sid, "no enabled transition")
        search.edges[sid] = []
        return []

    def build(
        chosen: list[tuple[Actor, list[Step]]],
    ) -> list[tuple[Step, int]]:
        out: list[tuple[Step, int]] = []
        for _, steps in chosen:
            for step in steps:
                succ = state.replace(
                    step.actor, step.next_state, step.consumed, step.sends
                )
                tid, _ = search.intern(succ)
                out.append((step, tid))
        return out

    def commit(edges: list[tuple[Step, int]]) -> list[tuple[Step, int]]:
        search.edges[sid] = edges
        search.transitions += len(edges)
        for step, _ in edges:
            if step.violation is not None:
                search.bad_steps.append((sid, step))
        return edges

    if por and len(groups) > 1:
        locals_ = state.locals_map()
        for candidate in groups:
            actor, steps = candidate
            if not _reducible(actor, locals_[actor.name], steps):
                continue
            edges = build([candidate])
            if all(tid not in on_stack for _, tid in edges):
                return commit(edges)
            # Cycle proviso failed for this candidate; try the next
            # actor (already-interned successors stay in the graph and
            # are harmless).
        # No reducible actor (or all close cycles): expand fully.
    return commit(build(groups))


def _shortest_trace(search: _Search, target: int) -> tuple[Step, ...]:
    """Shortest path of steps from the initial state to ``target``."""
    if target == 0:
        return ()
    prev: dict[int, tuple[int, Step]] = {}
    seen = {0}
    frontier = deque([0])
    while frontier:
        sid = frontier.popleft()
        for step, tid in search.edges.get(sid, []):
            if tid in seen:
                continue
            seen.add(tid)
            prev[tid] = (sid, step)
            if tid == target:
                frontier.clear()
                break
            frontier.append(tid)
    if target not in prev:
        return ()
    path: list[Step] = []
    sid = target
    while sid != 0:
        sid, step = prev[sid]
        path.append(step)
    path.reverse()
    return tuple(path)


def _liveness_violations(search: _Search) -> list[Violation]:
    """States from which no terminal state is reachable (``AG EF``)."""
    # Backward reachability from the terminal set over reversed edges.
    reverse: dict[int, list[int]] = {}
    for sid, edges in search.edges.items():
        for _, tid in edges:
            reverse.setdefault(tid, []).append(sid)
    can_finish: set[int] = set(search.terminal)
    frontier = deque(search.terminal)
    while frontier:
        sid = frontier.popleft()
        for pred in reverse.get(sid, []):
            if pred not in can_finish:
                can_finish.add(pred)
                frontier.append(pred)
    doomed = [
        sid
        for sid in range(len(search.states))
        if sid not in can_finish and sid not in search.deadlocks
    ]
    if not doomed:
        return []
    # Report the closest doomed state; all deeper ones share the cause.
    target = min(doomed, key=lambda sid: len(_shortest_trace(search, sid)))
    trace = _shortest_trace(search, target)
    return [
        Violation(
            code="RA602",
            message=(
                f"{len(doomed)} reachable state(s) cannot reach "
                f"termination: the protocol livelocks once this path is "
                f"taken"
            ),
            trace=trace,
            kind="livelock",
        )
    ]


def _random_walks(
    model: Model,
    search: _Search,
    seed: int,
    walks: int,
    max_depth: int,
) -> list[Violation]:
    """Seeded bounded fallback: deep random probes past the budget."""
    rng = random.Random(seed)
    found: list[Violation] = []
    seen_codes: set[str] = set()
    for _ in range(walks):
        state = initial_state(model)
        trace: list[Step] = []
        for _ in range(max_depth):
            groups = _enabled_by_actor(model, state)
            if not groups:
                if not model.is_terminal(state) and "RA601" not in seen_codes:
                    seen_codes.add("RA601")
                    found.append(
                        Violation(
                            code="RA601",
                            message=(
                                "stuck non-quiescent state reached by a "
                                "random walk (bounded mode)"
                            ),
                            trace=tuple(trace),
                            kind="deadlock",
                        )
                    )
                break
            _, steps = rng.choice(groups)
            step = rng.choice(steps)
            state = state.replace(
                step.actor, step.next_state, step.consumed, step.sends
            )
            trace.append(step)
            if step.violation is not None:
                code, message = step.violation
                if code not in seen_codes:
                    seen_codes.add(code)
                    found.append(
                        Violation(
                            code=code,
                            message=message,
                            trace=tuple(trace),
                            kind="transition",
                        )
                    )
            for code, message in _check_state(model, state):
                if code not in seen_codes:
                    seen_codes.add(code)
                    found.append(
                        Violation(
                            code=code,
                            message=message,
                            trace=tuple(trace),
                            kind="invariant",
                        )
                    )
    return found


def explore(
    model: Model,
    *,
    por: bool = True,
    budget: int | None = None,
    seed: int = 0,
    fallback_walks: int = 64,
    fallback_depth: int = 400,
) -> ExplorationResult:
    """Exhaustively explore ``model`` and check all properties.

    Args:
        model: the control-plane model to verify.
        por: apply partial-order reduction (single-actor persistent
            sets with the cycle proviso).  Verdicts are identical with
            it off; exploration is just larger.
        budget: maximum number of distinct states to intern before
            switching to the bounded random-walk fallback; ``None``
            means unbounded (fully exhaustive).
        seed: RNG seed for the fallback walks.
        fallback_walks / fallback_depth: shape of the bounded sweep.
    """
    search = _Search(model=model, budget=budget)
    init = initial_state(model)
    sid0, _ = search.intern(init)

    # Iterative DFS with an explicit stack for the cycle proviso.
    stack: list[tuple[int, list[tuple[Step, int]], int]] = []
    on_stack: set[int] = set()
    expanded: set[int] = set()

    def push(sid: int) -> None:
        edges = _expand(search, sid, on_stack, por)
        expanded.add(sid)
        stack.append((sid, edges, 0))
        on_stack.add(sid)

    push(sid0)
    while stack:
        if search.over_budget():
            search.truncated = True
            break
        sid, edges, idx = stack[-1]
        if idx >= len(edges):
            stack.pop()
            on_stack.discard(sid)
            continue
        stack[-1] = (sid, edges, idx + 1)
        _, tid = edges[idx]
        if tid not in expanded:
            push(tid)

    exhaustive = not search.truncated
    violations: list[Violation] = []
    seen: set[str] = set()

    def add(code: str, message: str, target: int, kind: str) -> None:
        if code in seen:
            return
        seen.add(code)
        violations.append(
            Violation(
                code=code,
                message=message,
                trace=_shortest_trace(search, target),
                kind=kind,
            )
        )

    for sid, (code, message) in sorted(search.bad_states.items()):
        add(code, message, sid, "invariant")
    for sid, step in search.bad_steps:
        code, message = step.violation or ("RA704", "transition violation")
        # The violating edge's target carries the post-step evidence.
        target = next(
            (tid for s, tid in search.edges.get(sid, []) if s == step), sid
        )
        add(code, message, target, "transition")
    for sid, why in sorted(search.deadlocks.items()):
        state = search.states[sid]
        waiting = [
            f"{dst} <- {msg.tag}"
            for (_, dst), msgs in state.channels
            for msg in msgs
        ]
        detail = (
            f"; undelivered: {', '.join(sorted(set(waiting)))}"
            if waiting
            else "; all channels drained but the protocol is not done"
        )
        add(
            "RA601",
            f"reachable stuck state that is not quiescent success "
            f"({why}{detail})",
            sid,
            "deadlock",
        )

    if exhaustive:
        for v in _liveness_violations(search):
            if v.code not in seen:
                seen.add(v.code)
                violations.append(v)

    walks = 0
    if not exhaustive:
        walks = fallback_walks
        for v in _random_walks(
            model, search, seed, fallback_walks, fallback_depth
        ):
            if v.code not in seen:
                seen.add(v.code)
                violations.append(v)

    return ExplorationResult(
        model=model.name,
        plane=model.plane,
        exhaustive=exhaustive,
        states=len(search.states),
        transitions=search.transitions,
        terminal_states=len(search.terminal),
        violations=violations,
        walks=walks,
    )
