"""The standard model-checking sweep behind ``repro check --model``.

:func:`standard_sweep` enumerates the clean (unmutated) models verified
on every run: each control plane at small-but-adversarial sizes chosen
so exhaustive exploration stays well under a minute per model while
still exercising every protocol arm (movement, crash recovery,
checkpoint commit + rollback, adoption).  :func:`mutation_sweep` pairs
each plane's seeded protocol corruptions with the diagnostic codes the
checker must emit for them — the checker's own regression suite.

Small configurations are not a cop-out: every protocol rule in the
shims is P-independent (per-pair channel FIFO, per-slave ledger rows,
per-move records), so the races these sizes expose — message
reordering across channels, crash-vs-ack interleavings, stale-era
traffic — are the same races any P exposes, while staying enumerable.
"""

from __future__ import annotations

from ..diagnostics import CheckResult
from .checker import check_model
from .core import Model
from .explore import ExplorationResult

__all__ = [
    "SWEEP_PLANES",
    "mutation_sweep",
    "run_sweep",
    "standard_sweep",
]

#: Planes a sweep may be filtered to.
SWEEP_PLANES = ("centralized", "ft", "ckpt", "hier", "steal")


def standard_sweep(planes: tuple[str, ...] | None = None) -> list[Model]:
    """The clean models ``repro check --model`` verifies.

    Args:
        planes: restrict to these planes (default: all).
    """
    from ...ckpt.protocol_model import CkptConfig
    from ...ckpt.protocol_model import build_model as build_ckpt
    from ...faults.protocol_model import FTConfig
    from ...faults.protocol_model import build_model as build_ft
    from ...runtime.protocol_model import CentralConfig
    from ...runtime.protocol_model import build_model as build_central
    from ...scale.protocol_model import HierConfig
    from ...scale.protocol_model import build_model as build_hier
    from ...strategies.protocol_model import StealConfig
    from ...strategies.protocol_model import build_model as build_steal

    wanted = set(planes if planes is not None else SWEEP_PLANES)
    unknown = wanted - set(SWEEP_PLANES)
    if unknown:
        raise ValueError(
            f"unknown plane(s) {sorted(unknown)}; "
            f"choices: {', '.join(SWEEP_PLANES)}"
        )
    models: list[Model] = []
    if "centralized" in wanted:
        models.append(build_central(CentralConfig()))
        models.append(
            build_central(CentralConfig(n_slaves=3, units=4, moves=2))
        )
        models.append(build_central(CentralConfig(shape="front")))
        models.append(
            build_central(
                CentralConfig(n_slaves=3, units=4, shape="front")
            )
        )
    if "ft" in wanted:
        models.append(build_ft(FTConfig()))
        models.append(
            build_ft(FTConfig(n_slaves=3, units=4, crashable=("s1", "s2")))
        )
    if "ckpt" in wanted:
        models.append(build_ckpt(CkptConfig()))
        models.append(build_ckpt(CkptConfig(epochs=2)))
    if "hier" in wanted:
        models.append(build_hier(HierConfig()))
        models.append(
            build_hier(HierConfig(n_subs=3, units=4, crashable=("m1",)))
        )
    if "steal" in wanted:
        models.append(build_steal(StealConfig()))
        models.append(
            build_steal(StealConfig(crashable=("w0", "w1")))
        )
    return models


def mutation_sweep() -> list[tuple[Model, tuple[str, ...]]]:
    """Every seeded protocol corruption with its required diagnostics.

    Returns ``(model, codes)`` pairs: checking ``model`` must emit at
    least the ``codes``.  This is the self-test proving the checker can
    actually see the bug classes it claims to rule out.
    """
    from ...ckpt.protocol_model import CkptConfig
    from ...ckpt.protocol_model import build_model as build_ckpt
    from ...faults.protocol_model import FTConfig
    from ...faults.protocol_model import build_model as build_ft
    from ...runtime.protocol_model import CentralConfig
    from ...runtime.protocol_model import build_model as build_central
    from ...scale.protocol_model import HierConfig
    from ...scale.protocol_model import build_model as build_hier
    from ...strategies.protocol_model import StealConfig
    from ...strategies.protocol_model import build_model as build_steal

    pairs: list[tuple[Model, tuple[str, ...]]] = [
        (
            build_central(CentralConfig(), "drop_release"),
            ("RA601", "RA602"),
        ),
        (
            build_central(CentralConfig(), "lose_moved_units"),
            ("RA701",),
        ),
        (
            build_central(CentralConfig(), "duplicate_moved_units"),
            ("RA702",),
        ),
        (
            build_central(
                CentralConfig(shape="front"), "front_skip_peer"
            ),
            ("RA601", "RA602"),
        ),
        (build_ft(FTConfig(), "drop_cancel"), ("RA601", "RA602")),
        (build_ft(FTConfig(), "sweep_contested"), ("RA702",)),
        (build_ft(FTConfig(), "forget_regrant"), ("RA701",)),
        (build_ckpt(CkptConfig(), "skip_era_check"), ("RA703",)),
        (
            build_ckpt(CkptConfig(epochs=2), "commit_stale_deposit"),
            ("RA703",),
        ),
        (build_ckpt(CkptConfig(), "skip_dead_grant"), ("RA701",)),
        (
            build_hier(HierConfig(), "reparent_drop"),
            ("RA601", "RA602"),
        ),
        (build_hier(HierConfig(), "double_count_sum"), ("RA704",)),
        (build_hier(HierConfig(), "lose_shipped_units"), ("RA701",)),
        (
            build_steal(StealConfig(), "drop_term"),
            ("RA601", "RA602"),
        ),
        (build_steal(StealConfig(), "lose_stolen_units"), ("RA701",)),
        (build_steal(StealConfig(), "double_serve"), ("RA702",)),
        (build_steal(StealConfig(), "ignore_late_work"), ("RA701",)),
    ]
    return pairs


def run_sweep(
    planes: tuple[str, ...] | None = None,
    *,
    budget: int | None = None,
    seed: int = 0,
) -> list[tuple[CheckResult, ExplorationResult]]:
    """Check every model of the standard sweep; one result pair each."""
    return [
        check_model(model, por=True, budget=budget, seed=seed)
        for model in standard_sweep(planes)
    ]
