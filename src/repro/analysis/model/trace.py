"""Counterexample rendering: message-sequence traces.

A violation's evidence is a shortest path of actor steps from the
initial state.  :func:`render_trace` turns it into numbered
message-sequence lines a human can replay against the protocol sources:

.. code-block:: text

    1. s0        work(u0)                      send s0 -> master lb.status (rem=1)
    2. master    reply                recv s0  send master -> s0 lb.instr ('noop',)

Each line shows the acting actor, the step label, the consumed message
(if any) and every send the step performed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .core import Msg, Step

__all__ = ["render_trace"]


def _payload_str(payload: object) -> str:
    if payload == () or payload is None:
        return ""
    text = repr(payload)
    if len(text) > 48:
        text = text[:45] + "..."
    return f" {text}"


def _msg_str(msg: Msg) -> str:
    return f"{msg.src} -> {msg.dst} {msg.tag}{_payload_str(msg.payload)}"


def render_step(index: int, step: Step) -> list[str]:
    """Render one step as one or more trace lines."""
    parts = [f"{index:3d}. {step.actor:<10} {step.label}"]
    if step.consumed is not None:
        parts.append(f"recv {_msg_str(step.consumed)}")
    lines = ["  ".join(parts)]
    for msg in step.sends:
        lines.append(f"       {'':<10} send {_msg_str(msg)}")
    return lines


def render_trace(trace: Sequence[Step] | Iterable[Step]) -> list[str]:
    """Numbered message-sequence rendering of a counterexample path."""
    lines: list[str] = []
    for i, step in enumerate(trace, start=1):
        lines.extend(render_step(i, step))
    if not lines:
        lines.append("(violation in the initial state)")
    return lines
