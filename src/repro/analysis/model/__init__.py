"""Explicit-state model checking of the DLB control planes (pass 6).

Each control plane ships a thin *model shim* next to its runtime code
(``repro.runtime.protocol_model``, ``repro.faults.protocol_model``,
``repro.ckpt.protocol_model``, ``repro.scale.protocol_model``) that
abstracts the protocol into finite-state :class:`Actor`\\ s.  This
package owns the plane-agnostic machinery: the actor/message substrate
(:mod:`.core`), the exhaustive explorer with partial-order reduction
and the bounded fallback (:mod:`.explore`), counterexample rendering
(:mod:`.trace`), the diagnostic adapter (:mod:`.checker`) and the
standard verification sweep behind ``repro check --model``
(:mod:`.configs`).
"""

from .checker import check_model
from .configs import SWEEP_PLANES, mutation_sweep, run_sweep, standard_sweep
from .core import Actor, Invariant, Model, Msg, Step, Violation
from .explore import ExplorationResult, explore
from .trace import render_trace

__all__ = [
    "Actor",
    "ExplorationResult",
    "Invariant",
    "Model",
    "Msg",
    "SWEEP_PLANES",
    "Step",
    "Violation",
    "check_model",
    "explore",
    "mutation_sweep",
    "render_trace",
    "run_sweep",
    "standard_sweep",
]
