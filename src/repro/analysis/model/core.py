"""Finite-state actor models of the DLB control planes.

The model checker abstracts each control plane (centralized master/slave
DLB, FT recovery, checkpoint epochs, hierarchical ``sc.*``) into a small
set of :class:`Actor`\\ s exchanging :class:`Msg`\\ s over asynchronous
per-``(src, dst)`` FIFO channels, mirroring the simulator's transport:
messages between one pair of processes keep their order, delivery across
pairs interleaves nondeterministically, and a *selective* receive may
skip past non-matching messages in a channel exactly like the runtime's
tag-selective mailbox.

Actors are pure transition functions: :meth:`Actor.steps` maps a local
state plus the currently pending messages to the set of enabled
:class:`Step`\\ s (consume at most one message, update the local state,
emit any number of sends).  All local states and payloads must be
hashable values built from tuples/frozensets/ints/strings so the
explorer can intern whole :class:`SystemState`\\ s in its visited set.

A :class:`Model` bundles the actors with the plane's safety invariants
(evaluated on every reached state) and its quiescence predicate.  A
:class:`Step` may also carry a transition-local ``violation`` — shims
use this for checks that belong to an edge rather than a state, e.g.
"a stale-era message was applied" (``RA703``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping, Protocol, Sequence

__all__ = [
    "Actor",
    "Invariant",
    "Model",
    "Msg",
    "Step",
    "SystemState",
    "Violation",
    "initial_state",
    "pending_for",
    "selective",
]


@dataclass(frozen=True)
class Msg:
    """One in-flight message on the ``(src, dst)`` channel."""

    src: str
    dst: str
    tag: str
    payload: Hashable = ()

    def describe(self) -> str:
        body = "" if self.payload == () else f" {self.payload!r}"
        return f"{self.src} -> {self.dst} {self.tag}{body}"


@dataclass(frozen=True)
class Step:
    """One enabled transition of one actor.

    Attributes:
        actor: the acting actor's name.
        label: short human-readable action name for traces.
        next_state: the actor's next local state.
        consumed: the message removed from its channel, or ``None`` for
            an internal step.  Must be one of the pending messages the
            actor was shown.
        sends: messages appended (in order) to their channels.
        violation: transition-local safety violation ``(code, message)``
            raised by taking this step, if any.
    """

    actor: str
    label: str
    next_state: Hashable
    consumed: Msg | None = None
    sends: tuple[Msg, ...] = ()
    violation: tuple[str, str] | None = None


class Actor(Protocol):
    """A finite-state protocol participant."""

    name: str

    def init(self) -> Hashable:
        """The actor's initial local state."""
        ...

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        """All enabled transitions given the local state and the
        pending messages addressed to this actor.

        ``pending`` holds, for every nonempty inbound channel, that
        channel's messages in order; a step may consume any message
        whose earlier same-channel messages it would *not* also match
        (the explorer enforces per-channel order for equal tags, the
        actor is responsible for selectivity).

        Contract required by the partial-order reduction: a step that
        consumes nothing must not depend on ``pending`` at all — no
        "act only if no X is pending" guards.  The explorer verifies
        this by re-deriving the step set with an empty mailbox before
        reducing to this actor alone.
        """
        ...


Channels = tuple[tuple[tuple[str, str], tuple[Msg, ...]], ...]

#: Invariant over a whole system state: returns ``(code, message)`` on
#: violation, ``None`` when the state is fine.
Invariant = Callable[
    [Mapping[str, Hashable], Mapping[tuple[str, str], tuple[Msg, ...]]],
    "tuple[str, str] | None",
]


@dataclass(frozen=True)
class SystemState:
    """Immutable global state: actor locals plus channel contents."""

    locals: tuple[tuple[str, Hashable], ...]  # sorted by actor name
    channels: Channels  # sorted by (src, dst); only nonempty channels

    def local_of(self, actor: str) -> Hashable:
        for name, state in self.locals:
            if name == actor:
                return state
        raise KeyError(actor)

    def locals_map(self) -> dict[str, Hashable]:
        return dict(self.locals)

    def channels_map(self) -> dict[tuple[str, str], tuple[Msg, ...]]:
        return dict(self.channels)

    def replace(
        self,
        actor: str,
        local: Hashable,
        consumed: Msg | None,
        sends: Sequence[Msg],
    ) -> "SystemState":
        """The successor state after one actor step."""
        new_locals = tuple(
            (name, local if name == actor else state)
            for name, state in self.locals
        )
        chans = {key: list(msgs) for key, msgs in self.channels}
        if consumed is not None:
            key = (consumed.src, consumed.dst)
            queue = chans.get(key, [])
            try:
                queue.remove(consumed)
            except ValueError:
                raise ValueError(
                    f"step of {actor!r} consumed a message that is not "
                    f"pending: {consumed.describe()}"
                ) from None
            if not queue:
                del chans[key]
        for msg in sends:
            chans.setdefault((msg.src, msg.dst), []).append(msg)
        return SystemState(
            locals=new_locals,
            channels=tuple(
                (key, tuple(msgs)) for key, msgs in sorted(chans.items())
            ),
        )


def pending_for(state: SystemState, actor: str) -> tuple[Msg, ...]:
    """All in-flight messages addressed to ``actor``, channel by channel
    (each channel's messages stay in order)."""
    out: list[Msg] = []
    for (_, dst), msgs in state.channels:
        if dst == actor:
            out.extend(msgs)
    return tuple(out)


@dataclass(frozen=True)
class Violation:
    """One property violation with its evidence path."""

    code: str
    message: str
    trace: tuple[Step, ...]
    kind: str  # "deadlock" | "livelock" | "invariant" | "transition"


@dataclass
class Model:
    """One control plane abstracted for exhaustive exploration.

    Attributes:
        name: stable model identifier (used as the diagnostic locus).
        plane: the control plane this model abstracts
            (``centralized`` | ``ft`` | ``ckpt`` | ``hier`` |
            ``steal``).
        actors: the participating actors.
        invariants: global safety invariants, evaluated on every state.
        terminal: quiescent-success predicate over actor locals; the
            explorer additionally requires all live channels drained.
        dead_of: callable deriving the tombstoned actor set from the
            locals (e.g. "slaves the master declared dead"); messages
            to or from a tombstoned actor do not block quiescence.
        notes: abstraction notes surfaced in reports.
    """

    name: str
    plane: str
    actors: list[Actor]
    invariants: list[Invariant] = field(default_factory=list)
    terminal: Callable[[Mapping[str, Hashable]], bool] = lambda locals_: True
    dead_of: Callable[[Mapping[str, Hashable]], frozenset[str]] = (
        lambda locals_: frozenset()
    )
    notes: str = ""

    def actor_names(self) -> list[str]:
        return [a.name for a in self.actors]

    def is_terminal(self, state: SystemState) -> bool:
        """Quiescent success: predicate holds and live channels empty."""
        locals_ = state.locals_map()
        dead = self.dead_of(locals_)
        for (src, dst), msgs in state.channels:
            if msgs and src not in dead and dst not in dead:
                return False
        return self.terminal(locals_)


def selective(
    pending: Sequence[Msg], pred: Callable[[Msg], bool]
) -> list[Msg]:
    """Messages a selective receive with predicate ``pred`` may consume.

    Mirrors the runtime's tag-selective mailbox: within one sender's
    channel a receive may skip past non-matching messages but must take
    the earliest *matching* one; across channels any match is fair game.
    Returns the first matching message of each sender, in sender order.
    """
    out: list[Msg] = []
    taken: set[str] = set()
    for msg in pending:
        if msg.src in taken or not pred(msg):
            continue
        taken.add(msg.src)
        out.append(msg)
    return out


def initial_state(model: Model) -> SystemState:
    """The model's initial :class:`SystemState`."""
    return SystemState(
        locals=tuple(
            sorted((a.name, a.init()) for a in model.actors)
        ),
        channels=(),
    )
