"""Static verification suite for generated SPMD+DLB programs.

The generator (``repro.compiler``) *constructs* parallel programs from
dependence information; this package *verifies* them, re-deriving the
paper's correctness obligations and checking each one against what the
compiler actually produced:

- :mod:`repro.analysis.ownership` — owner-computes rule (``RA1xx``):
  every write in the distributed loop targets data its executor owns.
- :mod:`repro.analysis.communication` — communication completeness
  (``RA2xx``): every non-owned read predicted by the dependence
  distance vectors is covered by a modelled message channel.
- :mod:`repro.analysis.movement` — movement safety (``RA3xx``):
  loop-carried dependences restrict work movement to block-preserving
  adjacent transfers.
- :mod:`repro.analysis.protocol_lint` — protocol lint (``RA4xx``):
  every ``Tags.*`` send site in the runtime pairs with a selective
  receive site; orphans and dead channels are flagged.
- :mod:`repro.analysis.replay` — happens-before replay (``RA5xx``):
  an execution's ``access`` events, ordered by its ``net`` message
  events under vector clocks, show no two slaves touched an element
  without an ordering message.

All passes report :class:`~repro.analysis.diagnostics.Diagnostic`
records with stable ``RAnnn`` codes (see ``docs/static-analysis.md``),
aggregated per subject into a
:class:`~repro.analysis.diagnostics.CheckResult`.  The ``repro check``
CLI subcommand runs the suite and exits nonzero on error-severity
findings; CI runs it over every shipped application.
"""

from .communication import check_communication
from .diagnostics import CODES, CheckResult, Diagnostic, Severity
from .movement import check_movement
from .ownership import check_owner_computes
from .protocol_lint import check_protocol, lint_sources
from .replay import check_log_file, check_replay
from .suite import check_plan, check_suite, replay_run, static_passes

__all__ = [
    "CODES",
    "CheckResult",
    "Diagnostic",
    "Severity",
    "check_communication",
    "check_log_file",
    "check_movement",
    "check_owner_computes",
    "check_plan",
    "check_protocol",
    "check_replay",
    "check_suite",
    "lint_sources",
    "replay_run",
    "static_passes",
]
