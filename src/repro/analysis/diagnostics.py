"""Shared diagnostic model for the static verification suite.

Every analysis pass reports :class:`Diagnostic` records with a stable
``RAnnn`` code, a severity, and a source locus, collected into a
:class:`CheckResult`.  Codes are stable API: tools (CI gates, waiver
files, tests) key on them, so a code is never reused for a different
condition.  The full table lives in :data:`CODES` and is documented in
``docs/static-analysis.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = ["CODES", "CheckResult", "Diagnostic", "Severity"]


class Severity(enum.Enum):
    """Diagnostic severity; ``ERROR`` findings gate CI (nonzero exit)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: more severe first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


CODES: dict[str, str] = {
    # Owner-computes checker (RA1xx)
    "RA101": "write to a non-owned element of a distributed array",
    "RA102": "write to a distributed array independent of the distributed "
    "loop without reduction-front machinery",
    "RA103": "front-style write whose subscript is not an owned unit id",
    "RA104": "write to a replicated array inside the distributed loop",
    # Communication-completeness checker (RA2xx)
    "RA201": "loop-carried flow dependence not covered by a modelled message",
    "RA202": "anti dependence (old-value read) not covered by a modelled message",
    "RA203": "non-local read not covered by a broadcast channel",
    "RA204": "unresolvable dependence distance: conservative treatment required",
    "RA205": "modelled channel covers no dependence (superfluous traffic)",
    # Movement-safety checker (RA3xx)
    "RA301": "unrestricted work movement despite loop-carried dependences",
    "RA302": "movement payload size is not positive",
    "RA303": "movement channel direction contradicts the movement constraint",
    "RA304": "carried dependence distance exceeds the modelled halo width",
    # Protocol lint (RA4xx)
    "RA401": "message tag family sent but never selectively received",
    "RA402": "message tag family received but never sent",
    "RA403": "tag family declared in the protocol but never used",
    "RA404": "tag family consumed only by non-blocking polls",
    # Happens-before replay checker (RA5xx)
    "RA501": "element touched by two slaves without an ordering message",
    "RA502": "event log carries no access events; replay check is vacuous",
    "RA503": "access event malformed; element accounting incomplete",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        code: stable ``RAnnn`` identifier (a :data:`CODES` key).
        severity: finding severity.
        message: human-readable description of this occurrence.
        pass_name: emitting pass (``owner`` | ``comm`` | ``movement`` |
            ``protocol`` | ``replay``).
        locus: source position of the finding — a statement label, a
            ``file:line``, a plan name, or a unit id, whichever the pass
            can pinpoint.
        details: small JSON-safe annotations (distances, pids, tags).
    """

    code: str
    severity: Severity
    message: str
    pass_name: str
    locus: str = ""
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def to_dict(self) -> dict[str, object]:
        """Flat JSON-safe representation."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "pass": self.pass_name,
            "locus": self.locus,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad shapes."""
        details = data.get("details", {})
        return cls(
            code=str(data["code"]),
            severity=Severity(str(data["severity"])),
            message=str(data["message"]),
            pass_name=str(data["pass"]),
            locus=str(data.get("locus", "")),
            details=dict(details) if isinstance(details, Mapping) else {},
        )

    def format(self) -> str:
        """One-line rendering: ``RA101 error [owner] locus: message``."""
        where = f" {self.locus}:" if self.locus else ":"
        return (
            f"{self.code} {self.severity.value} "
            f"[{self.pass_name}]{where} {self.message}"
        )


@dataclass
class CheckResult:
    """All diagnostics of one checked subject (one plan, one log, ...)."""

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, found: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(found)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was reported."""
        return not self.errors()

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered most-severe first, then by code."""
        return sorted(
            self.diagnostics, key=lambda d: (d.severity.rank, d.code, d.locus)
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": {
                sev.value: sum(
                    1 for d in self.diagnostics if d.severity is sev
                )
                for sev in Severity
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CheckResult":
        raw = data.get("diagnostics", [])
        if not isinstance(raw, list):
            raise ValueError("diagnostics must be a list")
        return cls(
            subject=str(data.get("subject", "")),
            diagnostics=[
                Diagnostic.from_dict(item)
                for item in raw
                if isinstance(item, Mapping)
            ],
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"check {self.subject}: " + ("OK" if self.ok else "FAILED")]
        for d in self.sorted():
            lines.append("  " + d.format())
        if not self.diagnostics:
            lines.append("  no findings")
        return "\n".join(lines)
