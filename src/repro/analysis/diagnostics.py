"""Shared diagnostic model for the static verification suite.

Every analysis pass reports :class:`Diagnostic` records with a stable
``RAnnn`` code, a severity, and a source locus, collected into a
:class:`CheckResult`.  Codes are stable API: tools (CI gates, waiver
files, tests) key on them, so a code is never reused for a different
condition.

The single source of truth for the code space is :data:`REGISTRY`
(code -> :class:`CodeInfo`: default severity, one-line summary, emitting
pass); the table in ``docs/static-analysis.md`` is asserted to match it
exactly by the test suite.  Passes construct findings through
:meth:`Diagnostic.new`, which fills the severity and pass name from the
registry so per-module severity literals cannot drift.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = [
    "CODES",
    "REGISTRY",
    "CheckResult",
    "CodeInfo",
    "Diagnostic",
    "Severity",
]


class Severity(enum.Enum):
    """Diagnostic severity; ``ERROR`` findings gate CI (nonzero exit)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: more severe first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry of one stable diagnostic code.

    Attributes:
        severity: the default severity a finding of this code carries
            (a pass may override it for a specific site, e.g. ``RA102``
            is a warning when the plan disables DLB movement).
        summary: one-line condition summary, mirrored verbatim in the
            docs table.
        pass_name: the emitting pass (``owner`` | ``comm`` | ``movement``
            | ``protocol`` | ``replay`` | ``model``).
    """

    severity: Severity
    summary: str
    pass_name: str


_E = Severity.ERROR
_W = Severity.WARNING
_I = Severity.INFO

REGISTRY: dict[str, CodeInfo] = {
    # Owner-computes checker (RA1xx)
    "RA101": CodeInfo(
        _E, "write to a non-owned element of a distributed array", "owner"
    ),
    "RA102": CodeInfo(
        _E,
        "write to a distributed array independent of the distributed "
        "loop without reduction-front machinery",
        "owner",
    ),
    "RA103": CodeInfo(
        _E, "front-style write whose subscript is not an owned unit id", "owner"
    ),
    "RA104": CodeInfo(
        _W, "write to a replicated array inside the distributed loop", "owner"
    ),
    # Communication-completeness checker (RA2xx)
    "RA201": CodeInfo(
        _E, "loop-carried flow dependence not covered by a modelled message", "comm"
    ),
    "RA202": CodeInfo(
        _E,
        "anti dependence (old-value read) not covered by a modelled message",
        "comm",
    ),
    "RA203": CodeInfo(
        _E, "non-local read not covered by a broadcast channel", "comm"
    ),
    "RA204": CodeInfo(
        _W,
        "unresolvable dependence distance: conservative treatment required",
        "comm",
    ),
    "RA205": CodeInfo(
        _I, "modelled channel covers no dependence (superfluous traffic)", "comm"
    ),
    # Movement-safety checker (RA3xx)
    "RA301": CodeInfo(
        _E, "unrestricted work movement despite loop-carried dependences", "movement"
    ),
    "RA302": CodeInfo(_E, "movement payload size is not positive", "movement"),
    "RA303": CodeInfo(
        _E,
        "movement channel direction contradicts the movement constraint",
        "movement",
    ),
    "RA304": CodeInfo(
        _W,
        "carried dependence distance exceeds the modelled halo width",
        "movement",
    ),
    # Protocol lint (RA4xx)
    "RA401": CodeInfo(
        _E, "message tag family sent but never selectively received", "protocol"
    ),
    "RA402": CodeInfo(
        _E, "message tag family received but never sent", "protocol"
    ),
    "RA403": CodeInfo(
        _W, "tag family declared in the protocol but never used", "protocol"
    ),
    "RA404": CodeInfo(
        _W, "tag family consumed only by non-blocking polls", "protocol"
    ),
    "RA405": CodeInfo(
        _E,
        "control kind constructed and sent but no receiver arm handles it",
        "protocol",
    ),
    "RA406": CodeInfo(
        _W, "control kind handled by a receiver arm but never sent", "protocol"
    ),
    # Happens-before replay checker (RA5xx)
    "RA501": CodeInfo(
        _E, "element touched by two slaves without an ordering message", "replay"
    ),
    "RA502": CodeInfo(
        _W, "event log carries no access events; replay check is vacuous", "replay"
    ),
    "RA503": CodeInfo(
        _W, "access event malformed; element accounting incomplete", "replay"
    ),
    # Protocol model checker: deadlock/liveness (RA6xx)
    "RA601": CodeInfo(
        _E,
        "model: reachable non-quiescent state with no enabled transition "
        "(deadlock)",
        "model",
    ),
    "RA602": CodeInfo(
        _E,
        "model: reachable state from which termination is unreachable "
        "(livelock)",
        "model",
    ),
    "RA603": CodeInfo(
        _I,
        "model: exploration budget exhausted; verification was bounded, "
        "not exhaustive",
        "model",
    ),
    # Protocol model checker: safety invariants (RA7xx)
    "RA701": CodeInfo(
        _E, "model: work unit lost (conservation undercount)", "model"
    ),
    "RA702": CodeInfo(
        _E,
        "model: work unit duplicated or owned by more than one actor",
        "model",
    ),
    "RA703": CodeInfo(
        _E,
        "model: era/epoch monotonicity violated (stale state applied)",
        "model",
    ),
    "RA704": CodeInfo(
        _E, "model: protocol-specific safety invariant violated", "model"
    ),
    # Differential engine equivalence (RA8xx)
    "RA801": CodeInfo(
        _E,
        "engine: batch event core trace not byte-identical to the "
        "reference engine",
        "engine",
    ),
    "RA802": CodeInfo(
        _E,
        "engine: batch event core run outcome (results/metrics) "
        "diverges from the reference engine",
        "engine",
    ),
}

#: Backward-compatible view: code -> one-line summary.
CODES: dict[str, str] = {code: info.summary for code, info in REGISTRY.items()}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        code: stable ``RAnnn`` identifier (a :data:`REGISTRY` key).
        severity: finding severity.
        message: human-readable description of this occurrence.
        pass_name: emitting pass (``owner`` | ``comm`` | ``movement`` |
            ``protocol`` | ``replay`` | ``model``).
        locus: source position of the finding — a statement label, a
            ``file:line``, a plan name, or a unit id, whichever the pass
            can pinpoint.
        details: small JSON-safe annotations (distances, pids, tags).
    """

    code: str
    severity: Severity
    message: str
    pass_name: str
    locus: str = ""
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in REGISTRY:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @classmethod
    def new(
        cls,
        code: str,
        message: str,
        *,
        locus: str = "",
        details: Mapping[str, object] | None = None,
        severity: Severity | None = None,
    ) -> "Diagnostic":
        """Construct a finding with severity and pass from the registry.

        ``severity`` overrides the registry default for the rare code
        whose weight is site-dependent.
        """
        info = REGISTRY[code]
        return cls(
            code=code,
            severity=severity if severity is not None else info.severity,
            message=message,
            pass_name=info.pass_name,
            locus=locus,
            details=details if details is not None else {},
        )

    def to_dict(self) -> dict[str, object]:
        """Flat JSON-safe representation."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "pass": self.pass_name,
            "locus": self.locus,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad shapes."""
        details = data.get("details", {})
        return cls(
            code=str(data["code"]),
            severity=Severity(str(data["severity"])),
            message=str(data["message"]),
            pass_name=str(data["pass"]),
            locus=str(data.get("locus", "")),
            details=dict(details) if isinstance(details, Mapping) else {},
        )

    def format(self) -> str:
        """One-line rendering: ``RA101 error [owner] locus: message``."""
        where = f" {self.locus}:" if self.locus else ":"
        return (
            f"{self.code} {self.severity.value} "
            f"[{self.pass_name}]{where} {self.message}"
        )


@dataclass
class CheckResult:
    """All diagnostics of one checked subject (one plan, one log, ...)."""

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, found: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(found)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was reported."""
        return not self.errors()

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered most-severe first, then by code."""
        return sorted(
            self.diagnostics, key=lambda d: (d.severity.rank, d.code, d.locus)
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": {
                sev.value: sum(
                    1 for d in self.diagnostics if d.severity is sev
                )
                for sev in Severity
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CheckResult":
        raw = data.get("diagnostics", [])
        if not isinstance(raw, list):
            raise ValueError("diagnostics must be a list")
        return cls(
            subject=str(data.get("subject", "")),
            diagnostics=[
                Diagnostic.from_dict(item)
                for item in raw
                if isinstance(item, Mapping)
            ],
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"check {self.subject}: " + ("OK" if self.ok else "FAILED")]
        for d in self.sorted():
            lines.append("  " + d.format())
            trace = d.details.get("trace")
            if isinstance(trace, (list, tuple)):
                lines.extend(f"      {step}" for step in trace)
        if not self.diagnostics:
            lines.append("  no findings")
        return "\n".join(lines)
