"""Differential engine equivalence (RA8xx): batch vs reference traces.

The batch event core (:class:`repro.sim.BatchEngine`) promises *byte
identity*: every observed run must produce exactly the same structured
event trace and numeric results as the reference engine.  This pass
checks the promise differentially — each case runs twice, once per
engine mode, and the JSONL trace bytes, numeric result digest, and run
metrics are compared.  Any divergence is an ``RA801``/``RA802`` error
naming the case and the first point of disagreement.

The case set mirrors the golden-trace suite: the three paper apps
(MM/SOR/LU with competing loads), a checkpointed SOR run, the
hierarchical control plane, and the work-stealing / robust
self-scheduling strategy planes.  It is wired into ``repro check
--engines`` so the equivalence contract is lintable locally and in CI
(see ``.github/workflows/ci.yml``'s differential-equivalence step).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable

import numpy as np

from ..config import CheckpointConfig, ClusterSpec, ProcessorSpec, RunConfig
from .diagnostics import Diagnostic

__all__ = ["ENGINE_CASES", "run_case", "check_engine_equivalence"]


def _digest(obj: Any, h: "hashlib._Hash") -> None:
    if obj is None:
        h.update(b"none")
    elif isinstance(obj, dict):
        for key in sorted(obj):
            h.update(str(key).encode())
            _digest(obj[key], h)
    else:
        arr = np.ascontiguousarray(np.asarray(obj))
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())


def _cfg(engine: str, ckpt: bool = False) -> RunConfig:
    return RunConfig(
        cluster=ClusterSpec(n_slaves=4, processor=ProcessorSpec(speed=3e4)),
        ckpt=CheckpointConfig(enabled=ckpt, interval=0.5),
        engine=engine,
    )


def _fingerprint(res: Any, recorder: Any) -> dict[str, Any]:
    trace = recorder.log.to_jsonl().encode("utf-8")
    rh = hashlib.sha256()
    _digest(getattr(res, "result", None), rh)
    return {
        "trace_sha256": hashlib.sha256(trace).hexdigest(),
        "result_sha256": rh.hexdigest(),
        "elapsed": res.elapsed,
        "message_count": res.message_count,
        "trace_events": len(recorder.log),
    }


def _case_app(app: str, engine: str, ckpt: bool = False) -> dict[str, Any]:
    from ..apps import build_lu, build_matmul, build_sor
    from ..obs import Recorder
    from ..runtime import run_application
    from ..sim import ConstantLoad

    plan = {
        "matmul": lambda: build_matmul(n=64),
        "sor": lambda: build_sor(n=48, maxiter=6),
        "lu": lambda: build_lu(n=60),
    }[app]()
    recorder = Recorder()
    res = run_application(
        plan,
        _cfg(engine, ckpt=ckpt),
        loads={0: ConstantLoad(k=1)},
        seed=7,
        recorder=recorder,
    )
    return _fingerprint(res, recorder)


def _case_hier(engine: str) -> dict[str, Any]:
    from ..apps import build_matmul
    from ..obs import Recorder
    from ..scale import run_hierarchical
    from ..sim import ConstantLoad

    recorder = Recorder()
    res = run_hierarchical(
        build_matmul(n=48),
        RunConfig(
            cluster=ClusterSpec(n_slaves=8, processor=ProcessorSpec(speed=3e4)),
            engine=engine,
        ),
        {0: ConstantLoad(k=1)},
        fanout=2,
        seed=7,
        recorder=recorder,
    )
    return _fingerprint(res, recorder)


def _case_strategy(strategy: str, engine: str) -> dict[str, Any]:
    from ..apps import build_matmul
    from ..obs import Recorder
    from ..sim import ConstantLoad
    from ..strategies import run_strategy

    recorder = Recorder()
    out = run_strategy(
        strategy,
        build_matmul(n=48),
        RunConfig(
            cluster=ClusterSpec(n_slaves=4, processor=ProcessorSpec(speed=3e4)),
            engine=engine,
        ),
        {0: ConstantLoad(k=1)},
        seed=7,
        recorder=recorder,
    )
    return _fingerprint(out, recorder)


ENGINE_CASES: dict[str, Callable[[str], dict[str, Any]]] = {
    "matmul": lambda engine: _case_app("matmul", engine),
    "sor": lambda engine: _case_app("sor", engine),
    "lu": lambda engine: _case_app("lu", engine),
    "sor_ckpt": lambda engine: _case_app("sor", engine, ckpt=True),
    "hier_matmul": _case_hier,
    "steal_matmul": lambda engine: _case_strategy("stealing", engine),
    "rdlb_matmul": lambda engine: _case_strategy("rdlb", engine),
}


def run_case(name: str, engine: str) -> dict[str, Any]:
    """Fingerprint one equivalence case under one engine mode."""
    return ENGINE_CASES[name](engine)


def check_engine_equivalence(
    cases: list[str] | None = None,
) -> list[Diagnostic]:
    """Run every case under both engines and diff the fingerprints."""
    diags: list[Diagnostic] = []
    for name in cases if cases is not None else sorted(ENGINE_CASES):
        ref = run_case(name, "reference")
        bat = run_case(name, "batch")
        if bat["trace_sha256"] != ref["trace_sha256"]:
            diags.append(
                Diagnostic.new(
                    "RA801",
                    f"batch-engine trace diverges from reference on "
                    f"{name!r} ({bat['trace_events']} vs "
                    f"{ref['trace_events']} events)",
                    locus=name,
                    details={
                        "reference_sha256": ref["trace_sha256"],
                        "batch_sha256": bat["trace_sha256"],
                    },
                )
            )
        drift = {
            key: (ref[key], bat[key])
            for key in ("result_sha256", "elapsed", "message_count")
            if ref[key] != bat[key]
        }
        if drift:
            diags.append(
                Diagnostic.new(
                    "RA802",
                    f"batch-engine run outcome diverges from reference "
                    f"on {name!r}: {sorted(drift)}",
                    locus=name,
                    details={
                        k: {"reference": r, "batch": b}
                        for k, (r, b) in drift.items()
                    },
                )
            )
    return diags
