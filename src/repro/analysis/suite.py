"""Pass orchestration: run the verification suite over one plan.

The static passes (owner-computes, communication completeness, movement
safety) need only an :class:`~repro.compiler.plan.ExecutionPlan`; the
protocol lint inspects the runtime sources once per suite; the replay
pass needs an event log, which :func:`replay_run` produces by executing
a recorded cost-only simulation of the plan.  :func:`check_suite` is the
entry point the ``repro check`` CLI and CI gate use.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..compiler.plan import ExecutionPlan
from ..config import RunConfig
from ..obs import Event, Recorder
from .communication import check_communication
from .diagnostics import CheckResult, Diagnostic
from .movement import check_movement
from .ownership import check_owner_computes
from .protocol_lint import check_protocol
from .replay import check_replay

__all__ = ["check_plan", "check_suite", "replay_run", "static_passes"]


def static_passes(plan: ExecutionPlan) -> list[Diagnostic]:
    """Run the three plan-level static passes, in pass order."""
    found: list[Diagnostic] = []
    found.extend(check_owner_computes(plan))
    found.extend(check_communication(plan))
    found.extend(check_movement(plan))
    return found


def check_plan(plan: ExecutionPlan) -> CheckResult:
    """Static verification of one plan (no protocol lint, no replay)."""
    return CheckResult(subject=plan.name, diagnostics=static_passes(plan))


def replay_run(
    plan: ExecutionPlan,
    run_cfg: RunConfig,
    seed: int = 0,
    loads: Mapping[int, Any] | None = None,
) -> list[Diagnostic]:
    """Execute a recorded simulation of ``plan`` and replay its events.

    The run is whatever ``run_cfg`` describes — the CLI uses small
    cost-only configurations so the replay stays cheap; numerics are
    irrelevant to the happens-before relation.  ``loads`` (pid ->
    external load generator) provokes work movement, exercising the
    movement-edge ordering paths.
    """
    from ..runtime import run_application

    recorder = Recorder()
    run_application(
        plan, run_cfg, loads=loads or {}, seed=seed, recorder=recorder
    )
    return check_replay(recorder.log, subject=plan.name)


def check_suite(
    plan: ExecutionPlan,
    run_cfg: RunConfig | None = None,
    *,
    protocol: bool = True,
    events: Iterable[Event] | None = None,
    seed: int = 0,
) -> CheckResult:
    """Full verification of one plan.

    Args:
        plan: the execution plan to verify.
        run_cfg: when given, a recorded simulation provides the event
            log for the replay pass; when ``None`` and no ``events``
            are supplied, the replay pass is skipped.
        protocol: include the runtime protocol lint (its findings are
            plan-independent; CLI callers run it once for the first
            subject only).
        events: a pre-recorded event stream to replay instead of
            simulating (e.g. loaded from ``repro trace --events``).
        seed: simulation seed for the replay run.
    """
    result = CheckResult(subject=plan.name)
    result.extend(static_passes(plan))
    if protocol:
        result.extend(check_protocol())
    if events is not None:
        result.extend(check_replay(events, subject=plan.name))
    elif run_cfg is not None:
        result.extend(replay_run(plan, run_cfg, seed=seed))
    return result
