"""Communication-completeness checker (pass 2, ``RA2xx``).

Every read of a non-owned element must be covered by a message the
generated program actually sends.  The *requirements* come straight from
the dependence analysis (``repro.compiler.deps`` distance vectors); the
*provisions* are the plan's modelled :class:`~repro.compiler.plan.ChannelSpec`
set, which the compiler derives when it inserts communication.  A
requirement without a matching channel is a read of stale or absent data
— the bug class the paper's compiler exists to prevent.
"""

from __future__ import annotations

from ..compiler.plan import ChannelSpec, ExecutionPlan, LoopShape
from .diagnostics import Diagnostic

__all__ = ["check_communication"]


def _covers_distance(channel: ChannelSpec, dist: int) -> bool:
    """Does ``channel`` carry the values a carried distance needs?

    Positive distances need updated values flowing rightward (boundary
    pipelining); negative distances need old values flowing leftward
    (the sweep-start halo).  The distance must match exactly: a width-1
    boundary message cannot satisfy a distance-2 dependence.
    """
    if channel.kind not in ("boundary", "halo"):
        return False
    wanted = "to_right" if dist > 0 else "to_left"
    return channel.direction == wanted and channel.distance == dist


def check_communication(plan: ExecutionPlan) -> list[Diagnostic]:
    """Verify the plan's channels cover every predicted non-owned read."""
    deps = plan.deps
    found: list[Diagnostic] = []
    used: set[int] = set()

    for dist in deps.carried_distances:
        match = next(
            (
                i
                for i, ch in enumerate(plan.comms)
                if _covers_distance(ch, dist)
            ),
            None,
        )
        if match is not None:
            used.add(match)
            continue
        if dist > 0:
            found.append(
                Diagnostic.new(
                    "RA201",
                    (
                        f"flow dependence at distance +{dist} along "
                        f"{deps.distributed_var!r} has no boundary channel: "
                        f"readers would use stale neighbour values"
                    ),
                    locus=plan.name,
                    details={"distance": dist},
                )
            )
        else:
            found.append(
                Diagnostic.new(
                    "RA202",
                    (
                        f"anti dependence at distance {dist} along "
                        f"{deps.distributed_var!r} has no halo channel: "
                        f"old values are overwritten before the left "
                        f"neighbour reads them"
                    ),
                    locus=plan.name,
                    details={"distance": dist},
                )
            )

    broadcast_arrays = {
        ch.array
        for i, ch in enumerate(plan.comms)
        if ch.kind == "front" and ch.direction == "broadcast"
    }
    for read in deps.nonlocal_reads:
        if read.array in broadcast_arrays:
            used.update(
                i
                for i, ch in enumerate(plan.comms)
                if ch.kind == "front" and ch.array == read.array
            )
            continue
        found.append(
            Diagnostic.new(
                "RA203",
                (
                    f"non-local read {read} (subscript independent of "
                    f"{deps.distributed_var!r}) has no broadcast channel: "
                    f"under dynamic ownership the reader cannot locate "
                    f"the owner (Section 4.6)"
                ),
                locus=str(read),
                details={"array": read.array},
            )
        )

    if deps.carried_unknown:
        found.append(
            Diagnostic.new(
                "RA204",
                (
                    "a dependence distance along the distributed loop is "
                    "unresolvable at compile time; the analysis treats it "
                    "as carried, so movement must stay restricted and "
                    "every neighbour exchange is assumed live"
                ),
                locus=plan.name,
            )
        )

    # Channels that cover nothing are not wrong, but they are traffic the
    # dependence analysis cannot justify — worth a look.
    for i, ch in enumerate(plan.comms):
        if ch.kind == "move" or i in used:
            continue
        found.append(
            Diagnostic.new(
                "RA205",
                (
                    f"channel {ch.kind}/{ch.direction} (array={ch.array}, "
                    f"distance={ch.distance}) covers no analysed dependence"
                ),
                locus=plan.name,
                details={"kind": ch.kind, "direction": ch.direction},
            )
        )

    # Shape-level cross-check: a pipeline schedule without any data
    # channel at all cannot be right when dependences are carried.
    if (
        plan.shape is LoopShape.PIPELINE
        and deps.loop_carried
        and not any(ch.kind in ("boundary", "halo") for ch in plan.comms)
    ):
        found.append(
            Diagnostic.new(
                "RA201",
                (
                    "pipeline plan models no boundary or halo channel at "
                    "all despite loop-carried dependences"
                ),
                locus=plan.name,
            )
        )
    return found
