"""Movement-safety checker (pass 3, ``RA3xx``).

Loop-carried dependences make work movement order-sensitive: only
block-preserving transfers between logically adjacent slaves keep the
pipeline's neighbour relationships (and hence its boundary messages)
meaningful (paper Section 3.2, Figure 1b).  A plan that claims
unrestricted movement while its dependence analysis reports carried
distances would let the balancer scatter pipelined iterations
arbitrarily — the second seeded-fault class the acceptance tests pin.
"""

from __future__ import annotations

from ..compiler.plan import ExecutionPlan, LoopShape
from .diagnostics import Diagnostic

__all__ = ["check_movement"]


def check_movement(plan: ExecutionPlan) -> list[Diagnostic]:
    """Verify the plan's movement constraints honour its dependences."""
    deps = plan.deps
    found: list[Diagnostic] = []

    if deps.movement_restricted and not plan.movement.restricted:
        found.append(
            Diagnostic.new(
                "RA301",
                (
                    "plan permits unrestricted work movement, but the "
                    "distributed loop carries dependences at distances "
                    f"{list(deps.carried_distances) or 'unknown'}: moving "
                    "a non-edge iteration breaks the block distribution "
                    "and the neighbour exchanges that depend on it"
                ),
                locus=plan.name,
                details={
                    "carried_distances": list(deps.carried_distances),
                    "carried_unknown": deps.carried_unknown,
                },
            )
        )

    if plan.shape is LoopShape.PIPELINE and not plan.movement.restricted:
        found.append(
            Diagnostic.new(
                "RA301",
                (
                    "pipeline schedules require block-preserving movement: "
                    "a mid-block column moved to a non-adjacent slave "
                    "could never re-anchor its boundary traffic"
                ),
                locus=plan.name,
            )
        )

    if plan.movement.unit_bytes <= 0:
        found.append(
            Diagnostic.new(
                "RA302",
                (
                    f"movement payload size is {plan.movement.unit_bytes} "
                    f"bytes per unit; transfers would be costed as free "
                    f"and the profitability test is meaningless"
                ),
                locus=plan.name,
                details={"unit_bytes": plan.movement.unit_bytes},
            )
        )

    move_channels = [ch for ch in plan.comms if ch.kind == "move"]
    for ch in move_channels:
        expected = "adjacent" if plan.movement.restricted else "any"
        if ch.direction != expected:
            found.append(
                Diagnostic.new(
                    "RA303",
                    (
                        f"movement channel is modelled as "
                        f"{ch.direction!r} but the movement spec says "
                        f"restricted={plan.movement.restricted}: the "
                        f"generated code and the balancer would disagree "
                        f"about legal transfers"
                    ),
                    locus=plan.name,
                    details={
                        "channel_direction": ch.direction,
                        "restricted": plan.movement.restricted,
                    },
                )
            )

    wide = [d for d in deps.carried_distances if abs(d) > 1]
    if wide and plan.movement.restricted:
        found.append(
            Diagnostic.new(
                "RA304",
                (
                    f"carried distances {wide} exceed the width-1 "
                    f"neighbour halo the runtime models; adjacent-only "
                    f"movement alone does not make width-{max(abs(d) for d in wide)} "
                    f"exchanges safe"
                ),
                locus=plan.name,
                details={"distances": wide},
            )
        )
    return found
