"""Owner-computes checker (pass 1, ``RA1xx``).

Under the paper's owner-computes rule, every write executed by a slave
must target data that slave owns under the chosen distribution.  Unit
ids are the distributed loop's index values, so for a write *inside* the
distributed loop the distributed-dimension subscript must be exactly the
distributed index variable — any offset (``a[j+1]``) or scaling
(``a[2*j]``) would let iteration ``j`` write an element owned by a
different slave, which no amount of messaging fixes after the fact.

Writes *outside* the distributed loop (LU's pivot scaling) are legal
only as owner-computed fronts: the subscript must be a plain enclosing
loop index (the repetition variable), so the owner of that unit computes
it, and the plan must provide the reduction-front broadcast machinery to
ship the values (Section 4.6).
"""

from __future__ import annotations

from ..compiler.ir import (
    Affine,
    Assign,
    Conditional,
    Directive,
    Loop,
    Program,
    Stmt,
)
from ..compiler.plan import ExecutionPlan, LoopShape
from .diagnostics import Diagnostic, Severity

__all__ = ["check_owner_computes"]


def _is_plain_var(expr: Affine, name: str) -> bool:
    """True when ``expr`` is exactly the variable ``name``."""
    return (
        expr.constant == 0
        and len(expr.terms) == 1
        and expr.coeff(name) == 1
    )


def _walk(
    stmts: tuple[Stmt, ...],
    enclosing: tuple[str, ...],
    inside_distributed: bool,
    distribute: str,
) -> list[tuple[Assign, tuple[str, ...], bool]]:
    """All assignments with their enclosing loop indices and whether the
    distributed loop encloses them."""
    out: list[tuple[Assign, tuple[str, ...], bool]] = []
    for s in stmts:
        if isinstance(s, Assign):
            out.append((s, enclosing, inside_distributed))
        elif isinstance(s, Loop):
            out.extend(
                _walk(
                    s.body,
                    enclosing + (s.index,),
                    inside_distributed or s.index == distribute,
                    distribute,
                )
            )
        elif isinstance(s, Conditional):
            out.extend(_walk(s.body, enclosing, inside_distributed, distribute))
    return out


def check_owner_computes(plan: ExecutionPlan) -> list[Diagnostic]:
    """Verify every write targets owner-local data; see module doc."""
    program, directive = plan.program, plan.directive
    if program is None or directive is None:
        return [
            Diagnostic.new(
                "RA102",
                "plan carries no IR provenance; owner-computes check "
                "skipped",
                locus=plan.name,
                severity=Severity.WARNING,
            )
        ]
    return check_program(program, directive, plan.shape)


def check_program(
    program: Program, directive: Directive, shape: LoopShape | None = None
) -> list[Diagnostic]:
    """IR-level owner-computes check (usable before a plan exists)."""
    d = directive.distribute
    found: list[Diagnostic] = []
    for assign, enclosing, inside in _walk(program.body, (), False, d):
        locus = assign.label or str(assign.target)
        ddim = directive.distributed_dim(assign.target.array)
        if ddim is None:
            # Replicated array: reads are free, but a write inside the
            # distributed loop leaves per-slave copies that never merge.
            if inside:
                found.append(
                    Diagnostic.new(
                        "RA104",
                        (
                            f"write to replicated array "
                            f"{assign.target.array!r} inside the "
                            f"distributed loop: slave copies diverge"
                        ),
                        locus=locus,
                    )
                )
            continue
        if ddim >= len(assign.target.index):
            continue  # rank errors are dependence analysis's to report
        sub = assign.target.index[ddim]
        if inside:
            if _is_plain_var(sub, d):
                continue
            if sub.coeff(d) != 0:
                found.append(
                    Diagnostic.new(
                        "RA101",
                        (
                            f"iteration {d} writes "
                            f"{assign.target.array}[...][{sub}] on the "
                            f"distributed dimension: the target is owned "
                            f"by a different slave"
                        ),
                        locus=locus,
                        details={"subscript": str(sub), "distributed": d},
                    )
                )
            else:
                # Subscript ignores the distributed index entirely: every
                # iteration writes the same (possibly non-owned) element.
                found.append(
                    Diagnostic.new(
                        "RA101",
                        (
                            f"write {assign.target} inside the distributed "
                            f"loop does not use the distributed index {d}: "
                            f"all iterations target one owner's element"
                        ),
                        locus=locus,
                        details={"subscript": str(sub), "distributed": d},
                    )
                )
            continue
        # Outside the distributed loop: front-style write.  The subscript
        # must be a plain enclosing loop index so a unique owner computes
        # it, and the schedule must broadcast the result.
        owner_var = next(
            (v for v in enclosing if _is_plain_var(sub, v)), None
        )
        if owner_var is None:
            found.append(
                Diagnostic.new(
                    "RA103",
                    (
                        f"write {assign.target} outside the distributed "
                        f"loop has distributed-dim subscript {sub}, which "
                        f"is not a plain enclosing loop index: no unique "
                        f"owner can compute it"
                    ),
                    locus=locus,
                    details={"subscript": str(sub)},
                )
            )
        elif shape is not None and shape is not LoopShape.REDUCTION_FRONT:
            found.append(
                Diagnostic.new(
                    "RA102",
                    (
                        f"owner-computed front write {assign.target} "
                        f"requires reduction-front broadcast machinery, "
                        f"but the plan shape is {shape.value}"
                    ),
                    locus=locus,
                    details={"shape": shape.value},
                )
            )
    return found
