"""Protocol lint (pass 4, ``RA4xx``): static send/receive pairing.

The generated program's correctness leans on *selective receive*: every
``Send`` tags its message, and the consumer names that tag in a ``Recv``
/ ``Poll``, an equality dispatch on ``msg.tag``, or a ``startswith``
family dispatch.  This pass parses the runtime sources (master, slave,
pipeline interpreters) with :mod:`ast`, resolves every tag expression to
its *tag family* (the :class:`~repro.runtime.protocol.Tags` constant or
constructor it came from), and pairs send sites with receive sites:

- a family that is sent but never selectively received is an orphan
  message — it sits in a mailbox forever (``RA401``);
- a family that is received but never sent blocks its consumer for good
  (``RA402``);
- a family declared in ``Tags`` but never used anywhere is a dead
  channel (``RA403``);
- a family consumed *only* through non-blocking polls may never actually
  be drained (``RA404``).

Tag families are derived from the ``Tags`` class itself (constants keep
their literal; constructors are probed with placeholder arguments and
the variable segments generalised), so the lint tracks protocol changes
without a hand-maintained table.

Below the tag level sits the *kind* sub-protocol: recovery control
(``lb.ctrl``) and checkpoint traffic (``lb.ckpt``) multiplex many
exchanges over one tag, dispatching on a ``kind`` string (``grant``,
``cancel_send``, ``ckpt``, ``rollback``, ``deposit``, ``manifest``,
``pull``, ...).  :func:`lint_kinds` pairs every constructed kind with a
receiver dispatch arm (``RA405``/``RA406``), so dropping a handler arm
for e.g. ``rollback`` is caught statically even though the ``lb.ctrl``
tag itself still has a selective receive.

:func:`check_protocol` runs both levels over all four control planes:
the base master/slave/pipeline protocol, the FT recovery messages, the
checkpoint exchanges (all in the runtime sources), and the hierarchical
``sc.*`` plane.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field

from .diagnostics import Diagnostic

__all__ = [
    "check_protocol",
    "lint_kinds",
    "lint_sources",
    "tag_families",
]

_DUMMY = 987654321  # placeholder argument, assumed absent from literals


@dataclass(frozen=True)
class _Family:
    """One tag family: an exact literal or a dotted prefix pattern."""

    key: str  # display key, e.g. "lb.status" or "pipe.bnd.*"
    prefix: str  # match prefix: full literal, or text before the "*"
    exact: bool

    def matches_literal_prefix(self, literal: str) -> bool:
        """Does a ``startswith(literal)`` dispatch select this family?"""
        return literal.startswith(self.prefix) or self.prefix.startswith(literal)


@dataclass
class _Sites:
    sends: list[str] = field(default_factory=list)
    recvs: list[str] = field(default_factory=list)  # blocking selective
    polls: list[str] = field(default_factory=list)  # non-blocking selective
    dispatches: list[str] = field(default_factory=list)  # ==/startswith/lambda


def tag_families(tags_cls: type | None = None) -> dict[str, _Family]:
    """Derive the tag families from the ``Tags`` class.

    Returns a mapping from the family key to its :class:`_Family`, keyed
    additionally by the ``Tags`` attribute name for AST resolution.
    """
    if tags_cls is None:
        from ..runtime.protocol import Tags

        tags_cls = Tags
    families: dict[str, _Family] = {}
    for name, value in vars(tags_cls).items():
        if name.startswith("_"):
            continue
        if isinstance(value, str):
            families[name] = _Family(key=value, prefix=value, exact=True)
            continue
        fn = getattr(tags_cls, name, None)
        if not callable(fn):
            continue
        try:
            n_args = len(inspect.signature(fn).parameters)
            probe = fn(*([_DUMMY] * n_args))
        except Exception:  # pragma: no cover - unprobeable constructor
            continue
        if not isinstance(probe, str):
            continue
        segments = probe.split(".")
        fixed = []
        for seg in segments:
            if str(_DUMMY) in seg:
                break
            fixed.append(seg)
        prefix = ".".join(fixed) + "."
        families[name] = _Family(key=prefix + "*", prefix=prefix, exact=False)
    return families


class _SiteCollector(ast.NodeVisitor):
    """Collect send/receive sites of ``Tags``-tagged messages."""

    def __init__(self, module: str, families: dict[str, _Family]):
        self.module = module
        self.families = families
        self.sites: dict[str, _Sites] = {}
        self._lambda_depth = 0

    # -- helpers ---------------------------------------------------------

    def _locus(self, node: ast.AST) -> str:
        return f"{self.module}:{getattr(node, 'lineno', 0)}"

    def _sites_for(self, fam: _Family) -> _Sites:
        return self.sites.setdefault(fam.key, _Sites())

    def _resolve(self, node: ast.expr) -> _Family | None:
        """Resolve a tag expression to its family, if statically known."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "Tags"
        ):
            return self.families.get(node.attr)
        if isinstance(node, ast.Call):
            return self._resolve(node.func)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # A literal tag string: match it against the known families.
            for fam in self.families.values():
                if fam.exact and fam.prefix == node.value:
                    return fam
                if not fam.exact and node.value.startswith(fam.prefix):
                    return fam
        return None

    @staticmethod
    def _is_tag_ref(node: ast.expr) -> bool:
        """Heuristic: does this expression read a message tag?"""
        if isinstance(node, ast.Name) and node.id == "tag":
            return True
        return isinstance(node, ast.Attribute) and node.attr == "tag"

    # -- visitors --------------------------------------------------------

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Expected-tag closures (see PipelineSlave._recv_neighbor) build
        # the tag a selective receive waits for; any Tags use inside a
        # lambda therefore counts as a receive site.
        self._lambda_depth += 1
        self.generic_visit(node)
        self._lambda_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else None
        if name == "Send" and len(node.args) >= 2:
            fam = self._resolve(node.args[1])
            if fam is not None:
                self._sites_for(fam).sends.append(self._locus(node))
        elif name in ("Recv", "Poll") or (
            isinstance(fn, ast.Attribute) and fn.attr == "_recv_ft"
        ):
            # `_recv_ft` is the failure-tolerant wrapper around a
            # blocking selective Recv (it polls the same tag in a loop);
            # its tag argument is a receive site like Recv's.
            tag_expr = next(
                (kw.value for kw in node.keywords if kw.arg == "tag"), None
            )
            if tag_expr is None and len(node.args) >= 2:
                tag_expr = node.args[1]
            fam = self._resolve(tag_expr) if tag_expr is not None else None
            if fam is not None:
                bucket = self._sites_for(fam)
                (bucket.polls if name == "Poll" else bucket.recvs).append(
                    self._locus(node)
                )
        elif (
            isinstance(fn, ast.Attribute)
            and fn.attr == "startswith"
            and self._is_tag_ref(fn.value)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            literal = node.args[0].value
            for fam in self.families.values():
                if fam.matches_literal_prefix(literal):
                    self._sites_for(fam).dispatches.append(self._locus(node))
        elif self._lambda_depth > 0:
            fam = self._resolve(node)
            if fam is not None:
                self._sites_for(fam).dispatches.append(self._locus(node))
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) == 1 and isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            sides = [node.left, node.comparators[0]]
            if any(self._is_tag_ref(s) for s in sides):
                for side in sides:
                    fam = self._resolve(side)
                    if fam is not None:
                        self._sites_for(fam).dispatches.append(self._locus(node))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Bare `Tags.X` references inside lambdas (constant expected tags).
        if self._lambda_depth > 0:
            fam = self._resolve(node)
            if fam is not None:
                self._sites_for(fam).dispatches.append(self._locus(node))
        self.generic_visit(node)


def _default_sources() -> list[tuple[str, str]]:
    from ..runtime import master, pipeline, slave

    return [
        (mod.__name__.rsplit(".", 1)[-1] + ".py", inspect.getsource(mod))
        for mod in (master, slave, pipeline)
    ]


def lint_sources(
    sources: list[tuple[str, str]],
    families: dict[str, _Family] | None = None,
) -> list[Diagnostic]:
    """Run the send/receive pairing lint over ``(name, source)`` pairs."""
    fams = families if families is not None else tag_families()
    merged: dict[str, _Sites] = {}
    for module, text in sources:
        collector = _SiteCollector(module, fams)
        collector.visit(ast.parse(text))
        for key, sites in collector.sites.items():
            bucket = merged.setdefault(key, _Sites())
            bucket.sends.extend(sites.sends)
            bucket.recvs.extend(sites.recvs)
            bucket.polls.extend(sites.polls)
            bucket.dispatches.extend(sites.dispatches)

    found: list[Diagnostic] = []
    for fam in fams.values():
        sites = merged.get(fam.key, _Sites())
        receivers = sites.recvs + sites.polls + sites.dispatches
        if sites.sends and not receivers:
            found.append(
                Diagnostic.new(
                    "RA401",
                    f"tag family {fam.key!r} is sent but no selective "
                    f"receive, dispatch, or poll consumes it: messages "
                    f"would pile up unread",
                    locus=sites.sends[0],
                    details={"sends": sites.sends},
                )
            )
        elif receivers and not sites.sends:
            found.append(
                Diagnostic.new(
                    "RA402",
                    f"tag family {fam.key!r} is selectively received "
                    f"but never sent: a blocking consumer would "
                    f"deadlock waiting for it",
                    locus=receivers[0],
                    details={"receives": receivers},
                )
            )
        elif not sites.sends and not receivers:
            found.append(
                Diagnostic.new(
                    "RA403",
                    f"tag family {fam.key!r} is declared in Tags but "
                    f"neither sent nor received by the runtime",
                    locus="protocol.py",
                )
            )
        elif (
            sites.sends
            and sites.polls
            and not sites.recvs
            and not sites.dispatches
        ):
            found.append(
                Diagnostic.new(
                    "RA404",
                    f"tag family {fam.key!r} is consumed only by "
                    f"non-blocking polls: delivery is never guaranteed "
                    f"to be drained",
                    locus=sites.polls[0],
                    details={"polls": sites.polls},
                )
            )
    return found


class _KindCollector(ast.NodeVisitor):
    """Collect construction and dispatch sites of ``kind`` strings.

    Constructed kinds come from ``Ctrl(kind=...)`` (or its positional
    second argument), ``_send_ctrl(dst, "kind", ...)`` calls, and
    ``{"kind": "..."}`` payload literals.  Handled kinds come from
    equality or membership dispatches on a kind reference — an
    attribute ``*.kind``, a bare ``kind`` variable, or a
    ``payload.get("kind")`` call.
    """

    def __init__(self, module: str):
        self.module = module
        self.constructed: dict[str, list[str]] = {}
        self.handled: dict[str, list[str]] = {}

    def _locus(self, node: ast.AST) -> str:
        return f"{self.module}:{getattr(node, 'lineno', 0)}"

    def _note(
        self, bucket: dict[str, list[str]], kind: str, node: ast.AST
    ) -> None:
        bucket.setdefault(kind, []).append(self._locus(node))

    @staticmethod
    def _is_kind_ref(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "kind":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "kind":
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and bool(node.args)
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "kind"
        )

    @staticmethod
    def _str_const(node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else None
        attr = fn.attr if isinstance(fn, ast.Attribute) else None
        if name == "Ctrl" or attr == "_send_ctrl":
            expr: ast.expr | None = next(
                (kw.value for kw in node.keywords if kw.arg == "kind"), None
            )
            if expr is None:
                pos = 1  # Ctrl(seq, kind, ...) / _send_ctrl(dst, kind, ...)
                if len(node.args) > pos:
                    expr = node.args[pos]
            kind = self._str_const(expr) if expr is not None else None
            if kind is not None:
                self._note(self.constructed, kind, node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # `kind = "cancel_recv" if src == pid else "cancel_send"` style
        # construction: string literals bound to a ``kind`` variable are
        # construction sites (non-literal values, e.g. payload lookups
        # in handlers, contribute nothing).
        if any(
            isinstance(t, ast.Name) and t.id == "kind" for t in node.targets
        ):
            for kind in self._literal_branches(node.value):
                self._note(self.constructed, kind, node)
        self.generic_visit(node)

    @classmethod
    def _literal_branches(cls, value: ast.expr) -> list[str]:
        """String literals a ``kind = ...`` binding can evaluate to.

        Only direct literals and conditional-expression branches count;
        handler-side bindings (``kind = payload.get("kind")``) yield
        nothing.
        """
        kind = cls._str_const(value)
        if kind is not None:
            return [kind]
        if isinstance(value, ast.IfExp):
            return cls._literal_branches(value.body) + cls._literal_branches(
                value.orelse
            )
        return []

    def visit_Dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                key is not None
                and self._str_const(key) == "kind"
                and self._str_const(value) is not None
            ):
                self._note(self.constructed, str(self._str_const(value)), node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) == 1 and self._is_kind_ref(node.left):
            op, right = node.ops[0], node.comparators[0]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                kind = self._str_const(right)
                if kind is not None:
                    self._note(self.handled, kind, node)
            elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                right, (ast.Tuple, ast.List, ast.Set)
            ):
                for elt in right.elts:
                    kind = self._str_const(elt)
                    if kind is not None:
                        self._note(self.handled, kind, node)
        self.generic_visit(node)


def lint_kinds(sources: list[tuple[str, str]]) -> list[Diagnostic]:
    """Pair constructed control/checkpoint kinds with dispatch arms.

    A kind that is constructed and shipped but matches no receiver arm
    hits the runtime's unknown-control error path (``RA405``); an arm
    for a kind nothing constructs is dead dispatch code (``RA406``).
    """
    constructed: dict[str, list[str]] = {}
    handled: dict[str, list[str]] = {}
    for module, text in sources:
        collector = _KindCollector(module)
        collector.visit(ast.parse(text))
        for kind, sites in collector.constructed.items():
            constructed.setdefault(kind, []).extend(sites)
        for kind, sites in collector.handled.items():
            handled.setdefault(kind, []).extend(sites)

    found: list[Diagnostic] = []
    for kind in sorted(set(constructed) - set(handled)):
        found.append(
            Diagnostic.new(
                "RA405",
                f"control kind {kind!r} is constructed and sent but no "
                f"receiver dispatch arm handles it: the consumer would "
                f"reject it as an unknown control",
                locus=constructed[kind][0],
                details={"constructed": constructed[kind]},
            )
        )
    for kind in sorted(set(handled) - set(constructed)):
        found.append(
            Diagnostic.new(
                "RA406",
                f"control kind {kind!r} has a receiver dispatch arm but "
                f"is never constructed: dead protocol arm",
                locus=handled[kind][0],
                details={"handled": handled[kind]},
            )
        )
    return found


def _hier_sources() -> list[tuple[str, str]]:
    from ..scale import hierarchy

    return [("scale/hierarchy.py", inspect.getsource(hierarchy))]


def check_protocol() -> list[Diagnostic]:
    """Lint all four control planes of the shipped runtime sources.

    Covers the base master/slave/pipeline tag families (which include
    the FT ``lb.hb``/``lb.ctrl``/``lb.ctrlack`` and checkpoint
    ``lb.ckpt`` traffic), the ``kind`` sub-protocol multiplexed over the
    control/checkpoint tags, and the hierarchical ``sc.*`` plane.
    """
    from ..scale.protocol import ScaleTags

    sources = _default_sources()
    found = lint_sources(sources)
    found.extend(lint_kinds(sources))
    found.extend(lint_sources(_hier_sources(), tag_families(ScaleTags)))
    return found
