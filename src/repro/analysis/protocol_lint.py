"""Protocol lint (pass 4, ``RA4xx``): static send/receive pairing.

The generated program's correctness leans on *selective receive*: every
``Send`` tags its message, and the consumer names that tag in a ``Recv``
/ ``Poll``, an equality dispatch on ``msg.tag``, or a ``startswith``
family dispatch.  This pass parses the runtime sources (master, slave,
pipeline interpreters) with :mod:`ast`, resolves every tag expression to
its *tag family* (the :class:`~repro.runtime.protocol.Tags` constant or
constructor it came from), and pairs send sites with receive sites:

- a family that is sent but never selectively received is an orphan
  message — it sits in a mailbox forever (``RA401``);
- a family that is received but never sent blocks its consumer for good
  (``RA402``);
- a family declared in ``Tags`` but never used anywhere is a dead
  channel (``RA403``);
- a family consumed *only* through non-blocking polls may never actually
  be drained (``RA404``).

Tag families are derived from the ``Tags`` class itself (constants keep
their literal; constructors are probed with placeholder arguments and
the variable segments generalised), so the lint tracks protocol changes
without a hand-maintained table.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field

from .diagnostics import Diagnostic, Severity

__all__ = ["check_protocol", "lint_sources", "tag_families"]

_PASS = "protocol"

_DUMMY = 987654321  # placeholder argument, assumed absent from literals


@dataclass(frozen=True)
class _Family:
    """One tag family: an exact literal or a dotted prefix pattern."""

    key: str  # display key, e.g. "lb.status" or "pipe.bnd.*"
    prefix: str  # match prefix: full literal, or text before the "*"
    exact: bool

    def matches_literal_prefix(self, literal: str) -> bool:
        """Does a ``startswith(literal)`` dispatch select this family?"""
        return literal.startswith(self.prefix) or self.prefix.startswith(literal)


@dataclass
class _Sites:
    sends: list[str] = field(default_factory=list)
    recvs: list[str] = field(default_factory=list)  # blocking selective
    polls: list[str] = field(default_factory=list)  # non-blocking selective
    dispatches: list[str] = field(default_factory=list)  # ==/startswith/lambda


def tag_families(tags_cls: type | None = None) -> dict[str, _Family]:
    """Derive the tag families from the ``Tags`` class.

    Returns a mapping from the family key to its :class:`_Family`, keyed
    additionally by the ``Tags`` attribute name for AST resolution.
    """
    if tags_cls is None:
        from ..runtime.protocol import Tags

        tags_cls = Tags
    families: dict[str, _Family] = {}
    for name, value in vars(tags_cls).items():
        if name.startswith("_"):
            continue
        if isinstance(value, str):
            families[name] = _Family(key=value, prefix=value, exact=True)
            continue
        fn = getattr(tags_cls, name, None)
        if not callable(fn):
            continue
        try:
            n_args = len(inspect.signature(fn).parameters)
            probe = fn(*([_DUMMY] * n_args))
        except Exception:  # pragma: no cover - unprobeable constructor
            continue
        if not isinstance(probe, str):
            continue
        segments = probe.split(".")
        fixed = []
        for seg in segments:
            if str(_DUMMY) in seg:
                break
            fixed.append(seg)
        prefix = ".".join(fixed) + "."
        families[name] = _Family(key=prefix + "*", prefix=prefix, exact=False)
    return families


class _SiteCollector(ast.NodeVisitor):
    """Collect send/receive sites of ``Tags``-tagged messages."""

    def __init__(self, module: str, families: dict[str, _Family]):
        self.module = module
        self.families = families
        self.sites: dict[str, _Sites] = {}
        self._lambda_depth = 0

    # -- helpers ---------------------------------------------------------

    def _locus(self, node: ast.AST) -> str:
        return f"{self.module}:{getattr(node, 'lineno', 0)}"

    def _sites_for(self, fam: _Family) -> _Sites:
        return self.sites.setdefault(fam.key, _Sites())

    def _resolve(self, node: ast.expr) -> _Family | None:
        """Resolve a tag expression to its family, if statically known."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "Tags"
        ):
            return self.families.get(node.attr)
        if isinstance(node, ast.Call):
            return self._resolve(node.func)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # A literal tag string: match it against the known families.
            for fam in self.families.values():
                if fam.exact and fam.prefix == node.value:
                    return fam
                if not fam.exact and node.value.startswith(fam.prefix):
                    return fam
        return None

    @staticmethod
    def _is_tag_ref(node: ast.expr) -> bool:
        """Heuristic: does this expression read a message tag?"""
        if isinstance(node, ast.Name) and node.id == "tag":
            return True
        return isinstance(node, ast.Attribute) and node.attr == "tag"

    # -- visitors --------------------------------------------------------

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Expected-tag closures (see PipelineSlave._recv_neighbor) build
        # the tag a selective receive waits for; any Tags use inside a
        # lambda therefore counts as a receive site.
        self._lambda_depth += 1
        self.generic_visit(node)
        self._lambda_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else None
        if name == "Send" and len(node.args) >= 2:
            fam = self._resolve(node.args[1])
            if fam is not None:
                self._sites_for(fam).sends.append(self._locus(node))
        elif name in ("Recv", "Poll") or (
            isinstance(fn, ast.Attribute) and fn.attr == "_recv_ft"
        ):
            # `_recv_ft` is the failure-tolerant wrapper around a
            # blocking selective Recv (it polls the same tag in a loop);
            # its tag argument is a receive site like Recv's.
            tag_expr = next(
                (kw.value for kw in node.keywords if kw.arg == "tag"), None
            )
            if tag_expr is None and len(node.args) >= 2:
                tag_expr = node.args[1]
            fam = self._resolve(tag_expr) if tag_expr is not None else None
            if fam is not None:
                bucket = self._sites_for(fam)
                (bucket.polls if name == "Poll" else bucket.recvs).append(
                    self._locus(node)
                )
        elif (
            isinstance(fn, ast.Attribute)
            and fn.attr == "startswith"
            and self._is_tag_ref(fn.value)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            literal = node.args[0].value
            for fam in self.families.values():
                if fam.matches_literal_prefix(literal):
                    self._sites_for(fam).dispatches.append(self._locus(node))
        elif self._lambda_depth > 0:
            fam = self._resolve(node)
            if fam is not None:
                self._sites_for(fam).dispatches.append(self._locus(node))
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) == 1 and isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            sides = [node.left, node.comparators[0]]
            if any(self._is_tag_ref(s) for s in sides):
                for side in sides:
                    fam = self._resolve(side)
                    if fam is not None:
                        self._sites_for(fam).dispatches.append(self._locus(node))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Bare `Tags.X` references inside lambdas (constant expected tags).
        if self._lambda_depth > 0:
            fam = self._resolve(node)
            if fam is not None:
                self._sites_for(fam).dispatches.append(self._locus(node))
        self.generic_visit(node)


def _default_sources() -> list[tuple[str, str]]:
    from ..runtime import master, pipeline, slave

    return [
        (mod.__name__.rsplit(".", 1)[-1] + ".py", inspect.getsource(mod))
        for mod in (master, slave, pipeline)
    ]


def lint_sources(
    sources: list[tuple[str, str]],
    families: dict[str, _Family] | None = None,
) -> list[Diagnostic]:
    """Run the send/receive pairing lint over ``(name, source)`` pairs."""
    fams = families if families is not None else tag_families()
    merged: dict[str, _Sites] = {}
    for module, text in sources:
        collector = _SiteCollector(module, fams)
        collector.visit(ast.parse(text))
        for key, sites in collector.sites.items():
            bucket = merged.setdefault(key, _Sites())
            bucket.sends.extend(sites.sends)
            bucket.recvs.extend(sites.recvs)
            bucket.polls.extend(sites.polls)
            bucket.dispatches.extend(sites.dispatches)

    found: list[Diagnostic] = []
    for fam in fams.values():
        sites = merged.get(fam.key, _Sites())
        receivers = sites.recvs + sites.polls + sites.dispatches
        if sites.sends and not receivers:
            found.append(
                Diagnostic(
                    code="RA401",
                    severity=Severity.ERROR,
                    message=(
                        f"tag family {fam.key!r} is sent but no selective "
                        f"receive, dispatch, or poll consumes it: messages "
                        f"would pile up unread"
                    ),
                    pass_name=_PASS,
                    locus=sites.sends[0],
                    details={"sends": sites.sends},
                )
            )
        elif receivers and not sites.sends:
            found.append(
                Diagnostic(
                    code="RA402",
                    severity=Severity.ERROR,
                    message=(
                        f"tag family {fam.key!r} is selectively received "
                        f"but never sent: a blocking consumer would "
                        f"deadlock waiting for it"
                    ),
                    pass_name=_PASS,
                    locus=receivers[0],
                    details={"receives": receivers},
                )
            )
        elif not sites.sends and not receivers:
            found.append(
                Diagnostic(
                    code="RA403",
                    severity=Severity.WARNING,
                    message=(
                        f"tag family {fam.key!r} is declared in Tags but "
                        f"neither sent nor received by the runtime"
                    ),
                    pass_name=_PASS,
                    locus="protocol.py",
                )
            )
        elif (
            sites.sends
            and sites.polls
            and not sites.recvs
            and not sites.dispatches
        ):
            found.append(
                Diagnostic(
                    code="RA404",
                    severity=Severity.WARNING,
                    message=(
                        f"tag family {fam.key!r} is consumed only by "
                        f"non-blocking polls: delivery is never guaranteed "
                        f"to be drained"
                    ),
                    pass_name=_PASS,
                    locus=sites.polls[0],
                    details={"polls": sites.polls},
                )
            )
    return found


def check_protocol() -> list[Diagnostic]:
    """Lint the shipped runtime sources (master, slave, pipeline)."""
    return lint_sources(_default_sources())
