"""Happens-before replay checker (pass 5, ``RA5xx``).

The static passes prove the *plan* is consistent; this pass checks that
an actual *execution* kept writes to each element ordered.  Slaves emit
``access``-category span events for every batch of element writes
(compute strips, fronts, movement catch-ups); the simulator's ``net``
spans record every message (send time at the source, arrival time at the
destination).  Replaying both in time order with vector clocks gives the
happens-before relation of the run:

- a *send* snapshots everything its sender knew at send time;
- an *arrival* merges that snapshot into the receiver's knowledge;
- a *write* to an element by slave *p* is safe when *p* transitively
  knows (via some chain of messages) about the previous writer's access
  — otherwise nothing ordered the two writes and the run only looked
  correct because the simulator's global clock hid the race (``RA501``).

This is the dynamic dual of the communication checker: RA2xx says a
message *should* exist, RA501 says no message *did* order two touches.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from ..obs import Event, EventLog, SpanEvent
from .diagnostics import Diagnostic

__all__ = ["check_replay", "check_log_file"]


# Timeline entry kinds, in tie-break order at equal timestamps: an
# arrival is causally earliest (its send happened strictly before in sim
# time or is handled by the lazy-snapshot fallback), then sends, then
# the accesses that may depend on both.
_ARRIVE, _SEND, _ACCESS = 0, 1, 2


def _units_of(meta: Mapping[str, object]) -> list[int] | None:
    raw = meta.get("units")
    if not isinstance(raw, (list, tuple)):
        return None
    out: list[int] = []
    for u in raw:
        if isinstance(u, bool) or not isinstance(u, int):
            return None
        out.append(u)
    return out


def check_replay(events: Iterable[Event], subject: str = "log") -> list[Diagnostic]:
    """Replay an event stream; report unordered write pairs.

    ``events`` is any iterable of obs events (an :class:`EventLog`
    works).  Only ``access`` spans (writes) and ``net`` spans (messages)
    participate; everything else is ignored.
    """
    found: list[Diagnostic] = []
    timeline: list[tuple[float, int, int, SpanEvent]] = []
    n_access = 0
    for seq, ev in enumerate(events):
        if not isinstance(ev, SpanEvent):
            continue
        if ev.category == "access":
            n_access += 1
            if _units_of(ev.meta) is None:
                found.append(
                    Diagnostic.new(
                        "RA503",
                        (
                            f"access event {ev.name!r} at t={ev.t_start:g} "
                            f"(pid {ev.pid}) has no integer unit list in "
                            f"meta; its writes cannot be accounted"
                        ),
                        locus=subject,
                    )
                )
                continue
            timeline.append((ev.t_start, _ACCESS, seq, ev))
        elif ev.category == "net":
            # One entry at send time (snapshot) and one at arrival
            # (merge); ev.pid is the destination, meta["src"] the source.
            timeline.append((ev.t_start, _SEND, seq, ev))
            timeline.append((ev.t_end, _ARRIVE, seq, ev))

    if n_access == 0:
        found.append(
            Diagnostic.new(
                "RA502",
                (
                    "event log contains no access events; the replay "
                    "check is vacuous (record with observability enabled "
                    "on an instrumented runtime)"
                ),
                locus=subject,
            )
        )
        return found

    timeline.sort(key=lambda item: (item[0], item[1], item[2]))

    # know[p][q]: the latest point on q's local timeline that p knows
    # about, directly or through a chain of messages.
    know: dict[int, dict[int, float]] = {}
    snapshots: dict[int, dict[int, float]] = {}
    # last_write[unit] = (pid, t_end, t_start) of the most recent write.
    last_write: dict[int, tuple[int, float, float]] = {}
    raced_units: set[int] = set()

    def clock(p: int) -> dict[int, float]:
        return know.setdefault(p, {p: float("-inf")})

    def advance(p: int, t: float) -> None:
        c = clock(p)
        c[p] = max(c.get(p, float("-inf")), t)

    def snapshot_send(seq: int, ev: SpanEvent) -> dict[int, float]:
        src = ev.meta.get("src")
        sender = src if isinstance(src, int) and not isinstance(src, bool) else ev.pid
        advance(sender, ev.t_start)
        snap = dict(clock(sender))
        snapshots[seq] = snap
        return snap

    for t, kind, seq, ev in timeline:
        if kind == _SEND:
            snapshot_send(seq, ev)
        elif kind == _ARRIVE:
            snap = snapshots.get(seq)
            if snap is None:
                # Zero-latency message whose arrival sorted first: the
                # sender's current clock at this instant is the snapshot.
                snap = snapshot_send(seq, ev)
            dst = clock(ev.pid)
            for q, tq in snap.items():
                dst[q] = max(dst.get(q, float("-inf")), tq)
            advance(ev.pid, ev.t_end)
        else:  # _ACCESS
            pid = ev.pid
            advance(pid, ev.t_start)
            units = _units_of(ev.meta) or []
            c = clock(pid)
            for u in units:
                prev = last_write.get(u)
                if (
                    prev is not None
                    and prev[0] != pid
                    and c.get(prev[0], float("-inf")) < prev[1]
                    and u not in raced_units
                ):
                    raced_units.add(u)
                    found.append(
                        Diagnostic.new(
                            "RA501",
                            (
                                f"element {u} written by slave {prev[0]} "
                                f"(until t={prev[1]:g}) and then by slave "
                                f"{pid} (from t={ev.t_start:g}) with no "
                                f"message chain ordering the two writes"
                            ),
                            locus=f"unit {u}",
                            details={
                                "unit": u,
                                "first_pid": prev[0],
                                "first_t_end": prev[1],
                                "second_pid": pid,
                                "second_t_start": ev.t_start,
                            },
                        )
                    )
                last_write[u] = (pid, ev.t_end, ev.t_start)
    return found


def check_log_file(path: str | Path) -> list[Diagnostic]:
    """Replay a JSONL event log from disk (``repro run --events``)."""
    return check_replay(EventLog.load(path), subject=str(path))
