"""Trend-weighted rate filtering (paper Section 3.2).

"New rate information for each slave is filtered by averaging it with
older rate information, with relative weights set according to trends
observed in the rates."  The filter keeps an exponentially weighted
average whose gain increases while consecutive samples keep moving in the
same direction (a genuine load change) and decreases on direction flips
(noise/short spikes).  This is what damps the raw-rate wiggles into the
"adjusted rate" curve of Figure 9 while still tracking the square-wave
load.
"""

from __future__ import annotations

import math

from ..errors import ConfigError

__all__ = ["TrendFilter"]


class TrendFilter:
    """EWMA with trend-adaptive gain.

    Attributes:
        slow_gain: weight of a new sample that contradicts the current
            trend (noise suppression).
        fast_gain: weight of a new sample once ``trend_threshold``
            consecutive samples moved in the same direction (fast
            tracking of real load changes).
    """

    def __init__(
        self,
        slow_gain: float = 0.3,
        fast_gain: float = 0.8,
        trend_threshold: int = 2,
        deadband: float = 0.02,
        snap_fraction: float = 0.5,
    ):
        if not 0 < slow_gain <= fast_gain <= 1:
            raise ConfigError(
                f"need 0 < slow_gain <= fast_gain <= 1, got {slow_gain}, {fast_gain}"
            )
        if trend_threshold < 1:
            raise ConfigError("trend_threshold must be >= 1")
        if deadband < 0:
            raise ConfigError("deadband must be >= 0")
        if snap_fraction <= 0:
            raise ConfigError("snap_fraction must be positive")
        self.slow_gain = slow_gain
        self.fast_gain = fast_gain
        self.trend_threshold = trend_threshold
        self.deadband = deadband
        self.snap_fraction = snap_fraction
        self._value: float | None = None
        self._streak_dir = 0
        self._streak_len = 0

    @property
    def value(self) -> float | None:
        """Current filtered value (None before the first sample)."""
        return self._value

    def update(self, raw: float) -> float:
        """Fold one raw sample in; returns the new filtered value.

        Non-finite samples (NaN/inf from a degenerate measurement
        window, e.g. a slave stalled by fault injection) are dropped
        without touching the filter state: the previous value is
        returned, or ``0.0`` before the first valid sample.  Zero is a
        legal sample — a slave reporting no progress converges the
        filtered rate toward zero instead of dividing by it.
        """
        if not math.isfinite(raw):
            return self._value if self._value is not None else 0.0
        if raw < 0:
            raise ConfigError(f"negative rate sample: {raw}")
        if self._value is None:
            self._value = raw
            return raw
        # Direction of this sample relative to the filtered value, with a
        # deadband so tiny fluctuations do not count as trends.
        rel = raw - self._value
        band = self.deadband * max(abs(self._value), 1e-12)
        direction = 0 if abs(rel) <= band else (1 if rel > 0 else -1)
        if direction != 0 and direction == self._streak_dir:
            self._streak_len += 1
        elif direction != 0:
            self._streak_dir = direction
            self._streak_len = 1
        else:
            self._streak_len = 0
            self._streak_dir = 0
        # A large relative jump is weighted like an established trend
        # immediately: a processor that just lost (or regained) most of
        # its capacity should not wait out the trend counter.
        snap = abs(rel) > self.snap_fraction * max(abs(self._value), 1e-12)
        gain = (
            self.fast_gain
            if snap or self._streak_len >= self.trend_threshold
            else self.slow_gain
        )
        self._value = self._value + gain * (raw - self._value)
        return self._value

    def reset(self) -> None:
        self._value = None
        self._streak_dir = 0
        self._streak_len = 0
