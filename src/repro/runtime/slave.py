"""Slave runtime: the generated SPMD program's execution engine.

A slave executes an :class:`~repro.compiler.plan.ExecutionPlan` on one
simulated processor: it computes its owned loop iterations, fires
load-balancing hooks (Section 4.2), measures its computation rate in
work units per second (Section 3.2), exchanges status/instructions with
the central balancer (synchronous or pipelined, Section 3.3), and moves
work (Section 4.5).  The task-queue trick of Section 4.1 holds: a
slave's "task queue" is its index array of owned iterations plus a
per-unit completed-repetition counter, and task switching is advancing
an index.

This module implements the machinery shared by all schedule shapes plus
the PARALLEL_MAP (MM) and REDUCTION_FRONT (LU) interpreters; the
PIPELINE interpreter (SOR) lives in :mod:`repro.runtime.pipeline`.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..ckpt import SlaveSnapshot
from ..compiler.plan import ExecutionPlan, LoopShape
from ..config import RunConfig
from ..errors import MovementError, ProtocolError
from ..fastcopy import fast_state_copy
from ..obs import NULL_RECORDER
from ..sim import Compute, Now, Poll, Recv, Send, Sleep, TaskContext
from .movement import MovementLedger, MovePayload
from .protocol import (
    CKPT_MANIFEST_BYTES,
    CTRL_ACK_BYTES,
    HB_BYTES,
    REPORT_BYTES,
    Ctrl,
    CtrlAck,
    Instructions,
    MoveOrder,
    SlaveReport,
    Tags,
)

__all__ = [
    "slave_task",
    "SlaveCore",
    "ParallelMapSlave",
    "ReductionFrontSlave",
    "RollbackSignal",
]


class RollbackSignal(Exception):
    """Internal control flow: unwind the slave's lifecycle to restore a
    checkpoint.  Raised by :meth:`SlaveCore._poll_ctrl` after a rollback
    control is acknowledged; caught only by :meth:`SlaveCore.main`.
    Never surfaces to callers (it is not a :class:`~repro.errors.ReproError`).
    """


def slave_task(ctx: TaskContext, plan: ExecutionPlan, run_cfg: RunConfig):
    """Simulator task body for one slave (dispatches on plan shape)."""
    msg = yield Recv(src=ctx.master_pid, tag=Tags.INIT)
    init = msg.payload
    if plan.shape is LoopShape.PARALLEL_MAP:
        core: SlaveCore = ParallelMapSlave(ctx, plan, run_cfg, init)
    elif plan.shape is LoopShape.REDUCTION_FRONT:
        core = ReductionFrontSlave(ctx, plan, run_cfg, init)
    elif plan.shape is LoopShape.PIPELINE:
        from .pipeline import PipelineSlave

        core = PipelineSlave(ctx, plan, run_cfg, init)
    else:  # pragma: no cover - closed enum
        raise ProtocolError(f"unknown shape {plan.shape}")
    ctx.core = core  # exposes slave state for tests and diagnostics
    yield from core.main()


class SlaveCore:
    """State and master-interaction machinery shared by all shapes."""

    def __init__(
        self,
        ctx: TaskContext,
        plan: ExecutionPlan,
        run_cfg: RunConfig,
        init: dict[str, Any],
    ):
        self.ctx = ctx
        self.plan = plan
        self.cfg = run_cfg
        self.pid = ctx.pid
        self.master = ctx.master_pid
        self.obs = getattr(ctx, "obs", NULL_RECORDER)
        self.owned: list[int] = sorted(int(u) for u in init["units"])
        self.local = init.get("local")
        self.exec_num = run_cfg.execute_numerics and self.local is not None
        self.ledger = MovementLedger(self.pid)
        # Rate measurement accumulators (units/sec, Section 3.2).  The
        # per-report deltas feed progress accounting; the measurement
        # accumulators only reset once they span several scheduling
        # quanta, so sub-quantum bursts cannot bias the rate (4.3).
        self.units_done = 0.0
        self.work_time = 0.0
        self.meas_units = 0.0
        self.meas_work = 0.0
        self.min_measurement = 2.0 * run_cfg.cluster.processor.quantum
        # Hook frequency control (4.3).
        self.hook_count = 0
        self.skip = max(1, int(init.get("skip", 1)))
        self.seq = 0
        self.outstanding_replies = 0
        self.rep = 0
        self.block = 0
        self.released = False
        # Failure-tolerant runtime (no effect while cfg.ft.enabled is
        # False: every wait below takes the legacy blocking path).
        self.ft = run_cfg.ft
        self._last_master_send = 0.0
        self._ctrl_acks: dict[int, str] = {}  # ctrl seq -> recorded status
        # (era, owned) of the result last sent early (done-time return,
        # before the release) so idle standby rounds don't resend it.
        self._early_result_key: tuple[int, tuple[int, ...]] | None = None
        # Checkpoint/rollback runtime (RunConfig.ckpt; inert while
        # cfg.ckpt.enabled is False — no snapshots, no extra messages).
        self.ckpt = run_cfg.ckpt
        self.era = 0  # master's rollback era; stale-era traffic is dropped
        self._pending_ckpt: dict[str, Any] | None = None
        self._rollback_meta: dict[str, Any] | None = None
        self._local_ckpts: dict[int, SlaveSnapshot] = {}
        # Buddy placement: (epoch, pid) -> snapshot held for a peer.
        self._buddy_store: dict[tuple[int, int], SlaveSnapshot] = {}
        self._pull_replies: list[SlaveSnapshot] = []

    # -- small helpers ---------------------------------------------------

    def kernels(self):
        return self.plan.kernels

    def compute(self, ops: float, fn=None) -> Generator[Any, Any, float]:
        """Issue a measured computation; returns its wall duration."""
        t0 = yield Now()
        yield Compute(ops, fn=fn if self.exec_num else None)
        t1 = yield Now()
        self.work_time += t1 - t0
        self.meas_work += t1 - t0
        return t1 - t0

    def count_units(self, n: float) -> None:
        """Credit ``n`` completed work units to both accumulators."""
        self.units_done += n
        self.meas_units += n

    def note_access(
        self, dt: float, units, rep: int, name: str = "write"
    ) -> None:
        """Record a batch of element writes as an ``access`` span.

        ``dt`` is the duration of the compute that performed the writes
        (call this immediately after it, so ``ctx.now`` is its end).
        The happens-before replay checker (``repro.analysis.replay``)
        pairs these spans with ``net`` message spans to prove every
        cross-slave handoff of an element was ordered by a message.
        """
        if not self.obs.enabled:
            return
        t1 = self.ctx.now
        self.obs.emit_span(
            "access",
            name,
            t1 - dt,
            t1,
            pid=self.pid,
            value=float(len(units)),
            meta={"units": [int(u) for u in units], "rep": int(rep)},
        )

    # -- master interaction (hooks, Section 4.2/4.3/3.3) -----------------

    def lb_hook(self) -> Generator[Any, Any, None]:
        """Conditional call to the load-balancing code."""
        if not self.cfg.dlb_enabled:
            return  # static distribution: hooks compiled in but disabled
        self.hook_count += 1
        if self.ft.enabled:
            yield from self._poll_ctrl()
            yield from self._maybe_heartbeat()
        if self.hook_count < self.skip:
            return
        self.hook_count = 0
        yield from self._exchange(done=False)

    # -- failure tolerance (RunConfig.ft, docs/fault-tolerance.md) -------

    def _maybe_heartbeat(self) -> Generator[Any, Any, None]:
        """Send an explicit heartbeat if the master has heard nothing
        from us for a heartbeat interval (reports and acks also count)."""
        now = self.ctx.now
        if now - self._last_master_send >= self.ft.heartbeat_interval:
            self._last_master_send = now
            yield Send(self.master, Tags.HB, self.pid, HB_BYTES)

    def _poll_ctrl(self) -> Generator[Any, Any, None]:
        """Apply and acknowledge any recovery controls from the master.

        Receipt is idempotent: a retransmitted control (same seq) is not
        re-applied, but is re-acknowledged with the recorded status in
        case the original ack was lost.
        """
        while True:
            msg = yield Poll(src=self.master, tag=Tags.CTRL)
            if msg is None:
                break
            yield from self._handle_ctrl_msg(msg)
        if self.ckpt.enabled:
            yield from self._ckpt_housekeeping()

    def _handle_ctrl_msg(self, msg) -> Generator[Any, Any, None]:
        """Apply and acknowledge one control message.

        Raises :class:`RollbackSignal` after acknowledging a freshly
        applied rollback (the ack must go out first so the master stops
        retrying; the seq dedup keeps retransmissions from re-raising).
        """
        ctrl: Ctrl = msg.payload
        status = self._ctrl_acks.get(ctrl.seq)
        fresh = status is None
        if fresh:
            status = self._apply_ctrl(ctrl)
            self._ctrl_acks[ctrl.seq] = status
        self._last_master_send = self.ctx.now
        yield Send(
            self.master,
            Tags.CTRL_ACK,
            CtrlAck(self.pid, ctrl.seq, status),
            CTRL_ACK_BYTES,
        )
        if fresh and ctrl.kind == "rollback":
            raise RollbackSignal()

    def _apply_ctrl(self, ctrl: Ctrl) -> str:
        if ctrl.kind == "fence":
            return "ok"
        if ctrl.kind in ("cancel_send", "cancel_recv"):
            assert ctrl.move_id is not None
            return (
                "canceled" if self.ledger.void(ctrl.move_id) else "applied"
            )
        if ctrl.kind == "grant":
            self.apply_grant(ctrl.units, ctrl.data, ctrl.meta)
            return "ok"
        if ctrl.kind == "ckpt":
            return self._accept_ckpt(dict(ctrl.meta))
        if ctrl.kind == "ckpt_pull":
            key = (int(ctrl.meta["epoch"]), int(ctrl.meta["pid"]))
            snap = self._buddy_store.get(key)
            if snap is None:
                return "miss"
            self._pull_replies.append(snap)
            return "ok"
        if ctrl.kind == "rollback":
            self._rollback_meta = dict(ctrl.meta)
            return "ok"
        raise ProtocolError(f"slave {self.pid}: unknown control {ctrl.kind!r}")

    def apply_grant(
        self, units: tuple[int, ...], data: Any, meta: dict[str, Any]
    ) -> None:
        """Take ownership of reassigned units (failure recovery)."""
        raise ProtocolError(
            f"slave {self.pid}: work reassignment is not supported for "
            f"shape {self.plan.shape.name}"
        )

    # -- checkpointing (RunConfig.ckpt, repro.ckpt) -----------------------

    def _accept_ckpt(self, meta: dict[str, Any]) -> str:
        """Record a checkpoint request; ``miss`` when the barrier already
        passed (the master aborts the epoch and retries with margin)."""
        if self.released or not self._ckpt_barrier_reachable(meta):
            return "miss"
        self._pending_ckpt = meta
        return "ok"

    def _ckpt_barrier_reachable(self, meta: dict[str, Any]) -> bool:
        """PARALLEL_MAP: iterations are independent, so any hook is a
        dependence-safe cut and every request is satisfiable.  Shapes
        with real barriers override."""
        return True

    def _at_ckpt_barrier(self, meta: dict[str, Any]) -> bool:
        """Is the current control point a valid snapshot point for the
        pending request?  (PARALLEL_MAP: always.)"""
        return True

    def _snapshot_extra(self) -> dict[str, Any]:
        """Shape-specific progress captured alongside the data slices."""
        return {}

    def _take_snapshot(self, epoch: int) -> SlaveSnapshot:
        extra = self._snapshot_extra()
        return SlaveSnapshot(
            pid=self.pid,
            epoch=epoch,
            rep=self.rep,
            units=tuple(self.owned),
            local=fast_state_copy(self.local),
            completed=dict(extra.get("completed", {})),
            front_sent=dict(extra.get("front_sent", {})),
            meta=dict(extra.get("meta", {})),
        )

    def _ckpt_housekeeping(self) -> Generator[Any, Any, None]:
        """Checkpoint-side chores at a poll point: accept buddy deposits,
        flush pull replies, and deposit a pending snapshot once the
        barrier is reached."""
        while True:
            msg = yield Poll(tag=Tags.CKPT)
            if msg is None:
                break
            self._store_buddy_deposit(msg.payload)
        while self._pull_replies:
            snap = self._pull_replies.pop(0)
            nbytes = self.kernels().input_bytes(len(snap.units))
            yield Send(
                self.master,
                Tags.CKPT,
                {
                    "kind": "pull",
                    "epoch": snap.epoch,
                    "pid": snap.pid,
                    "snap": snap,
                },
                nbytes,
            )
            self._last_master_send = self.ctx.now
        if self._pending_ckpt is not None and self._at_ckpt_barrier(
            self._pending_ckpt
        ):
            yield from self._deposit_ckpt()

    def _store_buddy_deposit(self, payload: dict[str, Any]) -> None:
        if payload.get("kind") != "deposit":
            return
        pid = int(payload["pid"])
        self._buddy_store[(int(payload["epoch"]), pid)] = payload["snap"]
        # Bound memory: keep the two most recent epochs per peer.
        epochs = sorted(e for e, p in self._buddy_store if p == pid)
        for e in epochs[:-2]:
            self._buddy_store.pop((e, pid), None)

    def _deposit_ckpt(self) -> Generator[Any, Any, None]:
        """Take the pending snapshot and ship it (to the master, or to a
        buddy slave with a small manifest to the master)."""
        meta = self._pending_ckpt
        assert meta is not None
        self._pending_ckpt = None
        epoch = int(meta["epoch"])
        snap = self._take_snapshot(epoch)
        self._local_ckpts[epoch] = snap
        committed = int(meta.get("committed", 0))
        # Keep epoch 0 (always a valid rollback target) plus everything
        # at or above the last globally committed epoch.
        self._local_ckpts = {
            e: s
            for e, s in self._local_ckpts.items()
            if e == 0 or e >= committed
        }
        nbytes = self.kernels().input_bytes(len(self.owned))
        buddy = meta.get("buddy")
        wire = {
            "kind": "deposit",
            "epoch": epoch,
            "pid": self.pid,
            "snap": snap,
        }
        if buddy is None or int(buddy) == self.pid:
            yield Send(self.master, Tags.CKPT, wire, nbytes)
        else:
            yield Send(int(buddy), Tags.CKPT, wire, nbytes)
            manifest = {
                "kind": "manifest",
                "epoch": epoch,
                "pid": self.pid,
                "units": tuple(self.owned),
                "rep": self.rep,
            }
            yield Send(self.master, Tags.CKPT, manifest, CKPT_MANIFEST_BYTES)
        self._last_master_send = self.ctx.now
        if self.obs.enabled:
            self.obs.metrics.counter("ckpt.snapshots").inc()
            self.obs.metrics.counter("ckpt.snapshot_bytes").inc(nbytes)
            self.obs.emit_counter(
                "ckpt",
                "snapshot",
                self.ctx.now,
                float(nbytes),
                pid=self.pid,
                meta={"epoch": epoch, "units": len(self.owned)},
            )

    def _rollback_restore(self) -> None:
        """Restore the checkpoint named by the rollback control and adopt
        grants of the dead slaves' re-partitioned state (no syscalls: the
        lifecycle restarts cleanly afterwards)."""
        meta = self._rollback_meta
        assert meta is not None
        self._rollback_meta = None
        epoch = int(meta["epoch"])
        snap = self._local_ckpts.get(epoch)
        if snap is None:
            raise ProtocolError(
                f"slave {self.pid} has no local snapshot for epoch {epoch}"
            )
        self.local = fast_state_copy(snap.local)
        self.owned = list(snap.units)
        self.rep = snap.rep
        self.block = 0
        self.era = int(meta["era"])
        # Fresh ledger: every pre-rollback order is void.  Moves issued
        # after the epoch cut are pre-voided so their stale payloads and
        # late orders are dropped; the master resolved the same range.
        self.ledger = MovementLedger(self.pid)
        for mid in range(int(meta["void_from"]), int(meta["void_to"])):
            self.ledger.void_quiet(mid)
        self.units_done = 0.0
        self.work_time = 0.0
        self.meas_units = 0.0
        self.meas_work = 0.0
        self.outstanding_replies = 0
        self.released = False
        self._early_result_key = None
        self._pending_ckpt = None
        self._local_ckpts = {
            e: s for e, s in self._local_ckpts.items() if e <= epoch
        }
        self._restore_shape(snap, meta)
        for grant in meta.get("grants", ()):
            self._apply_rollback_grant(grant)
        if self.obs.enabled:
            self.obs.metrics.counter("ckpt.slave_restores").inc()
            self.obs.emit_counter(
                "ckpt",
                "restore",
                self.ctx.now,
                float(epoch),
                pid=self.pid,
                meta={"era": self.era, "rep": self.rep},
            )

    def _restore_shape(self, snap: SlaveSnapshot, meta: dict[str, Any]) -> None:
        """Shape-specific state reset after a rollback restore."""
        raise ProtocolError(
            f"slave {self.pid}: rollback is not supported for shape "
            f"{self.plan.shape.name}"
        )

    def _apply_rollback_grant(self, grant: dict[str, Any]) -> None:
        """Adopt one grant of a dead slave's checkpointed units."""
        raise ProtocolError(
            f"slave {self.pid}: rollback grants are not supported for "
            f"shape {self.plan.shape.name}"
        )

    def _recv_ft(self, src: int | None, tag: str | None):
        """Failure-tolerant blocking receive.

        With fault tolerance off this is exactly a blocking ``Recv``.
        Otherwise it polls, so recovery controls are still served and
        heartbeats still flow while the expected message is delayed.
        """
        if not self.ft.enabled:
            msg = yield Recv(src=src, tag=tag)
            return msg
        # Exponential backoff: a message that is almost here costs a
        # fine-grained wait, an absent one degrades to wait_tick polling.
        tick = self.ft.wait_tick / 16
        while True:
            msg = yield Poll(src=src, tag=tag)
            if msg is not None:
                return msg
            yield from self._poll_ctrl()
            yield from self._maybe_heartbeat()
            yield Sleep(tick)
            tick = min(tick * 2, self.ft.wait_tick)

    def _recv_move_ft(self, order: MoveOrder):
        """Wait for a movement payload, giving up if the master voids
        the move (its sender died); returns the message or ``None``."""
        tick = self.ft.wait_tick / 16
        while True:
            msg = yield Poll(
                src=order.transfer.src, tag=Tags.move(order.move_id)
            )
            if msg is not None:
                return msg
            yield from self._poll_ctrl()
            if self.ledger.is_voided(order.move_id):
                return None
            yield from self._maybe_heartbeat()
            yield Sleep(tick)
            tick = min(tick * 2, self.ft.wait_tick)

    def _exchange(self, done: bool) -> Generator[Any, Any, Instructions | None]:
        applied, canceled, move_cost = self.ledger.pop_report_fields()
        report = SlaveReport(
            pid=self.pid,
            seq=self.seq,
            units_done=self.units_done,
            work_time=self.work_time,
            meas_units=self.meas_units,
            meas_work=self.meas_work,
            owned_count=self.active_owned_count(),
            rep=self.rep,
            block=self.block,
            remaining_units=self.remaining_units_list(),
            applied_moves=applied,
            canceled_moves=canceled,
            measured_move_cost_per_unit=move_cost,
            done=done,
            era=self.era,
        )
        self.seq += 1
        self.units_done = 0.0
        self.work_time = 0.0
        if self.meas_work >= self.min_measurement:
            self.meas_units = 0.0
            self.meas_work = 0.0
        if self.obs.enabled:
            self.obs.emit_counter(
                "slave",
                "report",
                self.ctx.now,
                float(report.owned_count),
                pid=self.pid,
                meta={"seq": report.seq, "done": done},
            )
        yield Send(self.master, Tags.STATUS, report, REPORT_BYTES)
        self._last_master_send = self.ctx.now
        self.outstanding_replies += 1
        if done or not self.cfg.balancer.pipelined:
            # Synchronous interaction (Figure 2a): block for instructions.
            # Replies from an older rollback era are stale (sent before
            # the master rolled the run back) and are dropped; ours is
            # still coming.  Era is always 0 on legacy paths, so this
            # loop runs exactly once there.
            while True:
                msg = yield from self._recv_ft(src=self.master, tag=Tags.INSTR)
                instr: Instructions = msg.payload
                if instr.era != self.era:
                    continue
                self.outstanding_replies -= 1
                yield from self._apply_instructions(instr)
                return instr
        # Pipelined interaction (Figure 2b): pick up the reply to a
        # *previous* report if it has arrived; never block.  Stale-era
        # replies are dropped without consuming the outstanding count.
        while True:
            msg = yield Poll(src=self.master, tag=Tags.INSTR)
            if msg is None:
                return None
            instr = msg.payload
            if instr.era != self.era:
                continue
            self.outstanding_replies -= 1
            yield from self._apply_instructions(instr)
            return None

    def note_move(self, kind: str, t0: float, t1: float, order: MoveOrder) -> None:
        """Record one work-movement side (marshalling or applying) as a
        ``move/{send,recv}`` span; no-op when observability is off."""
        if not self.obs.enabled:
            return
        count = order.transfer.count
        self.obs.emit_span(
            "move",
            kind,
            t0,
            t1,
            pid=self.pid,
            value=float(count),
            meta={
                "move_id": order.move_id,
                "src": order.transfer.src,
                "dst": order.transfer.dst,
            },
        )
        self.obs.metrics.counter(f"move.units_{kind}").inc(count)

    def _apply_instructions(self, instr: Instructions) -> Generator[Any, Any, None]:
        if getattr(instr, "release", False):
            self.released = True
            return
        self.skip = max(1, instr.skip_hooks)
        self.ledger.add_orders(instr.sends, instr.recvs)
        yield from self.execute_moves()

    # -- work movement (Section 4.5) --------------------------------------

    def execute_sends(self) -> Generator[Any, Any, None]:
        """Execute pending send orders (sends first, so transfer chains
        cannot deadlock)."""
        for order in self.ledger.take_sends():
            t0 = yield Now()
            payload = self.pack_for(order)
            yield Send(
                order.transfer.dst,
                Tags.move(order.move_id),
                payload,
                nbytes=order.transfer.count * self.plan.movement.unit_bytes,
            )
            t1 = yield Now()
            self.ledger.record_cost(t1 - t0, order.transfer.count)
            self.ledger.mark_sent(order.move_id)
            self.note_move("send", t0, t1, order)

    def execute_moves(self) -> Generator[Any, Any, None]:
        yield from self.execute_sends()
        for order in self.ledger.pending_recvs():
            if self.ft.enabled:
                msg = yield from self._recv_move_ft(order)
                if msg is None:
                    continue  # move voided: its sender died
            else:
                msg = yield Recv(
                    src=order.transfer.src, tag=Tags.move(order.move_id)
                )
            t0 = yield Now()
            yield from self.apply_recv(order, msg.payload)
            t1 = yield Now()
            self.ledger.record_cost(t1 - t0, order.transfer.count)
            self.ledger.complete_recv(order.move_id)
            self.note_move("recv", t0, t1, order)

    # -- shape-specific pieces --------------------------------------------

    def active_owned_count(self) -> int:
        return len(self.owned)

    def remaining_units_list(self) -> tuple[int, ...] | None:
        """Unit ids that still carry work (None for shapes where
        ownership is the right balancing measure)."""
        return None

    def pack_for(self, order: MoveOrder) -> MovePayload:
        raise NotImplementedError

    def apply_recv(self, order: MoveOrder, payload: MovePayload):
        raise NotImplementedError

    def work_remaining(self) -> bool:
        raise NotImplementedError

    def work_loop(self) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def result_payload(self) -> dict[str, Any]:
        k = self.kernels()
        return {
            "units": tuple(self.owned),
            "data": k.local_result(self.local) if self.exec_num else None,
        }

    def _send_result(self) -> Generator[Any, Any, None]:
        """Ship the result gather message to the master."""
        payload = self.result_payload()
        if self.ft.enabled:
            # Era-tagged so a result computed before a rollback cannot
            # shadow the recomputed one.
            payload = dict(payload)
            payload["era"] = self.era
        nbytes = (
            self.kernels().result_bytes(len(self.owned))
            if self.exec_num
            else 64
        )
        yield Send(self.master, Tags.RESULT, payload, nbytes)

    def _maybe_early_result(self) -> Generator[Any, Any, None]:
        """Failure-tolerant done-time return: send the result as soon as
        the work is finished instead of waiting for the release, so the
        master banks it before letting anyone terminate (and a crash in
        the pre-suspicion silent window cannot strand survivors without
        a rollback peer).  Movement or a grant after an early return
        changes ``owned`` (or the era), which re-arms the send."""
        key = (self.era, tuple(int(u) for u in self.owned))
        if self._early_result_key != key:
            self._early_result_key = key
            yield from self._send_result()

    # -- lifecycle ---------------------------------------------------------

    def drain_moves(self) -> Generator[Any, Any, None]:
        """Block until every pending movement order has executed (used at
        end of run; shapes with deferred receives override)."""
        while self.ledger.has_pending():
            yield from self.execute_moves()

    def main(self) -> Generator[Any, Any, None]:
        if self.ckpt.enabled:
            # Epoch 0: the initial state is always a valid rollback
            # target, captured before the first iteration runs.
            self._local_ckpts[0] = self._take_snapshot(0)
        while True:
            try:
                yield from self._lifecycle()
                return
            except RollbackSignal:
                self._rollback_restore()

    def _lifecycle(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.work_loop()
            # Drain outstanding pipelined replies so no movement order is
            # silently abandoned.  Stale-era replies don't count.
            while self.outstanding_replies > 0:
                msg = yield from self._recv_ft(src=self.master, tag=Tags.INSTR)
                instr: Instructions = msg.payload
                if instr.era != self.era:
                    continue
                self.outstanding_replies -= 1
                yield from self._apply_instructions(instr)
            yield from self.drain_moves()
            if self.work_remaining():
                continue  # movement handed us fresh work
            # Final handshake: report done; master replies with more
            # movement (kept working) or a release.
            yield from self._exchange(done=True)
            if self.released:
                break
            if not self.work_remaining() and not self.ledger.has_pending():
                # Master asked us to stand by (e.g. a peer still moving
                # work toward us, or reassigned work may yet arrive);
                # return the result already, then report again shortly.
                # The release hinges on every result being banked, so the
                # failure-tolerant standby re-reports quickly.
                if self.ft.enabled:
                    yield from self._maybe_early_result()
                    yield from self._poll_ctrl()
                    yield from self._maybe_heartbeat()
                    yield Sleep(4 * self.ft.wait_tick)
                else:
                    yield Sleep(0.1)
        yield from (
            self._maybe_early_result() if self.ft.enabled else self._send_result()
        )


class ParallelMapSlave(SlaveCore):
    """Interpreter for independent distributed iterations (MM).

    Hooks fire after every distributed iteration (the paper's rule for
    outermost distributed loops).  Unrestricted movement; per-unit
    completed-repetition counters keep moved work consistent even when
    sender and receiver sit in different repetitions.
    """

    def __init__(self, ctx, plan, run_cfg, init):
        super().__init__(ctx, plan, run_cfg, init)
        self.completed: dict[int, int] = {u: 0 for u in self.owned}

    def _snapshot_extra(self) -> dict[str, Any]:
        return {"completed": dict(self.completed)}

    def work_remaining(self) -> bool:
        return any(self.completed[u] < self.plan.reps for u in self.owned)

    def remaining_units_list(self) -> tuple[int, ...]:
        return tuple(
            u for u in self.owned if self.completed[u] < self.plan.reps
        )

    def active_owned_count(self) -> int:
        return len(self.remaining_units_list())

    def _next_unit(self) -> int | None:
        best: int | None = None
        for u in self.owned:
            c = self.completed[u]
            if c >= self.plan.reps:
                continue
            if best is None or (c, u) < (self.completed[best], best):
                best = u
        return best

    def _unit_ops(self, rep: int, u: int) -> float:
        """Actual iteration cost: data-dependent when the kernels know it
        (Table 1 row 6), the compiler's static cost model otherwise."""
        if self.local is not None:
            actual = self.kernels().unit_ops(self.local, rep, u)
            if actual is not None:
                return actual
        return self.plan.unit_cost(rep, u)

    def work_loop(self):
        k = self.kernels()
        while True:
            u = self._next_unit()
            if u is None:
                return
            rep = self.completed[u]
            self.rep = rep
            ops = self._unit_ops(rep, u)
            arr = np.array([u])
            dt = yield from self.compute(
                ops, fn=(lambda: k.run_units(self.local, rep, arr))
            )
            self.note_access(dt, (u,), rep)
            self.completed[u] = rep + 1
            self.count_units(1.0)
            yield from self.lb_hook()

    def apply_grant(
        self, units: tuple[int, ...], data: Any, meta: dict[str, Any]
    ) -> None:
        """Adopt units reassigned from a dead slave.

        Whatever progress the dead slave had made on them is lost with
        it, so the master rebuilds their state from the initial global
        state and resets their completed-repetition counters to zero.
        """
        for u in units:
            if u in self.completed:
                raise ProtocolError(
                    f"slave {self.pid} granted unit {u} it already owns"
                )
        if self.exec_num:
            self.kernels().unpack_units(
                self.local, np.asarray(units), data, {"shape": "parallel_map"}
            )
        completed = meta.get("completed", {})
        for u in units:
            self.owned.append(u)
            self.completed[u] = int(completed.get(u, 0))
        self.owned.sort()

    def pack_for(self, order: MoveOrder) -> MovePayload:
        units = order.transfer.units
        for u in units:
            if u not in self.owned:
                raise MovementError(f"slave {self.pid} told to send unowned {u}")
        k = self.kernels()
        data = (
            k.pack_units(self.local, np.asarray(units), {"shape": "parallel_map"})
            if self.exec_num
            else None
        )
        meta = {"completed": {u: self.completed[u] for u in units}}
        for u in units:
            self.owned.remove(u)
            del self.completed[u]
        return MovePayload(order.move_id, units, data, meta)

    def apply_recv(self, order: MoveOrder, payload: MovePayload):
        k = self.kernels()
        units = payload.units
        if self.exec_num:
            k.unpack_units(
                self.local, np.asarray(units), payload.data, {"shape": "parallel_map"}
            )
        for u in units:
            if u in self.completed:
                raise MovementError(f"slave {self.pid} already owns unit {u}")
            self.owned.append(u)
            self.completed[u] = payload.meta["completed"][u]
        self.owned.sort()
        return
        yield  # pragma: no cover - generator form for interface symmetry


class ReductionFrontSlave(SlaveCore):
    """Interpreter for shrinking broadcast steps (LU).

    Each repetition ``k``: the owner of unit ``k`` computes the front
    (normalised pivot column) and broadcasts it — receivers cannot know
    the owner under dynamic ownership, so the owner sends to everyone
    (Section 4.6).  Only *active* units (> k) are updated; hooks fire at
    the end of each repetition (the deepest level whose overhead is
    negligible once iteration size shrinks, Sections 4.2/4.7).
    """

    def __init__(self, ctx, plan, run_cfg, init):
        super().__init__(ctx, plan, run_cfg, init)
        self.completed: dict[int, int] = {u: 0 for u in self.owned}
        self.front_sent: dict[int, bool] = {u: False for u in self.owned}
        self.front_cache: dict[int, Any] = {}
        self._early_moves: dict[int, Any] = {}
        # Broadcast targets; narrowed by a rollback when peers have died.
        self._front_peers: tuple[int, ...] = tuple(
            p for p in range(ctx.n_slaves) if p != self.pid
        )

    def _snapshot_extra(self) -> dict[str, Any]:
        return {
            "completed": dict(self.completed),
            "front_sent": {
                u: self.front_sent.get(u, False) for u in self.owned
            },
        }

    def _ckpt_barrier_reachable(self, meta: dict[str, Any]) -> bool:
        # While rep == k no owned unit has absorbed front k yet, so the
        # state is a top-of-step-k cut: the barrier is reachable up to
        # and including the current repetition.
        return self.rep <= int(meta["barrier"])

    def _at_ckpt_barrier(self, meta: dict[str, Any]) -> bool:
        return self.rep == int(meta["barrier"])

    def _restore_shape(self, snap: SlaveSnapshot, meta: dict[str, Any]) -> None:
        self.completed = dict(snap.completed)
        self.front_sent = dict(snap.front_sent)
        # Fronts are re-broadcast after the rollback (owners restore with
        # front_sent False from the barrier on), so the cache restarts
        # empty; stale pre-rollback broadcasts still in flight carry the
        # same deterministic values and are harmless.
        self.front_cache = {}
        self._early_moves = {}
        peers = meta.get("peers")
        if peers is not None:
            self._front_peers = tuple(
                int(p) for p in peers if int(p) != self.pid
            )

    def _apply_rollback_grant(self, grant: dict[str, Any]) -> None:
        units = tuple(int(u) for u in grant["units"])
        for u in units:
            if u in self.completed:
                raise ProtocolError(
                    f"slave {self.pid} granted unit {u} it already owns"
                )
        if self.exec_num and grant.get("data") is not None:
            self.kernels().unpack_units(
                self.local,
                np.asarray(units),
                grant["data"],
                {"shape": "reduction_front"},
            )
        completed = grant.get("completed", {})
        front_sent = grant.get("front_sent", {})
        for u in units:
            self.owned.append(u)
            self.completed[u] = int(completed.get(u, 0))
            self.front_sent[u] = bool(front_sent.get(u, False))
        self.owned.sort()

    def active_owned_count(self) -> int:
        lo, hi = self.plan.domain(min(self.rep, self.plan.reps - 1))
        return sum(1 for u in self.owned if lo <= u < hi)

    def work_remaining(self) -> bool:
        return self.rep < self.plan.reps

    def _unit_final_rep(self, u: int) -> int:
        """Last repetition that updates unit ``u`` is ``u - 1`` (the
        domain at rep k is [k+1, n)); afterwards it is inactive."""
        return min(u, self.plan.reps)

    def work_loop(self):
        k_fns = self.kernels()
        plan = self.plan
        while self.rep < plan.reps:
            k = self.rep
            # --- front: owner computes + broadcasts; others receive.
            if k in self.completed:
                front = yield from self._produce_front(k)
            else:
                front = yield from self._recv_front(k)
                if k in self.completed:
                    # The front's unit moved to us while we waited (its
                    # previous owner broadcast before sending it here).
                    pass
            self.front_cache[k] = front
            # --- update my active units that are exactly at rep k.
            lo, hi = plan.domain(k)
            todo = [
                u
                for u in self.owned
                if lo <= u < hi and self.completed[u] == k
            ]
            if todo:
                ops = plan.units_cost(k, todo)
                arr = np.asarray(sorted(todo))
                dt = yield from self.compute(
                    ops,
                    fn=(lambda: k_fns.apply_front(self.local, k, front, arr)),
                )
                self.note_access(dt, todo, k)
                for u in todo:
                    self.completed[u] = k + 1
                self.count_units(float(len(todo)))
            self.rep += 1
            yield from self.lb_hook()
            yield from self._poll_moves()

    def execute_moves(self) -> Generator[Any, Any, None]:
        """Reduction-front movement receives are deferred: blocking here
        could deadlock with a sender that waits for a front only we can
        produce.  Payloads are picked up at polls or inside the
        move-aware front receive."""
        yield from self.execute_sends()
        yield from self._poll_moves()

    def _poll_moves(self) -> Generator[Any, Any, None]:
        for order in self.ledger.pending_recvs():
            msg = yield Poll(src=order.transfer.src, tag=Tags.move(order.move_id))
            if msg is not None:
                t0 = yield Now()
                yield from self.apply_recv(order, msg.payload)
                t1 = yield Now()
                self.ledger.record_cost(t1 - t0, order.transfer.count)
                self.ledger.complete_recv(order.move_id)
                self.note_move("recv", t0, t1, order)

    def drain_moves(self) -> Generator[Any, Any, None]:
        yield from self.execute_sends()
        for order in self.ledger.pending_recvs():
            if self.ft.enabled:
                msg = yield from self._recv_move_ft(order)
                if msg is None:
                    continue  # move voided: its sender died
            else:
                msg = yield Recv(
                    src=order.transfer.src, tag=Tags.move(order.move_id)
                )
            yield from self.apply_recv(order, msg.payload)
            self.ledger.complete_recv(order.move_id)

    def _recv_front(self, k: int):
        """Receive the broadcast front for step ``k``.

        Blocking on the bare front tag can deadlock when the front's
        owning unit is in flight toward us (the payload and the master's
        order would sit unread in the mailbox), so this loop dispatches
        whatever arrives: instructions are applied (executing any moves),
        move payloads are applied directly, and the front is returned as
        soon as it shows up.
        """
        tick = self.ft.wait_tick / 16
        while True:
            if k in self.front_cache:
                return self.front_cache[k]
            msg = yield Poll(tag=Tags.front(k))
            if msg is not None:
                return msg.payload
            if self.ft.enabled:
                # Failure-tolerant variant of the blocking dispatch: poll
                # for anything, serving heartbeats and checkpoint chores
                # while the front is delayed.
                msg = yield Poll()
                if msg is None:
                    yield from self._maybe_heartbeat()
                    if self.ckpt.enabled:
                        yield from self._ckpt_housekeeping()
                    yield Sleep(tick)
                    tick = min(tick * 2, self.ft.wait_tick)
                    continue
            else:
                msg = yield Recv()
            tag = msg.tag
            if tag == Tags.front(k):
                return msg.payload
            if tag.startswith("front."):
                # A future step's broadcast (we lag the cluster); keep it
                # for when our loop gets there.
                self.front_cache[int(tag.split(".")[1])] = msg.payload
            elif tag == Tags.INSTR:
                instr: Instructions = msg.payload
                if instr.era != self.era:
                    continue  # stale pre-rollback reply
                self.outstanding_replies -= 1
                yield from self._apply_instructions(instr)
                if k in self.completed:
                    # A move just handed us the front's unit; compute and
                    # broadcast it ourselves.
                    return (yield from self._produce_front(k))
            elif tag == Tags.CTRL:
                yield from self._handle_ctrl_msg(msg)
                if self.ckpt.enabled:
                    yield from self._ckpt_housekeeping()
            elif tag == Tags.CKPT:
                self._store_buddy_deposit(msg.payload)
            elif tag.startswith("lb.move."):
                yield from self._apply_move_payload(msg)
                if k in self.completed:
                    return (yield from self._produce_front(k))
            else:  # pragma: no cover - no other tags reach slaves here
                raise ProtocolError(f"unexpected message {tag} at front recv")

    def _apply_move_payload(self, msg):
        """Apply a movement payload that arrived before (or without) its
        order being read; the ledger reconciles the late order."""
        from .partition import Transfer

        payload = msg.payload
        if self.ledger.is_voided(payload.move_id):
            return  # stale pre-rollback movement payload
        order = next(
            (
                o
                for o in self.ledger.pending_recvs()
                if o.move_id == payload.move_id
            ),
            None,
        )
        if order is None:
            order = MoveOrder(
                move_id=payload.move_id,
                transfer=Transfer(
                    src=msg.src, dst=self.pid, units=tuple(payload.units)
                ),
            )
        yield from self.apply_recv(order, payload)
        self.ledger.complete_recv(order.move_id)

    def _produce_front(self, k: int):
        """Owner-side front computation + broadcast (skipped if a prior
        owner already broadcast before the unit moved here)."""
        k_fns = self.kernels()
        if self.front_sent.get(k, False):
            # A previous owner broadcast it; our copy of the broadcast is
            # still queued — consume it for the values.
            msg = yield Poll(tag=Tags.front(k))
            if msg is not None:
                return msg.payload
            return self.front_cache.get(k)
        ops = self.plan.front_cost(k) if self.plan.front_cost else 0.0
        holder: dict[str, Any] = {}

        def _do():
            holder["front"] = k_fns.compute_front(self.local, k)

        dt = yield from self.compute(ops, fn=_do)
        self.note_access(dt, (k,), k, name="front")
        front = holder.get("front")
        self.front_sent[k] = True
        nbytes = (
            k_fns.front_bytes(k) if self.exec_num else 8 * max(1, self.plan.n_units - k)
        )
        for other in self._front_peers:
            yield Send(other, Tags.front(k), front, nbytes)
        return front

    def pack_for(self, order: MoveOrder) -> MovePayload:
        units = order.transfer.units
        for u in units:
            if u not in self.completed:
                raise MovementError(f"slave {self.pid} told to send unowned {u}")
        k_fns = self.kernels()
        data = (
            k_fns.pack_units(
                self.local, np.asarray(units), {"shape": "reduction_front"}
            )
            if self.exec_num
            else None
        )
        meta = {
            "completed": {u: self.completed[u] for u in units},
            "front_sent": {u: self.front_sent.get(u, False) for u in units},
        }
        for u in units:
            self.owned.remove(u)
            del self.completed[u]
            self.front_sent.pop(u, None)
        return MovePayload(order.move_id, units, data, meta)

    def apply_recv(self, order: MoveOrder, payload: MovePayload):
        k_fns = self.kernels()
        units = payload.units
        if self.exec_num:
            k_fns.unpack_units(
                self.local,
                np.asarray(units),
                payload.data,
                {"shape": "reduction_front"},
            )
        for u in units:
            if u in self.completed:
                raise MovementError(f"slave {self.pid} already owns unit {u}")
            self.owned.append(u)
            self.completed[u] = payload.meta["completed"][u]
            self.front_sent[u] = payload.meta["front_sent"][u]
        self.owned.sort()
        # Catch moved-in units up to our current repetition using the
        # front cache (sender may have been behind us).
        catchup_ops = 0.0
        catchup_units = 0
        steps: list[tuple[int, list[int]]] = []
        for k in range(self.rep):
            todo = [
                u
                for u in units
                if self.completed[u] == k and k < self._unit_final_rep(u)
            ]
            if todo:
                if k not in self.front_cache:
                    raise MovementError(
                        f"slave {self.pid} missing front {k} for catch-up"
                    )
                steps.append((k, todo))
                catchup_ops += self.plan.units_cost(k, todo)
                catchup_units += len(todo)
                for u in todo:
                    self.completed[u] = k + 1

        def _do():
            for k, todo in steps:
                k_fns.apply_front(
                    self.local, k, self.front_cache[k], np.asarray(sorted(todo))
                )

        if steps:
            dt = yield from self.compute(catchup_ops, fn=_do)
            self.note_access(
                dt,
                sorted({u for _k, todo in steps for u in todo}),
                self.rep,
                name="catchup",
            )
            self.count_units(float(catchup_units))
