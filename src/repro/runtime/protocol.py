"""Master <-> slave wire protocol.

All load-balancing traffic uses small fixed tags; application data
(initial scatter, boundary columns, broadcast fronts, moved work, final
results) uses parameterised tags so selective receive can line messages
up exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .partition import Transfer

__all__ = [
    "Tags",
    "SlaveReport",
    "MoveOrder",
    "Instructions",
    "Ctrl",
    "CtrlAck",
    "REPORT_BYTES",
    "INSTR_BYTES",
    "CTRL_BYTES",
    "CTRL_ACK_BYTES",
    "HB_BYTES",
    "CKPT_MANIFEST_BYTES",
]

# Modelled wire sizes of the control messages (small, paper: status and
# instruction exchanges are cheap relative to work movement).
REPORT_BYTES = 64
INSTR_BYTES = 96
CTRL_BYTES = 96
CTRL_ACK_BYTES = 32
HB_BYTES = 16
# A checkpoint manifest (buddy placement) carries bookkeeping only; the
# snapshot data itself is sized from the application's input_bytes.
CKPT_MANIFEST_BYTES = 64


class Tags:
    """Message tag constructors."""

    INIT = "app.init"
    RESULT = "app.result"
    STATUS = "lb.status"
    INSTR = "lb.instr"
    START = "lb.start"
    # Failure-tolerant runtime only (RunConfig.ft.enabled):
    HB = "lb.hb"  # slave -> master explicit heartbeat, no reply
    CTRL = "lb.ctrl"  # master -> slave recovery control (Ctrl)
    CTRL_ACK = "lb.ctrlack"  # slave -> master control ack (CtrlAck)
    # Checkpointing only (RunConfig.ckpt.enabled): snapshot deposits,
    # buddy manifests, and buddy pull replies all travel on one tag.
    CKPT = "lb.ckpt"

    @staticmethod
    def move(move_id: int) -> str:
        return f"lb.move.{move_id}"

    @staticmethod
    def boundary(rep: int, block: int, gen: int) -> str:
        """Pipeline right-going boundary values for one strip."""
        return f"pipe.bnd.{rep}.{block}.{gen}"

    @staticmethod
    def halo(rep: int, gen: int) -> str:
        """Pipeline sweep-start halo (old values sent to the left)."""
        return f"pipe.halo.{rep}.{gen}"

    @staticmethod
    def front(rep: int) -> str:
        """Broadcast payload of a reduction-front step (LU pivot column)."""
        return f"front.{rep}"

    @staticmethod
    def residual(rep: int) -> str:
        """Slave's local convergence measure after repetition ``rep``."""
        return f"conv.res.{rep}"

    @staticmethod
    def cont(rep: int) -> str:
        """Master's WHILE-condition verdict before repetition ``rep``."""
        return f"conv.cont.{rep}"


@dataclass
class SlaveReport:
    """Performance report a slave sends at a load-balancing hook.

    ``units_done``/``work_time`` are the deltas since the last report
    (used for progress accounting).  ``meas_units``/``meas_work`` define
    the measured computation rate in work units per second — the paper's
    application-specific load measure, which needs no processor weighting
    even on heterogeneous machines (Section 3.2).  Because measuring over
    less than a few scheduling quanta gives rates biased by context
    switching (Section 4.3), the measurement accumulators are only reset
    once they span a valid window, so they may cover several reports.
    """

    pid: int
    seq: int
    units_done: float
    work_time: float
    owned_count: int
    rep: int
    meas_units: float = 0.0
    meas_work: float = 0.0
    block: int = 0
    applied_moves: tuple[int, ...] = ()
    canceled_moves: tuple[int, ...] = ()
    measured_move_cost_per_unit: float | None = None
    done: bool = False
    # PARALLEL_MAP only: the ids of owned units that still carry work.
    # Ownership alone misleads the balancer near the end of a run (a
    # finished slave still owns its complete units), so redistribution
    # decisions use remaining work where the shape allows tracking it.
    remaining_units: tuple[int, ...] | None = None
    # Rollback era (checkpointing only).  The master increments its era
    # on every rollback and drops reports from older eras; 0 always on
    # legacy paths so fault-free wire payloads are unchanged.
    era: int = 0

    @property
    def rate(self) -> float | None:
        """Units per second over the measurement window, or None if
        nothing was measured."""
        if self.meas_units <= 0 or self.meas_work <= 0:
            return None
        return self.meas_units / self.meas_work


@dataclass(frozen=True)
class MoveOrder:
    """One work movement a slave takes part in."""

    move_id: int
    transfer: Transfer

    def role(self, pid: int) -> str:
        if pid == self.transfer.src:
            return "send"
        if pid == self.transfer.dst:
            return "recv"
        return "none"


@dataclass(frozen=True)
class Ctrl:
    """Failure-recovery control message (master -> slave).

    Sequence-numbered and retried with exponential backoff until
    acknowledged; receipt is idempotent (the slave records seen sequence
    numbers and re-acknowledges duplicates with the original status).

    Kinds:
        ``grant`` — the slave takes ownership of ``units`` (state in
            ``data``/``meta``, rebuilt by the master from its partition
            ledger and the initial global state; per-unit progress resets
            so granted work is recomputed).
        ``cancel_send`` / ``cancel_recv`` — movement ``move_id`` is void
            because the peer died; the ack's status tells the master
            whether this side had already executed its half.
        ``fence`` — no-op; exists only to elicit an ack.
        ``ckpt`` — take a snapshot at the epoch barrier in ``meta``
            (``epoch``/``barrier``/``committed``/``buddy``); the ack is
            ``miss`` when the slave already passed the barrier.
        ``ckpt_pull`` — buddy placement: return the stored snapshot of
            ``meta['pid']`` for epoch ``meta['epoch']`` to the master
            (``miss`` when this slave does not hold it).
        ``rollback`` — restore the local snapshot of ``meta['epoch']``,
            enter era ``meta['era']``, void moves in
            ``[meta['void_from'], meta['void_to'])``, and adopt the
            grants in ``meta['grants']`` (dead slaves' checkpointed
            state re-partitioned by the master).
    """

    seq: int
    kind: str
    move_id: int | None = None
    units: tuple[int, ...] = ()
    data: Any = None
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CtrlAck:
    """Slave's acknowledgement of one :class:`Ctrl`.

    ``status`` is ``ok`` (applied), ``applied`` (a cancel arrived after
    the movement half already executed), ``canceled`` (the movement
    half was voided before executing), or ``miss`` (a checkpoint barrier
    already passed / a requested buddy snapshot is not held).
    """

    pid: int
    seq: int
    status: str = "ok"


@dataclass
class Instructions:
    """Per-slave instructions from the central load balancer.

    ``skip_hooks`` implements the frequency control of Section 4.3;
    ``sends``/``recvs`` are this slave's movement orders.
    """

    phase: int
    skip_hooks: int = 1
    sends: tuple[MoveOrder, ...] = ()
    recvs: tuple[MoveOrder, ...] = ()
    release: bool = False
    note: str = ""
    # Rollback era (checkpointing only); slaves drop instructions from
    # older eras.  0 always on legacy paths (wire payloads unchanged).
    era: int = 0

    def has_moves(self) -> bool:
        return bool(self.sends or self.recvs)
