"""Master <-> slave wire protocol.

All load-balancing traffic uses small fixed tags; application data
(initial scatter, boundary columns, broadcast fronts, moved work, final
results) uses parameterised tags so selective receive can line messages
up exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .partition import Transfer

__all__ = [
    "Tags",
    "SlaveReport",
    "MoveOrder",
    "Instructions",
    "REPORT_BYTES",
    "INSTR_BYTES",
]

# Modelled wire sizes of the control messages (small, paper: status and
# instruction exchanges are cheap relative to work movement).
REPORT_BYTES = 64
INSTR_BYTES = 96


class Tags:
    """Message tag constructors."""

    INIT = "app.init"
    RESULT = "app.result"
    STATUS = "lb.status"
    INSTR = "lb.instr"
    START = "lb.start"

    @staticmethod
    def move(move_id: int) -> str:
        return f"lb.move.{move_id}"

    @staticmethod
    def boundary(rep: int, block: int, gen: int) -> str:
        """Pipeline right-going boundary values for one strip."""
        return f"pipe.bnd.{rep}.{block}.{gen}"

    @staticmethod
    def halo(rep: int, gen: int) -> str:
        """Pipeline sweep-start halo (old values sent to the left)."""
        return f"pipe.halo.{rep}.{gen}"

    @staticmethod
    def front(rep: int) -> str:
        """Broadcast payload of a reduction-front step (LU pivot column)."""
        return f"front.{rep}"

    @staticmethod
    def residual(rep: int) -> str:
        """Slave's local convergence measure after repetition ``rep``."""
        return f"conv.res.{rep}"

    @staticmethod
    def cont(rep: int) -> str:
        """Master's WHILE-condition verdict before repetition ``rep``."""
        return f"conv.cont.{rep}"


@dataclass
class SlaveReport:
    """Performance report a slave sends at a load-balancing hook.

    ``units_done``/``work_time`` are the deltas since the last report
    (used for progress accounting).  ``meas_units``/``meas_work`` define
    the measured computation rate in work units per second — the paper's
    application-specific load measure, which needs no processor weighting
    even on heterogeneous machines (Section 3.2).  Because measuring over
    less than a few scheduling quanta gives rates biased by context
    switching (Section 4.3), the measurement accumulators are only reset
    once they span a valid window, so they may cover several reports.
    """

    pid: int
    seq: int
    units_done: float
    work_time: float
    owned_count: int
    rep: int
    meas_units: float = 0.0
    meas_work: float = 0.0
    block: int = 0
    applied_moves: tuple[int, ...] = ()
    canceled_moves: tuple[int, ...] = ()
    measured_move_cost_per_unit: float | None = None
    done: bool = False
    # PARALLEL_MAP only: the ids of owned units that still carry work.
    # Ownership alone misleads the balancer near the end of a run (a
    # finished slave still owns its complete units), so redistribution
    # decisions use remaining work where the shape allows tracking it.
    remaining_units: tuple[int, ...] | None = None

    @property
    def rate(self) -> float | None:
        """Units per second over the measurement window, or None if
        nothing was measured."""
        if self.meas_units <= 0 or self.meas_work <= 0:
            return None
        return self.meas_units / self.meas_work


@dataclass(frozen=True)
class MoveOrder:
    """One work movement a slave takes part in."""

    move_id: int
    transfer: Transfer

    def role(self, pid: int) -> str:
        if pid == self.transfer.src:
            return "send"
        if pid == self.transfer.dst:
            return "recv"
        return "none"


@dataclass
class Instructions:
    """Per-slave instructions from the central load balancer.

    ``skip_hooks`` implements the frequency control of Section 4.3;
    ``sends``/``recvs`` are this slave's movement orders.
    """

    phase: int
    skip_hooks: int = 1
    sends: tuple[MoveOrder, ...] = ()
    recvs: tuple[MoveOrder, ...] = ()
    release: bool = False
    note: str = ""

    def has_moves(self) -> bool:
        return bool(self.sends or self.recvs)
