"""Dynamic load-balancing runtime (master + slaves).

This package implements the paper's run-time library: the central load
balancer (*master*), the slave-side plan interpreter with load-balancing
hooks, rate filtering, balancing-frequency selection, the profitability
check, and work movement.  The entry point for whole application runs is
:func:`repro.runtime.launcher.run_application`.
"""

from .balancer import BalancerDecision, BalancerState, decide
from .filtering import TrendFilter
from .frequency import PeriodBounds, select_period
from .launcher import RunResult, run_application
from .partition import (
    BlockPartition,
    IndexPartition,
    Transfer,
    proportional_counts,
)
from .profitability import movement_profitable
from .protocol import Instructions, SlaveReport

__all__ = [
    "BalancerDecision",
    "BalancerState",
    "decide",
    "TrendFilter",
    "PeriodBounds",
    "select_period",
    "RunResult",
    "run_application",
    "BlockPartition",
    "IndexPartition",
    "Transfer",
    "proportional_counts",
    "movement_profitable",
    "Instructions",
    "SlaveReport",
]
