"""Load-balancing frequency selection (paper Section 4.3, Figure 4).

Three lower bounds constrain the period between load balancings:

- *interaction cost*: master-slave message exchange is pure overhead, so
  the period must be at least ``interaction_multiple`` (20) times the
  measured interaction cost (<= 5% overhead);
- *cost of moving work*: tracking load more often than work can usefully
  move does not pay; the period must be at least ``movement_multiple``
  (0.1) times the measured cost of moving work;
- *OS scheduling*: measuring near the quantum makes rates oscillate with
  context switching, so the period must be at least ``quantum_multiple``
  (5) quanta and never below ``min_period`` (500 ms).

The target period is the maximum of the three bounds.  From the target
period and the predicted computation rate, the balancer tells each slave
how many hook instances to skip before the next balancing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BalancerConfig
from ..errors import ConfigError

__all__ = ["PeriodBounds", "select_period", "hooks_to_skip"]


@dataclass(frozen=True)
class PeriodBounds:
    """The individual lower bounds and the resulting target period."""

    from_interaction: float
    from_movement: float
    from_quantum: float
    floor: float

    @property
    def period(self) -> float:
        return max(
            self.from_interaction, self.from_movement, self.from_quantum, self.floor
        )

    def binding_constraint(self) -> str:
        """Which bound determines the period (for diagnostics)."""
        named = {
            "interaction": self.from_interaction,
            "movement": self.from_movement,
            "quantum": self.from_quantum,
            "floor": self.floor,
        }
        return max(named, key=lambda k: named[k])


def select_period(
    interaction_cost: float,
    movement_cost: float,
    quantum: float,
    config: BalancerConfig,
) -> PeriodBounds:
    """Compute the target load-balancing period.

    ``interaction_cost`` and ``movement_cost`` are measured at run time
    (movement cost each time work moves); ``quantum`` is the OS
    scheduling quantum.
    """
    if interaction_cost < 0 or movement_cost < 0 or quantum <= 0:
        raise ConfigError(
            "need interaction_cost >= 0, movement_cost >= 0, quantum > 0"
        )
    return PeriodBounds(
        from_interaction=config.interaction_multiple * interaction_cost,
        from_movement=config.movement_multiple * movement_cost,
        from_quantum=config.quantum_multiple * quantum,
        floor=config.min_period,
    )


def hooks_to_skip(
    period: float, predicted_rate: float, units_per_hook: float
) -> int:
    """Number of hook instances a slave should let pass before invoking
    the balancer again (Section 4.3).

    ``predicted_rate`` is in work units per second; ``units_per_hook`` is
    how many units one hook interval covers (1 for per-iteration hooks, a
    strip's worth for block hooks, the owned count for per-rep hooks).
    Always at least 1.
    """
    if period <= 0 or units_per_hook <= 0:
        raise ConfigError("period and units_per_hook must be positive")
    if predicted_rate <= 0:
        return 1
    return max(1, round(period * predicted_rate / units_per_hook))
