"""Whole-application launcher: wire a plan onto a simulated cluster.

``run_application`` is the top-level entry point used by examples,
tests, and every benchmark: it builds the cluster, computes the initial
distribution and startup-time strip size, spawns master + slaves, runs
the simulation to completion, and returns a :class:`RunResult` with the
paper's metrics (execution time, speedup, resource-usage efficiency)
plus full diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from ..compiler.plan import ExecutionPlan, LoopShape
from ..compiler.stripmine import choose_block_size
from ..config import RunConfig
from ..errors import SimulationError
from ..faults import FaultInjector, FaultPlan
from ..obs import Recorder, RunReport, build_run_report
from ..sim import Cluster, LoadGenerator, Trace
from ..sim.rusage import RusageReport
from .master import MasterLog, master_task
from .partition import BlockPartition, IndexPartition
from .slave import slave_task

__all__ = [
    "RunResult",
    "resolve_run_cfg",
    "run_application",
    "sequential_time",
]


@dataclass
class RunResult:
    """Outcome and metrics of one simulated application run."""

    name: str
    n_slaves: int
    elapsed: float
    sequential_time: float
    rusage: RusageReport
    log: MasterLog
    trace: Trace | None
    message_count: int
    bytes_sent: int
    dlb_enabled: bool
    result: Any = None
    recorder: Recorder | None = None
    # Fault-injection outcome (all zero / empty on fault-free runs).
    retransmits: int = 0
    messages_lost: int = 0
    dead_pids: tuple[int, ...] = ()

    @property
    def speedup(self) -> float:
        """Speedup over the sequential program on one dedicated machine."""
        return self.sequential_time / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def efficiency(self) -> float:
        """The paper's resource-usage efficiency:
        ``T_seq / sum_p(T_elapsed - T_competing(p))`` over the slaves."""
        return self.rusage.efficiency(self.sequential_time, list(range(self.n_slaves)))

    def summary(self) -> str:
        return (
            f"{self.name}: P={self.n_slaves} elapsed={self.elapsed:.2f}s "
            f"speedup={self.speedup:.2f} eff={self.efficiency:.3f} "
            f"moves={self.log.moves_applied} ({self.log.units_moved} units) "
            f"msgs={self.message_count}"
        )

    def make_report(self) -> RunReport:
        """Aggregate this run into a :class:`repro.obs.RunReport`.

        Requires the run to have been observed (``trace=True`` /
        ``run_cfg.trace_enabled`` or an explicit recorder).
        """
        if self.recorder is None:
            raise SimulationError(
                "run was not observed: enable tracing or pass a recorder "
                "to run_application() before requesting a RunReport"
            )
        return build_run_report(self, self.recorder)


def sequential_time(plan: ExecutionPlan, run_cfg: RunConfig) -> float:
    """Execution time of the sequential program on one dedicated
    reference machine (no communication, no competing load)."""
    return plan.total_ops() / run_cfg.cluster.processor.speed


def resolve_run_cfg(
    run_cfg: RunConfig, plan: ExecutionPlan, faults: FaultPlan | None
) -> RunConfig:
    """Effective configuration for a run.

    - Fault plans with crashes, stalls, or partitions auto-enable the
      failure-tolerant runtime (``run_cfg.ft``).
    - Crashes on dependence-carrying shapes (``PIPELINE``,
      ``REDUCTION_FRONT``) additionally auto-enable checkpointing
      (``run_cfg.ckpt``), the only recovery mechanism for them.
    - Enabled checkpointing always implies the failure-tolerant runtime
      it rides on (epoch controls travel the recovery channel).

    A fault-free run with checkpointing off is returned unchanged and
    takes exactly the legacy code paths.
    """
    have_faults = faults is not None and not faults.empty
    needs_recovery = have_faults and bool(
        faults.crashes or faults.stalls or faults.partitions
    )
    if (
        have_faults
        and faults.crashes
        and plan.shape is not LoopShape.PARALLEL_MAP
        and not run_cfg.ckpt.enabled
    ):
        run_cfg = replace(
            run_cfg, ckpt=replace(run_cfg.ckpt, enabled=True)
        )
    if (needs_recovery or run_cfg.ckpt.enabled) and not run_cfg.ft.enabled:
        run_cfg = replace(run_cfg, ft=replace(run_cfg.ft, enabled=True))
    return run_cfg


def _initial_partition(plan: ExecutionPlan, run_cfg: RunConfig):
    restricted = plan.movement.restricted
    if run_cfg.balancer.restricted is not None:
        restricted = run_cfg.balancer.restricted or restricted
    n = run_cfg.cluster.n_slaves
    lo, hi = plan.unit_space()
    if restricted:
        return BlockPartition.even(hi - lo, n, lo=lo)
    return IndexPartition.even(hi - lo, n, lo=lo)


def _startup_block_size(plan: ExecutionPlan, run_cfg: RunConfig) -> int | None:
    """Startup-time strip sizing (Section 4.4): one strip ~= 1.5 quanta."""
    if plan.shape is not LoopShape.PIPELINE:
        return None
    if plan.strip.block_size is not None:
        return plan.strip.block_size
    n = run_cfg.cluster.n_slaves
    owned_avg = max(1.0, plan.unit_count / n)
    mid_unit = (plan.unit_lo + plan.n_units) // 2
    per_sweep_unit_ops = plan.unit_cost(0, mid_unit)
    per_row_ops = owned_avg * per_sweep_unit_ops / plan.strip.total
    return choose_block_size(
        unit_cost_ops=max(per_row_ops, 1e-9),
        speed_ops_per_sec=run_cfg.cluster.processor.speed,
        target_block_time=run_cfg.grain.target_block_time,
        total_iterations=plan.strip.total,
    )


def run_application(
    plan: ExecutionPlan,
    run_cfg: RunConfig | None = None,
    loads: Mapping[int, LoadGenerator] | None = None,
    seed: int = 0,
    recorder: Recorder | None = None,
    faults: FaultPlan | None = None,
) -> RunResult:
    """Run ``plan`` on a simulated cluster and return metrics.

    ``loads`` maps slave processor ids to competing-load generators
    (dedicated processors otherwise).  ``recorder`` supplies an
    observability sink explicitly; with ``run_cfg.trace_enabled`` one is
    created automatically.  Observed runs carry a derived legacy
    :class:`~repro.sim.Trace` and support :meth:`RunResult.make_report`.

    ``faults`` injects a seeded :class:`~repro.faults.FaultPlan`
    (fractional fault times must already be resolved against a horizon).
    Message-only plans rely on the transport layer alone; the effective
    configuration is computed by :func:`resolve_run_cfg` (crash/stall/
    partition plans enable ``run_cfg.ft``; crashes on dependence-carrying
    shapes also enable ``run_cfg.ckpt``).  With ``faults`` None (or an
    empty plan) and checkpointing off, no injector is built and the run
    takes exactly the legacy code paths.
    """
    run_cfg = resolve_run_cfg(run_cfg or RunConfig(), plan, faults)
    if recorder is None and run_cfg.trace_enabled:
        recorder = Recorder()
    injector: FaultInjector | None = None
    if faults is not None and not faults.empty:
        injector = FaultInjector(faults, master_pid=run_cfg.cluster.master_pid)
    if (
        plan.shape is LoopShape.PIPELINE
        and plan.unit_count < run_cfg.cluster.n_slaves
    ):
        raise SimulationError(
            f"pipeline plan has {plan.unit_count} units for "
            f"{run_cfg.cluster.n_slaves} slaves; every slave needs at "
            "least one column to anchor its halo exchange"
        )
    cluster = Cluster(
        run_cfg.cluster,
        dict(loads or {}),
        recorder,
        injector,
        engine=run_cfg.engine,
    )
    rng = np.random.default_rng(seed)

    global_state = (
        plan.kernels.make_global(rng) if run_cfg.execute_numerics else None
    )
    partition = _initial_partition(plan, run_cfg)
    block_size = _startup_block_size(plan, run_cfg)

    log = MasterLog()
    sink: dict[str, Any] = {}
    for pid in range(run_cfg.cluster.n_slaves):
        cluster.spawn(pid, slave_task, plan, run_cfg)
    cluster.spawn(
        run_cfg.cluster.master_pid,
        master_task,
        plan,
        run_cfg,
        log,
        recorder,
        global_state,
        partition,
        block_size,
        sink,
    )
    cluster.run(until=run_cfg.max_virtual_time)
    if "log" not in sink:
        # The run did not finish inside the virtual-time budget; rerun to
        # the real end only if the queue drained (deadlock check).
        if cluster.engine.pending():
            raise SimulationError(
                f"run exceeded max_virtual_time={run_cfg.max_virtual_time}"
            )
        cluster.run()  # surfaces DeadlockError diagnostics
        raise SimulationError("master never produced a result")

    elapsed = max(
        cluster.task_finish_time(pid)
        for pid in range(run_cfg.cluster.n_processors)
        if pid not in cluster.dead_pids
    )
    seq = sequential_time(plan, run_cfg)
    trace = (
        Trace.from_events(recorder.log.events())
        if recorder is not None and recorder.enabled
        else None
    )
    return RunResult(
        name=plan.name,
        n_slaves=run_cfg.cluster.n_slaves,
        elapsed=elapsed,
        sequential_time=seq,
        rusage=cluster.rusage(elapsed),
        log=log,
        trace=trace,
        message_count=cluster.message_count,
        bytes_sent=cluster.bytes_sent,
        dlb_enabled=run_cfg.dlb_enabled,
        result=log.result,
        recorder=recorder,
        retransmits=cluster.retransmits,
        messages_lost=cluster.messages_lost,
        dead_pids=tuple(sorted(cluster.dead_pids)),
    )
