"""Central load balancer (master) process.

The master mirrors the slaves' load-balancing phase structure
(Section 4.1): every slave status report gets exactly one instruction
reply, computed from the most recent information (synchronous slaves
block on the reply; pipelined slaves pick it up one hook later,
Section 3.3).  Movement rounds are issued at most one at a time; the
partition bookkeeping advances only when every involved slave has
acknowledged (or cancelled) its side, so master and slaves can never
disagree about ownership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..ckpt import (
    CheckpointCoordinator,
    CheckpointEpoch,
    SlaveSnapshot,
    pipeline_repartition,
    reduction_repartition,
)
from ..compiler.plan import ExecutionPlan, LoopShape
from ..config import RunConfig
from ..errors import ProtocolError, SlaveLostError
from ..obs import NULL_RECORDER, Recorder
from ..sim import Now, Poll, Recv, Send, Sleep, TaskContext
from .balancer import BalancerDecision, BalancerState, decide
from .partition import (
    BlockPartition,
    IndexPartition,
    Transfer,
    proportional_counts,
)
from .protocol import (
    CTRL_BYTES,
    INSTR_BYTES,
    Ctrl,
    CtrlAck,
    Instructions,
    MoveOrder,
    SlaveReport,
    Tags,
)

__all__ = ["master_task", "MasterLog", "can_recover"]


def can_recover(plan: ExecutionPlan, run_cfg: RunConfig) -> bool:
    """Can the runtime survive a slave death for this plan and config?

    ``PARALLEL_MAP`` recovers by reassignment alone (iterations are
    independent, so a dead slave's units are simply recomputed);
    dependence-carrying shapes (``PIPELINE``, ``REDUCTION_FRONT``) need
    checkpoint rollback, i.e. ``RunConfig.ckpt`` enabled.
    """
    return plan.shape is LoopShape.PARALLEL_MAP or run_cfg.ckpt.enabled


@dataclass
class _InFlightMove:
    order: MoveOrder
    acked: set[int] = field(default_factory=set)
    canceled: bool = False
    issued_at: float = 0.0

    def involved(self) -> tuple[int, int]:
        return self.order.transfer.src, self.order.transfer.dst

    def complete(self) -> bool:
        return self.acked >= set(self.involved())


@dataclass
class _PendingCtrl:
    """A recovery control awaiting its ack (retried with backoff)."""

    ctrl: Ctrl
    dst: int
    sent_at: float
    attempts: int = 1


@dataclass
class MasterLog:
    """Everything the master learned during a run (for experiments)."""

    decisions: list[BalancerDecision] = field(default_factory=list)
    moves_issued: int = 0
    moves_applied: int = 0
    moves_canceled: int = 0
    units_moved: int = 0
    units_reassigned: int = 0
    reports_received: int = 0
    final_partition_counts: list[int] = field(default_factory=list)
    result: Any = None
    merged_units: int = 0
    # Checkpoint/rollback accounting (zero unless RunConfig.ckpt enabled).
    rollbacks: int = 0
    units_restored: int = 0
    ckpt_epochs_opened: int = 0
    ckpt_epochs_committed: int = 0
    ckpt_epochs_aborted: int = 0
    ckpt_snapshots: int = 0


class _Master:
    def __init__(
        self,
        ctx: TaskContext,
        plan: ExecutionPlan,
        run_cfg: RunConfig,
        log: MasterLog,
        recorder: Recorder | None,
        global_state: Any,
        partition: BlockPartition | IndexPartition,
        block_size: int | None,
    ):
        self.ctx = ctx
        self.plan = plan
        self.cfg = run_cfg
        self.log = log
        self.obs = (
            recorder
            if recorder is not None
            else getattr(ctx, "obs", NULL_RECORDER)
        )
        self.global_state = global_state
        self.partition = partition
        self.block_size = block_size
        self.n = ctx.n_slaves
        self.state = BalancerState(
            n_slaves=self.n,
            config=run_cfg.balancer,
            unit_bytes=plan.movement.unit_bytes,
            network=run_cfg.cluster.network,
            quantum=run_cfg.cluster.processor.quantum,
        )
        self.last_report: dict[int, SlaveReport] = {}
        self.pending_orders: dict[int, list[MoveOrder]] = {p: [] for p in range(self.n)}
        self.in_flight: dict[int, _InFlightMove] = {}
        self.next_move_id = 0
        self.done_units_accum = 0.0
        self.total_work_units = self._total_work_units()
        self.last_move_issue_time = -1.0e9
        self.released: set[int] = set()
        self.results: dict[int, Any] = {}
        # Failure tolerance (RunConfig.ft; all empty in fault-free runs).
        self.ft = run_cfg.ft
        self.exec_num = run_cfg.execute_numerics and global_state is not None
        self.dead: set[int] = set()
        self.suspected: set[int] = set()
        self.last_heard: dict[int, float] = {}
        self.done_units_by_pid: dict[int, float] = {}
        self.ctrl_seq = 0
        self.ctrl_outbox: list[tuple[int, Ctrl]] = []
        self.unacked: dict[int, _PendingCtrl] = {}
        # In-flight moves frozen at a death, awaiting the live side's
        # cancel ack to learn whether its half already executed.
        self.dead_moves: dict[int, _InFlightMove] = {}
        # Moves force-resolved by recovery: late acks for them are fine.
        self.resolved_moves: set[int] = set()
        # Checkpoint/rollback state (RunConfig.ckpt; see docs).
        self.ckpt_cfg = run_cfg.ckpt
        self.era = 0
        self.movement_frozen = False
        self._gen_base = 0
        self._pending_rollback: dict[str, Any] | None = None
        # Residuals keyed rep -> {pid: value} so a rollback can discard
        # pre-rollback contributions and regrant coverage stays exact.
        self.residuals: dict[int, dict[int, float]] = {}
        self.coord: CheckpointCoordinator | None = None
        if self.ckpt_cfg.enabled:
            self.coord = CheckpointCoordinator(self.ckpt_cfg)
            # Epoch 0 is the initial state: every slave snapshots it
            # locally at startup and the master can resynthesize any
            # slave's slice from the global inputs, so a rollback target
            # always exists even before the first commit.
            self.coord.epoch0 = CheckpointEpoch(
                epoch=0,
                barrier=0,
                opened_at=0.0,
                members=tuple(range(self.n)),
                cut={
                    p: tuple(int(u) for u in partition.owned(p))
                    for p in range(self.n)
                },
                boundaries=(
                    tuple(partition.boundaries)
                    if isinstance(partition, BlockPartition)
                    else None
                ),
                next_move_id=0,
                placement=self.ckpt_cfg.placement,
                committed_at=0.0,
            )

    # ------------------------------------------------------------------

    def _total_work_units(self) -> float:
        plan = self.plan
        if plan.shape is LoopShape.REDUCTION_FRONT:
            total = 0.0
            for rep in range(plan.reps):
                lo, hi = plan.domain(rep)
                total += max(0, hi - lo)
            return total
        return float(plan.unit_count * plan.reps)

    def _units_per_hook(self) -> dict[int, float]:
        counts = self._counts()
        if self.plan.shape is LoopShape.PARALLEL_MAP:
            return {p: 1.0 for p in range(self.n)}
        if self.plan.shape is LoopShape.PIPELINE:
            bs = self.block_size or 1
            total = self.plan.strip.total
            return {
                p: max(counts[p] * bs / total, 1e-9) for p in range(self.n)
            }
        # REDUCTION_FRONT: one hook per repetition covering the active set.
        return {p: max(float(counts[p]), 1.0) for p in range(self.n)}

    def _counts(self) -> list[int]:
        if isinstance(self.partition, BlockPartition):
            return self.partition.counts()
        return self.partition.counts(self._active_predicate())

    def _remaining_sets(self) -> dict[int, tuple[int, ...]] | None:
        """Per-slave remaining-work unit ids (PARALLEL_MAP tail phase).

        In steady state the paper's ownership-proportional balancing is
        used (remaining counts snapshotted at different report times
        would inject progress-position noise).  Once some slave runs dry
        while others still hold work, ownership no longer reflects load,
        so the tail balances explicit remaining-work sets — built from
        slave reports, intersected with current ownership so a stale
        report cannot name a unit that has since moved."""
        if self.plan.shape is not LoopShape.PARALLEL_MAP:
            return None
        sets: dict[int, tuple[int, ...]] = {}
        for p in range(self.n):
            owned = set(int(u) for u in self.partition.owned(p))
            rep = self.last_report.get(p)
            if rep is None or rep.remaining_units is None:
                sets[p] = tuple(sorted(owned))
            else:
                sets[p] = tuple(sorted(owned & set(rep.remaining_units)))
        lens = [len(s) for s in sets.values()]
        if min(lens) > 0 or max(lens) == 0:
            return None  # steady state (or fully done): ownership rules
        return sets

    def _active_predicate(self) -> Callable[[int], bool] | None:
        if self.plan.shape is not LoopShape.REDUCTION_FRONT:
            return None
        rep_of: dict[int, int] = {}
        for p in range(self.n):
            rep = self.last_report[p].rep if p in self.last_report else 0
            for u in self.partition.owned(p):
                rep_of[int(u)] = rep
        # A margin of one repetition protects against report staleness.
        return lambda u: u > rep_of.get(u, 0) + 1

    # ------------------------------------------------------------------
    # Movement round bookkeeping
    # ------------------------------------------------------------------

    def _issue_transfers(self, transfers: list[Transfer], now: float) -> None:
        for t in transfers:
            order = MoveOrder(move_id=self.next_move_id, transfer=t)
            self.next_move_id += 1
            self.in_flight[order.move_id] = _InFlightMove(order, issued_at=now)
            self.pending_orders[t.src].append(order)
            self.pending_orders[t.dst].append(order)
            self.log.moves_issued += 1
            if self.ft.enabled:
                # A slave with pending movement is not done, whatever its
                # last report said; keep the all-done release barrier
                # honest so grant targets stay alive.
                for p in (t.src, t.dst):
                    rep = self.last_report.get(p)
                    if rep is not None:
                        rep.done = False
        self.last_move_issue_time = now
        if self.obs.enabled and transfers:
            self.obs.metrics.counter("lb.moves_issued").inc(len(transfers))
            self.obs.emit_counter(
                "lb",
                "redistribute",
                now,
                float(sum(t.count for t in transfers)),
                meta={"transfers": [[t.src, t.dst, t.count] for t in transfers]},
            )

    def _process_acks(self, report: SlaveReport, now: float = 0.0) -> None:
        for mid in report.applied_moves:
            if mid in self.resolved_moves:
                continue  # force-resolved when a peer died
            fl = self.in_flight.get(mid)
            if fl is None:
                raise ProtocolError(f"ack for unknown move {mid}")
            fl.acked.add(report.pid)
        for mid in report.canceled_moves:
            if mid in self.resolved_moves:
                continue  # force-resolved when a peer died
            fl = self.in_flight.get(mid)
            if fl is None:
                raise ProtocolError(f"cancel for unknown move {mid}")
            fl.acked.add(report.pid)
            fl.canceled = True
        # Close out completed moves, applying ownership changes.
        for mid in [m for m, fl in self.in_flight.items() if fl.complete()]:
            fl = self.in_flight.pop(mid)
            if fl.canceled:
                self.log.moves_canceled += 1
            else:
                self.partition = self.partition.apply([fl.order.transfer])
                self.log.moves_applied += 1
                self.log.units_moved += fl.order.transfer.count
            if self.obs.enabled:
                tr = fl.order.transfer
                self.obs.emit_span(
                    "lb",
                    "move",
                    fl.issued_at,
                    now,
                    value=float(tr.count),
                    meta={
                        "move_id": mid,
                        "src": tr.src,
                        "dst": tr.dst,
                        "canceled": fl.canceled,
                    },
                )
                if not fl.canceled:
                    self.obs.metrics.counter("lb.units_migrated").inc(tr.count)
                    self.obs.metrics.histogram("lb.balance_latency_s").observe(
                        now - fl.issued_at
                    )

    def _movement_allowed(self, now: float) -> bool:
        if self.movement_frozen:
            # After a rollback the partition was rebuilt around the
            # survivors; further movement could cross the relinked
            # pipeline ring, so balancing stays frozen for the rest of
            # the run (grants from later deaths still work).
            return False
        if self.coord is not None and (
            self.coord.open is not None or self.coord.due(now)
        ):
            # Movement while an epoch is collecting snapshots would make
            # the cut inconsistent with the deposits; and once an epoch
            # is *due*, new moves are deferred so in-flight ones drain
            # and the epoch can actually open (otherwise continuously
            # rebalancing schedules, LU above all, starve checkpointing).
            return False
        if self.in_flight:
            return False
        if any(self.pending_orders[p] for p in range(self.n)):
            return False
        period = self.state.config.min_period
        return (now - self.last_move_issue_time) >= period

    # ------------------------------------------------------------------
    # Per-report handling
    # ------------------------------------------------------------------

    def handle_report(self, report: SlaveReport, now: float) -> Instructions:
        self.log.reports_received += 1
        self.last_report[report.pid] = report
        self.done_units_accum += report.units_done
        self.done_units_by_pid[report.pid] = (
            self.done_units_by_pid.get(report.pid, 0.0) + report.units_done
        )
        raw = report.rate
        self.state.observe(report)
        self._process_acks(report, now)

        if self.obs.enabled:
            self.obs.metrics.counter("lb.reports").inc()
            self.obs.emit_counter(
                "lb",
                "report",
                now,
                float(report.units_done),
                pid=report.pid,
                meta={"done": report.done, "seq": report.seq},
            )
            if raw is not None:
                self.obs.emit_counter("rate", "raw_rate", now, raw, pid=report.pid)
            filt = self.state.filters[report.pid].value
            if filt is not None:
                self.obs.emit_counter(
                    "rate", "adjusted_rate", now, filt, pid=report.pid
                )

        remaining = max(0.0, self.total_work_units - self.done_units_accum)
        allow = (
            self.cfg.dlb_enabled
            and self._movement_allowed(now)
            and remaining > 0
        )
        decision = decide(
            self.state,
            self.partition,
            self._units_per_hook(),
            remaining_units=remaining,
            active=self._active_predicate(),
            allow_movement=allow,
            remaining_sets=self._remaining_sets(),
        )
        self.log.decisions.append(decision)
        if self.obs.enabled:
            self.obs.metrics.counter("lb.decisions").inc()
            if decision.cancelled is not None:
                self.obs.metrics.counter(
                    f"lb.cancelled.{decision.cancelled}"
                ).inc()
            self.obs.emit_counter(
                "lb",
                "improvement",
                now,
                decision.improvement,
                meta={
                    "cancelled": decision.cancelled,
                    "share_deviation": decision.share_deviation,
                    "period": decision.period,
                },
            )
        if decision.transfers:
            # Released slaves no longer read instructions; a transfer
            # touching one could never be delivered and its units would
            # vanish from the gather.
            avoid = self.released | self.dead | self.suspected
            usable = [
                t
                for t in decision.transfers
                if t.src not in avoid and t.dst not in avoid
            ]
            if usable:
                self._issue_transfers(usable, now)

        if self.obs.enabled:
            counts = self._counts()
            for p in range(self.n):
                self.obs.emit_counter("lb", "work", now, float(counts[p]), pid=p)

        sends = tuple(
            o
            for o in self.pending_orders[report.pid]
            if o.transfer.src == report.pid
        )
        recvs = tuple(
            o
            for o in self.pending_orders[report.pid]
            if o.transfer.dst == report.pid
        )
        self.pending_orders[report.pid] = []

        if report.done and not sends and not recvs:
            involved = any(
                report.pid in fl.involved() and report.pid not in fl.acked
                for fl in self.in_flight.values()
            )
            if (
                not involved
                and not self._ft_release_blocked(report.pid)
                and self._ft_results_complete()
            ):
                self.released.add(report.pid)
                if (
                    self.coord is not None
                    and self.coord.open is not None
                    and report.pid in self.coord.open.members
                ):
                    # A released member will never deposit; the epoch
                    # would hang open and block movement forever.
                    self._abort_epoch(now)
                return Instructions(
                    phase=decision.phase,
                    release=True,
                    note="release",
                    era=self.era,
                )
        return Instructions(
            phase=decision.phase,
            skip_hooks=decision.skip_hooks.get(report.pid, 1),
            sends=sends,
            recvs=recvs,
            era=self.era,
        )

    # ------------------------------------------------------------------
    # Failure tolerance (RunConfig.ft; see docs/fault-tolerance.md)
    # ------------------------------------------------------------------

    def _ft_release_blocked(self, pid: int) -> bool:
        """Release barrier for the failure-tolerant runtime.

        A released slave terminates and can no longer adopt reassigned
        work, so releases are held back while recovery is unsettled
        (suspected slaves, unacknowledged controls) and — as a global
        barrier — until every live slave is done, so a late death always
        has a live grant target.
        """
        if not self.ft.enabled:
            return False
        if self.suspected or self.unacked or self.ctrl_outbox:
            return True
        for q in range(self.n):
            if q == pid or q in self.dead or q in self.released:
                continue
            rep = self.last_report.get(q)
            if rep is None or not rep.done:
                return True
        return False

    def _ft_results_complete(self) -> bool:
        """No release until every non-dead slave's result is banked.

        Failure-tolerant slaves return their result as soon as they are
        done (well before the release), so the master only lets anyone
        terminate once it could finish the gather without them.  A slave
        that dies in the silent window between its last report and the
        suspicion threshold then blocks the release of the survivors —
        exactly the ones a rollback needs alive.  A banked result only
        counts while it matches the slave's current ownership (movement
        or a grant after the early return makes it stale).
        """
        if not self.ft.enabled:
            return True
        for q in range(self.n):
            if q in self.dead:
                continue
            res = self.results.get(q)
            if res is None:
                return False
            if q in self.released:
                continue  # verified against ownership at its release
            owned = {int(u) for u in self.partition.owned(q)}
            if {int(u) for u in res["units"]} != owned:
                return False
        return True

    def note_heard(self, pid: int, now: float) -> None:
        if pid in self.dead:
            return
        self.last_heard[pid] = now
        if pid in self.suspected:
            self.suspected.discard(pid)
            if self.obs.enabled:
                self.obs.metrics.counter("ft.recovered").inc()
                self.obs.emit_counter("slave", "recovered", now, 1.0, pid=pid)

    def ft_tick(self, now: float) -> None:
        """Periodic recovery work: control retries and the silence scan."""
        for seq, pc in sorted(self.unacked.items()):
            if pc.dst in self.dead:
                continue  # cleaned up by declare_dead
            due = pc.sent_at + self.ft.ctrl_rto * (
                self.ft.ctrl_backoff ** (pc.attempts - 1)
            )
            if now < due:
                continue
            if pc.attempts > self.ft.ctrl_max_retries:
                raise SlaveLostError(
                    f"control {pc.ctrl.kind!r} (seq {seq}) to slave "
                    f"{pc.dst} unacknowledged after {pc.attempts} attempts"
                )
            pc.attempts += 1
            pc.sent_at = now
            self.ctrl_outbox.append((pc.dst, pc.ctrl))
            if self.obs.enabled:
                self.obs.metrics.counter("ft.ctrl_retransmits").inc()
                self.obs.emit_counter(
                    "ctrl",
                    "retransmit",
                    now,
                    1.0,
                    pid=pc.dst,
                    meta={
                        "seq": seq,
                        "kind": pc.ctrl.kind,
                        "attempt": pc.attempts,
                    },
                )
        for pid in range(self.n):
            if pid in self.dead or pid in self.released:
                continue
            silent = now - self.last_heard.get(pid, now)
            if silent >= self.ft.dead_after:
                self.declare_dead(pid, now)
            elif silent >= self.ft.suspect_after and pid not in self.suspected:
                self.suspected.add(pid)
                if self.obs.enabled:
                    self.obs.metrics.counter("ft.suspected").inc()
                    self.obs.emit_counter(
                        "slave",
                        "suspected",
                        now,
                        1.0,
                        pid=pid,
                        meta={"silent_for": silent},
                    )
        if self.coord is not None:
            self._ckpt_tick(now)

    def _send_ctrl(
        self,
        dst: int,
        kind: str,
        now: float,
        move_id: int | None = None,
        units: tuple[int, ...] = (),
        data: Any = None,
        meta: dict[str, Any] | None = None,
    ) -> Ctrl:
        ctrl = Ctrl(
            seq=self.ctrl_seq,
            kind=kind,
            move_id=move_id,
            units=tuple(int(u) for u in units),
            data=data,
            meta=meta or {},
        )
        self.ctrl_seq += 1
        self.ctrl_outbox.append((dst, ctrl))
        self.unacked[ctrl.seq] = _PendingCtrl(ctrl=ctrl, dst=dst, sent_at=now)
        return ctrl

    def handle_ctrl_ack(self, ack: CtrlAck, now: float) -> None:
        pc = self.unacked.pop(ack.seq, None)
        if pc is None:
            return  # duplicate ack for an already-settled control
        ctrl = pc.ctrl
        if ctrl.kind == "ckpt":
            if ack.status == "miss" and (
                self.coord is not None
                and self.coord.open is not None
                and self.coord.open.epoch == int(ctrl.meta["epoch"])
            ):
                # The slave already ran past the barrier: abort; the
                # next epoch opens with a wider barrier margin.
                self._abort_epoch(now, missed=True)
            return
        if ctrl.kind == "ckpt_pull":
            if ack.status == "miss":
                self._pull_failed(int(ctrl.meta["pid"]), now)
            return
        if ctrl.kind not in ("cancel_send", "cancel_recv"):
            return  # grants, fences, and rollbacks need nothing further
        mid = ctrl.move_id
        assert mid is not None
        fl = self.dead_moves.pop(mid, None)
        if fl is None:
            return
        tr = fl.order.transfer
        if ack.status == "applied":
            # The live side had already executed its half, so the
            # transfer happened (toward a dead receiver the data is
            # lost, but ownership still moved — regrant from there).
            self.partition = self.partition.apply([tr])
            self.log.moves_applied += 1
            self.log.units_moved += tr.count
            if tr.dst in self.dead:
                self._grant_units(tr.units, tr.dst, now)
        else:  # "canceled": the transfer never happened
            self.log.moves_canceled += 1
            if tr.src in self.dead:
                self._grant_units(tr.units, tr.src, now)

    def can_recover(self) -> bool:
        return can_recover(self.plan, self.cfg)

    def declare_dead(self, pid: int, now: float) -> None:
        """Declare ``pid`` dead and recover its work.

        ``PARALLEL_MAP`` reassigns the dead slave's units directly (unit
        results depend only on inputs); dependence-carrying shapes roll
        every survivor back to the last committed checkpoint epoch and
        repartition the dead slave's slice from the checkpointed state.
        """
        if pid in self.dead:
            return
        if not self.can_recover():
            raise SlaveLostError(
                f"slave {pid} lost (silent for {self.ft.dead_after}s); "
                f"{self.plan.shape.name} schedules need checkpointing "
                "(RunConfig.ckpt) to recover, and it is disabled"
            )
        self.dead.add(pid)
        self.suspected.discard(pid)
        self.state.exclude(pid)
        lost_progress = self.done_units_by_pid.get(pid, 0.0)
        self.done_units_accum = max(0.0, self.done_units_accum - lost_progress)
        self.done_units_by_pid[pid] = 0.0
        self.pending_orders[pid] = []
        if self.obs.enabled:
            self.obs.metrics.counter("ft.deaths").inc()
            self.obs.emit_counter(
                "slave",
                "declared_dead",
                now,
                1.0,
                pid=pid,
                meta={"lost_progress_units": lost_progress},
            )
        if (
            self.coord is not None
            and self.coord.open is not None
            and pid in self.coord.open.members
        ):
            self._abort_epoch(now)
        # Failure-tolerant slaves return results at done-time, so a dead
        # slave may have nothing left to recover.  A banked result only
        # counts while it matches the final ownership; a stale one is
        # dropped here so the ``pid in self.results`` checks below read
        # "a usable result arrived" and recovery re-covers those units.
        res = self.results.get(pid)
        if res is not None:
            owned = {int(u) for u in self.partition.owned(pid)}
            if {int(u) for u in res["units"]} != owned:
                del self.results[pid]
        if self.plan.shape is not LoopShape.PARALLEL_MAP:
            # Coordinated rollback: drop controls addressed to the dead
            # slave, then roll the survivors back to the last committed
            # epoch (movement settling is subsumed — every move issued
            # after the epoch cut is voided wholesale).
            for seq in [
                s for s, pc in self.unacked.items() if pc.dst == pid
            ]:
                del self.unacked[seq]
            self.ctrl_outbox = [
                (d, c) for (d, c) in self.ctrl_outbox if d != pid
            ]
            if pid in self.results:
                return  # its result already arrived; nothing to recompute
            self._begin_rollback(pid, now)
            return
        # Cancel controls parked on an earlier death whose live target is
        # this slave; whoever the unapplied transfer leaves the units with
        # is dead, so they go straight back to the grant pool.
        regrants: list[tuple[int, tuple[int, ...]]] = []
        for mid, fl in list(self.dead_moves.items()):
            src, dst = fl.involved()
            if pid not in (src, dst):
                continue
            del self.dead_moves[mid]
            self.log.moves_canceled += 1
            tr = fl.order.transfer
            if tr.src != pid and tr.src in self.dead:
                # Excluded from the earlier sweep as contested; free now.
                regrants.append((tr.src, tr.units))
        # Resolve in-flight movements that involve the dead slave.
        for mid, fl in list(self.in_flight.items()):
            src, dst = fl.involved()
            if pid not in (src, dst):
                continue
            other = dst if src == pid else src
            del self.in_flight[mid]
            self.resolved_moves.add(mid)
            queued = any(
                o.move_id == mid for o in self.pending_orders[other]
            )
            if queued:
                self.pending_orders[other] = [
                    o for o in self.pending_orders[other] if o.move_id != mid
                ]
            if other in self.dead:
                self.log.moves_canceled += 1
            elif other in fl.acked:
                if fl.canceled:
                    self.log.moves_canceled += 1
                else:
                    self.partition = self.partition.apply([fl.order.transfer])
                    self.log.moves_applied += 1
                    self.log.units_moved += fl.order.transfer.count
            elif queued:
                # The live side never saw the order; nothing to cancel.
                self.log.moves_canceled += 1
            else:
                # The live side may or may not have executed its half:
                # ask it to cancel and settle ownership on the ack.
                kind = "cancel_recv" if src == pid else "cancel_send"
                self._send_ctrl(other, kind, now, move_id=mid)
                self.dead_moves[mid] = fl
        # Drop pending controls addressed to the dead slave.  Granted
        # units (ownership already moved to it) fall into its sweep.
        for seq in [s for s, pc in self.unacked.items() if pc.dst == pid]:
            del self.unacked[seq]
        self.ctrl_outbox = [
            (d, c) for (d, c) in self.ctrl_outbox if d != pid
        ]
        if pid in self.results:
            return  # its result already arrived; nothing to recompute
        # Sweep: everything the ledger says the dead slave owns, minus
        # units whose ownership hangs on an outstanding cancel ack.
        contested: set[int] = set()
        for fl in self.dead_moves.values():
            if fl.order.transfer.src == pid:
                contested.update(int(u) for u in fl.order.transfer.units)
        pool = tuple(
            sorted(
                set(int(u) for u in self.partition.owned(pid)) - contested
            )
        )
        regrants.append((pid, pool))
        for owner, units in regrants:
            self._grant_units(units, owner, now)

    def _grant_units(
        self, units: tuple[int, ...], from_pid: int, now: float
    ) -> None:
        """Reassign a dead slave's units to the surviving slaves,
        proportionally to their filtered rates."""
        units = tuple(sorted(int(u) for u in units))
        if not units:
            return
        candidates = [
            q
            for q in range(self.n)
            if q not in self.dead
            and q not in self.released
            and q not in self.suspected
        ]
        if not candidates:
            candidates = [
                q
                for q in range(self.n)
                if q not in self.dead and q not in self.released
            ]
        if not candidates:
            raise SlaveLostError(
                f"no surviving slave can adopt the work of dead slave "
                f"{from_pid} ({len(units)} units)"
            )
        rates = self.state.filtered_rates()
        shares = proportional_counts(
            len(units), [rates[q] for q in candidates]
        )
        idx = 0
        for q, share in zip(candidates, shares):
            if share == 0:
                continue
            chunk = units[idx : idx + share]
            idx += share
            self.partition = self.partition.apply(
                [Transfer(src=from_pid, dst=q, units=chunk)]
            )
            self._send_ctrl(
                q,
                "grant",
                now,
                units=chunk,
                data=self._grant_payload(chunk),
                meta={"completed": {u: 0 for u in chunk}, "from": from_pid},
            )
            rep = self.last_report.get(q)
            if rep is not None:
                rep.done = False  # it has work again; hold its release
            self.log.units_reassigned += len(chunk)
            if self.obs.enabled:
                self.obs.metrics.counter("ft.units_reassigned").inc(len(chunk))
                self.obs.emit_counter(
                    "work",
                    "reassigned",
                    now,
                    float(len(chunk)),
                    pid=q,
                    meta={
                        "from": from_pid,
                        "to": q,
                        "units": [int(u) for u in chunk],
                    },
                )

    def _grant_payload(self, units: tuple[int, ...]) -> Any:
        """Rebuild unit state for a grant from the initial global state
        (valid for PARALLEL_MAP: unit results depend only on inputs)."""
        if not self.exec_num:
            return None
        k = self.plan.kernels
        arr = np.asarray(units)
        local = k.make_local(self.global_state, arr)
        return k.pack_units(local, arr, {"shape": "parallel_map"})

    # ------------------------------------------------------------------
    # Checkpointing (RunConfig.ckpt; see repro.ckpt and docs)
    # ------------------------------------------------------------------

    def _abort_epoch(self, now: float, missed: bool = False) -> None:
        if self.coord is None or self.coord.open is None:
            return
        self.coord.abort(now, missed=missed)
        self.log.ckpt_epochs_aborted += 1
        if self.obs.enabled:
            self.obs.metrics.counter("ckpt.epochs_aborted").inc()
            if missed:
                self.obs.metrics.counter("ckpt.barrier_misses").inc()

    def _ckpt_tick(self, now: float) -> None:
        """Open a new checkpoint epoch when one is due and safe."""
        assert self.coord is not None
        if self._pending_rollback is not None or not self.coord.due(now):
            return
        if self.in_flight or any(
            self.pending_orders[p] for p in range(self.n)
        ):
            return  # movement in progress: the cut would be ambiguous
        members = tuple(
            p
            for p in range(self.n)
            if p not in self.dead and p not in self.released
        )
        if not members:
            return
        if self.plan.shape is LoopShape.PARALLEL_MAP:
            barrier = 0  # any hook is a dependence-safe cut for a map
        else:
            barrier = (
                max(
                    (
                        self.last_report[p].rep
                        for p in members
                        if p in self.last_report
                    ),
                    default=0,
                )
                + self.coord.margin
            )
            if barrier >= self.plan.reps:
                return  # too near the end for a checkpoint to pay off
        cut = {
            p: tuple(int(u) for u in self.partition.owned(p))
            for p in members
        }
        boundaries = (
            tuple(self.partition.boundaries)
            if isinstance(self.partition, BlockPartition)
            else None
        )
        buddies: dict[int, int] = {}
        if self.ckpt_cfg.placement == "buddy" and len(members) > 1:
            for i, p in enumerate(members):
                buddies[p] = members[(i + 1) % len(members)]
        epoch = self.coord.open_epoch(
            now,
            barrier=barrier,
            members=members,
            cut=cut,
            boundaries=boundaries,
            next_move_id=self.next_move_id,
            buddies=buddies or None,
        )
        committed = (
            self.coord.committed.epoch if self.coord.committed else 0
        )
        for p in members:
            meta: dict[str, Any] = {
                "epoch": epoch.epoch,
                "barrier": barrier,
                "committed": committed,
            }
            if p in buddies:
                meta["buddy"] = buddies[p]
            self._send_ctrl(p, "ckpt", now, meta=meta)
        self.log.ckpt_epochs_opened += 1
        if self.obs.enabled:
            self.obs.metrics.counter("ckpt.epochs_opened").inc()
            self.obs.emit_counter(
                "ckpt",
                "epoch_open",
                now,
                float(epoch.epoch),
                meta={"barrier": barrier, "members": list(members)},
            )

    def handle_ckpt_message(self, msg: Any, now: float) -> None:
        """A ``Tags.CKPT`` message: a snapshot deposit, a buddy-placement
        manifest, or a pulled snapshot for a pending rollback."""
        if self.coord is None:
            return
        payload = msg.payload
        kind = payload.get("kind")
        if kind == "pull":
            self._pull_arrived(payload["snap"], now)
            return
        if kind not in ("deposit", "manifest"):
            raise ProtocolError(
                f"master received unknown ckpt message {kind!r}"
            )
        pid = int(payload["pid"])
        epoch_num = int(payload["epoch"])
        snap: SlaveSnapshot
        if kind == "deposit":
            snap = payload["snap"]
        else:
            snap = SlaveSnapshot(
                pid=pid,
                epoch=epoch_num,
                rep=int(payload["rep"]),
                units=tuple(int(u) for u in payload["units"]),
                local=None,
            )
        self.log.ckpt_snapshots += 1
        open_epoch = self.coord.open
        if self.coord.deposit(pid, snap, now):
            self.log.ckpt_epochs_committed += 1
            if self.obs.enabled:
                assert open_epoch is not None
                self.obs.metrics.counter("ckpt.epochs_committed").inc()
                self.obs.emit_span(
                    "ckpt",
                    "epoch",
                    open_epoch.opened_at,
                    now,
                    value=float(len(open_epoch.members)),
                    meta={
                        "epoch": epoch_num,
                        "barrier": open_epoch.barrier,
                    },
                )

    # ------------------------------------------------------------------
    # Coordinated rollback (non-PARALLEL_MAP death recovery)
    # ------------------------------------------------------------------

    def _begin_rollback(self, dead_pid: int, now: float) -> None:
        assert self.coord is not None
        self._abort_epoch(now)
        self._pending_rollback = None
        target = self.coord.rollback_target()
        if target.epoch > 0 and self.exec_num:
            # Under buddy placement the master holds only manifests for
            # the committed epoch; dead members' full snapshots must be
            # pulled from their buddies before regranting.  A broken
            # buddy chain (buddy also dead) falls back to epoch 0.
            pulls: dict[int, int] = {}
            chain_ok = True
            for d in sorted(self.dead):
                if d not in target.members:
                    continue
                snap = target.snapshots.get(d)
                if snap is not None and snap.local is not None:
                    continue
                buddy = target.buddies.get(d)
                if buddy is None or buddy in self.dead:
                    chain_ok = False
                    break
                pulls[d] = buddy
            if not chain_ok:
                assert self.coord.epoch0 is not None
                target = self.coord.epoch0
            elif pulls:
                for d, buddy in pulls.items():
                    self._send_ctrl(
                        buddy,
                        "ckpt_pull",
                        now,
                        meta={"epoch": target.epoch, "pid": d},
                    )
                self._pending_rollback = {
                    "target": target,
                    "awaiting": set(pulls),
                }
                return
        self._finish_rollback(target, now)

    def _pull_arrived(self, snap: SlaveSnapshot, now: float) -> None:
        pr = self._pending_rollback
        if pr is None:
            return
        target: CheckpointEpoch = pr["target"]
        if snap.epoch != target.epoch or snap.pid not in pr["awaiting"]:
            return  # late reply for a superseded rollback attempt
        target.snapshots[snap.pid] = snap
        pr["awaiting"].discard(snap.pid)
        if not pr["awaiting"]:
            self._pending_rollback = None
            self._finish_rollback(target, now)

    def _pull_failed(self, pid: int, now: float) -> None:
        if self._pending_rollback is None:
            return
        # The buddy no longer holds the deposit: fall back to epoch 0,
        # which every survivor can restore from its local snapshot.
        assert self.coord is not None and self.coord.epoch0 is not None
        self._pending_rollback = None
        self._finish_rollback(self.coord.epoch0, now)

    def _finish_rollback(self, target: CheckpointEpoch, now: float) -> None:
        """Roll the survivors back to ``target`` and repartition every
        dead slave's checkpointed slice among them."""
        assert self.coord is not None
        survivors = [p for p in target.members if p not in self.dead]
        if not survivors:
            raise SlaveLostError(
                f"no surviving slave left to roll back to epoch "
                f"{target.epoch}"
            )
        gone = [p for p in survivors if p in self.released]
        if gone:  # pragma: no cover - releases require a complete gather
            raise SlaveLostError(
                f"epoch {target.epoch} members {gone} already released; "
                "cannot roll them back"
            )
        self.era += 1
        # Survivors recompute from the epoch cut; anything they returned
        # before the rollback is stale (they resend at the new era).
        for p in survivors:
            self.results.pop(p, None)
        self.movement_frozen = True
        # Every move issued after the epoch cut is void; the survivors
        # void the same id range locally, so late acks resolve silently.
        self.resolved_moves.update(
            range(target.next_move_id, self.next_move_id)
        )
        self.in_flight.clear()
        self.dead_moves.clear()
        for p in range(self.n):
            self.pending_orders[p] = []
        self.unacked.clear()
        self.ctrl_outbox.clear()
        dead_sorted = sorted(self.dead)
        grants_by_rcv: dict[int, list[tuple[int, list[int]]]]
        ring: dict[int, tuple[int | None, int | None]] = {}
        if self.plan.shape is LoopShape.PIPELINE:
            assert target.boundaries is not None
            new_boundaries, grants_by_rcv = pipeline_repartition(
                list(target.boundaries), dead_sorted
            )
            self.partition = BlockPartition(new_boundaries)
            for i, p in enumerate(survivors):
                ring[p] = (
                    survivors[i - 1] if i > 0 else None,
                    survivors[i + 1] if i + 1 < len(survivors) else None,
                )
        else:  # REDUCTION_FRONT
            new_owned, grants_by_rcv = reduction_repartition(
                target.cut,
                survivors,
                dead_sorted,
                self.state.filtered_rates(),
            )
            self.partition = IndexPartition(
                [list(new_owned.get(p, [])) for p in range(self.n)]
            )
        # Fresh boundary-exchange generation numbers strictly above any
        # pre-rollback gen (gens only grow by move executions, bounded
        # by the number of moves ever issued).
        self._gen_base += self.next_move_id + 1
        # Progress accounting restarts from the cut.
        self.done_units_accum = 0.0
        self.done_units_by_pid = {}
        for p in survivors:
            rep = self.last_report.get(p)
            if rep is not None:
                rep.done = False
        self.residuals.clear()
        units_restored = 0
        for p in survivors:
            grants = [
                self._rollback_grant(target, d, units)
                for d, units in grants_by_rcv.get(p, [])
            ]
            units_restored += sum(len(g["units"]) for g in grants)
            meta: dict[str, Any] = {
                "epoch": target.epoch,
                "barrier": target.barrier,
                "era": self.era,
                "void_from": target.next_move_id,
                "void_to": self.next_move_id,
                "grants": grants,
            }
            if self.plan.shape is LoopShape.PIPELINE:
                left, right = ring[p]
                meta["gen"] = self._gen_base
                meta["left"] = left
                meta["right"] = right
            else:
                meta["peers"] = list(survivors)
            self._send_ctrl(p, "rollback", now, meta=meta)
        self.log.rollbacks += 1
        self.log.units_restored += units_restored
        if self.obs.enabled:
            self.obs.metrics.counter("ckpt.rollbacks").inc()
            self.obs.metrics.counter("ckpt.units_restored").inc(
                units_restored
            )
            self.obs.emit_counter(
                "ckpt",
                "rollback",
                now,
                float(units_restored),
                meta={
                    "epoch": target.epoch,
                    "dead": dead_sorted,
                    "survivors": list(survivors),
                },
            )

    def _rollback_grant(
        self, target: CheckpointEpoch, dead_pid: int, units: list[int]
    ) -> dict[str, Any]:
        """One grant record: a dead slave's units as of the epoch cut,
        with their data extracted from its checkpointed state (or
        resynthesized from the global inputs for epoch 0)."""
        arr = np.asarray(sorted(int(u) for u in units))
        snap = target.snapshots.get(dead_pid)
        grant: dict[str, Any] = {
            "from": dead_pid,
            "units": [int(u) for u in arr],
        }
        if self.plan.shape is LoopShape.REDUCTION_FRONT:
            if snap is not None:
                grant["completed"] = {
                    int(u): int(snap.completed.get(int(u), 0)) for u in arr
                }
                grant["front_sent"] = {
                    int(u): bool(snap.front_sent.get(int(u), False))
                    for u in arr
                }
            else:
                grant["completed"] = {int(u): 0 for u in arr}
                grant["front_sent"] = {int(u): False for u in arr}
        if not self.exec_num:
            grant["data"] = None
            return grant
        k = self.plan.kernels
        ctx = {
            "shape": (
                "pipeline"
                if self.plan.shape is LoopShape.PIPELINE
                else "reduction_front"
            )
        }
        if snap is not None and snap.local is not None:
            grant["data"] = k.extract_units(snap.local, arr, ctx)
        else:
            cut_units = np.asarray(
                [int(u) for u in target.cut.get(dead_pid, ())]
            )
            local = k.make_local(self.global_state, cut_units)
            grant["data"] = k.extract_units(local, arr, ctx)
        return grant


def _flush_ctrls(m: _Master):
    while m.ctrl_outbox:
        dst, ctrl = m.ctrl_outbox.pop(0)
        yield Send(dst, Tags.CTRL, ctrl, CTRL_BYTES)


def _ft_control_loop(m: _Master, plan: ExecutionPlan):
    """Failure-tolerant master loop: polling, heartbeats, suspicion,
    control retries, and a straggler-tolerant gather."""
    ft = m.ft
    now = yield Now()
    for pid in range(m.n):
        m.last_heard[pid] = now
    all_pids = set(range(m.n))
    while not (m.released | m.dead) >= all_pids:
        yield from _flush_ctrls(m)
        msg = yield Poll()
        now = yield Now()
        if msg is None:
            m.ft_tick(now)
            yield from _flush_ctrls(m)
            yield Sleep(ft.master_tick)
            continue
        if msg.src in m.dead:
            continue  # zombie traffic from a declared-dead slave
        m.note_heard(msg.src, now)
        tag = msg.tag
        if tag == Tags.STATUS:
            report: SlaveReport = msg.payload
            if report.era != m.era:
                # Pre-rollback report: no reply (the restored slave has
                # already reset its outstanding-reply accounting).
                m.ft_tick(now)
                continue
            instr = m.handle_report(report, msg.t_arrived)
            yield Send(report.pid, Tags.INSTR, instr, INSTR_BYTES)
        elif tag == Tags.HB:
            pass  # silence probe: note_heard above is the whole point
        elif tag == Tags.CTRL_ACK:
            m.handle_ctrl_ack(msg.payload, now)
        elif tag == Tags.CKPT:
            m.handle_ckpt_message(msg, now)
        elif tag.startswith("conv.res."):
            rep = int(tag.rsplit(".", 1)[1])
            raw = msg.payload
            if isinstance(raw, dict):
                if int(raw.get("era", 0)) != m.era:
                    m.ft_tick(now)
                    continue  # pre-rollback residual
                val = float(raw["res"])
            else:
                val = float(raw)
            bucket = m.residuals.setdefault(rep, {})
            bucket[msg.src] = val
            live = {
                p
                for p in range(m.n)
                if p not in m.dead and p not in m.released
            }
            if live and live <= set(bucket):
                global_residual = max(bucket.values())
                del m.residuals[rep]
                go = rep + 1 < plan.reps and (
                    plan.convergence_tol is None
                    or global_residual > plan.convergence_tol
                )
                for pid in sorted(live):
                    yield Send(pid, Tags.cont(rep + 1), bool(go), 16)
        elif tag == Tags.RESULT:
            if (
                msg.src not in m.dead
                and int(msg.payload.get("era", 0)) == m.era
            ):
                m.results[msg.src] = msg.payload
        else:  # pragma: no cover - no other tags target the master
            raise ProtocolError(f"master received unexpected message {tag}")
        m.ft_tick(now)
    # Gather: released slaves no longer heartbeat, so silence here is
    # bounded by an overall progress timeout instead of the silence scan.
    yield from _flush_ctrls(m)
    last_progress = yield Now()
    while True:
        missing = [
            p for p in range(m.n) if p not in m.results and p not in m.dead
        ]
        if not missing:
            break
        msg = yield Poll()
        now = yield Now()
        if msg is None:
            if now - last_progress > ft.dead_after:
                raise SlaveLostError(
                    f"released slaves {missing} never returned results"
                )
            yield Sleep(ft.master_tick)
            continue
        if (
            msg.tag == Tags.RESULT
            and msg.src not in m.dead
            and int(msg.payload.get("era", 0)) == m.era
        ):
            m.results[msg.src] = msg.payload
            last_progress = now
        elif msg.tag == Tags.CTRL_ACK:
            m.handle_ctrl_ack(msg.payload, now)
        # anything else (late heartbeats, zombie traffic) is ignored


def master_task(
    ctx: TaskContext,
    plan: ExecutionPlan,
    run_cfg: RunConfig,
    log: MasterLog,
    recorder: Recorder | None,
    global_state: Any,
    partition: BlockPartition | IndexPartition,
    block_size: int | None,
    result_sink: dict,
):
    """Simulator task body for the central load balancer.

    ``recorder`` is the observability sink for rate samples, balancer
    decisions, and move round-trips; ``None`` falls back to the
    cluster's recorder (disabled by default).
    """
    m = _Master(
        ctx, plan, run_cfg, log, recorder, global_state, partition, block_size
    )
    kernels = plan.kernels
    exec_num = run_cfg.execute_numerics and global_state is not None

    # Initial hook skip: measuring over less than ~5 quanta makes rates
    # oscillate with context switching (Section 4.3), so slaves skip
    # enough hooks that their first measurement already spans the floor
    # period, assuming dedicated-speed execution.
    from .frequency import hooks_to_skip

    mid_unit = (plan.unit_lo + plan.n_units) // 2
    est_rate = run_cfg.cluster.processor.speed / max(
        plan.unit_cost(0, mid_unit), 1.0
    )
    floor_period = max(
        run_cfg.balancer.min_period,
        run_cfg.balancer.quantum_multiple * run_cfg.cluster.processor.quantum,
    )
    uph = m._units_per_hook()

    # Initial scatter: each slave gets its units plus the data they own.
    for pid in range(m.n):
        units = m.partition.owned(pid)
        payload: dict[str, Any] = {"units": tuple(int(u) for u in units)}
        if exec_num:
            payload["local"] = kernels.make_local(global_state, np.asarray(units))
        if block_size is not None:
            payload["block_size"] = block_size
        payload["skip"] = hooks_to_skip(floor_period, est_rate, uph[pid])
        nbytes = (
            kernels.input_bytes(len(units)) if exec_num else 64 * max(1, len(units))
        )
        yield Send(pid, Tags.INIT, payload, nbytes)

    # Control loop: serve reports (and, for WHILE-repetition plans, the
    # convergence barrier of Section 4.1) until every slave is released.
    # The failure-tolerant variant polls instead of blocking so it can
    # run the silence scan and control retries between messages.
    if run_cfg.ft.enabled:
        yield from _ft_control_loop(m, plan)
    else:
        residuals: dict[int, list[float]] = {}
        while len(m.released) < m.n:
            msg = yield Recv()
            tag = msg.tag
            if tag == Tags.STATUS:
                report: SlaveReport = msg.payload
                instr = m.handle_report(report, msg.t_arrived)
                yield Send(report.pid, Tags.INSTR, instr, INSTR_BYTES)
            elif tag.startswith("conv.res."):
                # The master mirrors the slaves' WHILE loop: it reduces
                # the residuals of repetition ``rep`` and broadcasts the
                # loop condition's verdict before anyone starts ``rep+1``.
                rep = int(tag.rsplit(".", 1)[1])
                raw = msg.payload
                val = (
                    float(raw["res"]) if isinstance(raw, dict) else float(raw)
                )
                residuals.setdefault(rep, []).append(val)
                if len(residuals[rep]) == m.n:
                    global_residual = max(residuals.pop(rep))
                    go = rep + 1 < plan.reps and (
                        plan.convergence_tol is None
                        or global_residual > plan.convergence_tol
                    )
                    for pid in range(m.n):
                        yield Send(pid, Tags.cont(rep + 1), bool(go), 16)
            elif tag == Tags.RESULT:
                m.results[msg.src] = msg.payload
            else:  # pragma: no cover - no other tags target the master
                raise ProtocolError(
                    f"master received unexpected message {tag}"
                )

        while len(m.results) < m.n:
            msg = yield Recv(tag=Tags.RESULT)
            m.results[msg.src] = msg.payload

    # Completeness check: every unit exactly once across slave results.
    seen: dict[int, int] = {}
    for pid, res in m.results.items():
        for u in res["units"]:
            if u in seen:
                raise ProtocolError(f"unit {u} owned by {seen[u]} and {pid}")
            seen[u] = pid
    if len(seen) != plan.unit_count:
        raise ProtocolError(
            f"gather incomplete: {len(seen)}/{plan.unit_count} units returned"
        )
    log.merged_units = len(seen)
    log.final_partition_counts = m._counts()
    if exec_num:
        parts = {
            pid: res["data"]
            for pid, res in m.results.items()
            if res["data"] is not None
        }
        units_by_pid = {pid: np.asarray(res["units"]) for pid, res in m.results.items()}
        log.result = kernels.merge_results(
            global_state,
            {pid: (units_by_pid[pid], parts.get(pid)) for pid in m.results},
        )
    result_sink["log"] = log
