"""Central load balancer (master) process.

The master mirrors the slaves' load-balancing phase structure
(Section 4.1): every slave status report gets exactly one instruction
reply, computed from the most recent information (synchronous slaves
block on the reply; pipelined slaves pick it up one hook later,
Section 3.3).  Movement rounds are issued at most one at a time; the
partition bookkeeping advances only when every involved slave has
acknowledged (or cancelled) its side, so master and slaves can never
disagree about ownership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..compiler.plan import ExecutionPlan, LoopShape
from ..config import RunConfig
from ..errors import ProtocolError
from ..obs import NULL_RECORDER, Recorder
from ..sim import Recv, Send, TaskContext
from .balancer import BalancerDecision, BalancerState, decide
from .partition import BlockPartition, IndexPartition, Transfer
from .protocol import INSTR_BYTES, Instructions, MoveOrder, SlaveReport, Tags

__all__ = ["master_task", "MasterLog"]


@dataclass
class _InFlightMove:
    order: MoveOrder
    acked: set[int] = field(default_factory=set)
    canceled: bool = False
    issued_at: float = 0.0

    def involved(self) -> tuple[int, int]:
        return self.order.transfer.src, self.order.transfer.dst

    def complete(self) -> bool:
        return self.acked >= set(self.involved())


@dataclass
class MasterLog:
    """Everything the master learned during a run (for experiments)."""

    decisions: list[BalancerDecision] = field(default_factory=list)
    moves_issued: int = 0
    moves_applied: int = 0
    moves_canceled: int = 0
    units_moved: int = 0
    reports_received: int = 0
    final_partition_counts: list[int] = field(default_factory=list)
    result: Any = None
    merged_units: int = 0


class _Master:
    def __init__(
        self,
        ctx: TaskContext,
        plan: ExecutionPlan,
        run_cfg: RunConfig,
        log: MasterLog,
        recorder: Recorder | None,
        global_state: Any,
        partition: BlockPartition | IndexPartition,
        block_size: int | None,
    ):
        self.ctx = ctx
        self.plan = plan
        self.cfg = run_cfg
        self.log = log
        self.obs = (
            recorder
            if recorder is not None
            else getattr(ctx, "obs", NULL_RECORDER)
        )
        self.global_state = global_state
        self.partition = partition
        self.block_size = block_size
        self.n = ctx.n_slaves
        self.state = BalancerState(
            n_slaves=self.n,
            config=run_cfg.balancer,
            unit_bytes=plan.movement.unit_bytes,
            network=run_cfg.cluster.network,
            quantum=run_cfg.cluster.processor.quantum,
        )
        self.last_report: dict[int, SlaveReport] = {}
        self.pending_orders: dict[int, list[MoveOrder]] = {p: [] for p in range(self.n)}
        self.in_flight: dict[int, _InFlightMove] = {}
        self.next_move_id = 0
        self.done_units_accum = 0.0
        self.total_work_units = self._total_work_units()
        self.last_move_issue_time = -1.0e9
        self.released: set[int] = set()
        self.results: dict[int, Any] = {}

    # ------------------------------------------------------------------

    def _total_work_units(self) -> float:
        plan = self.plan
        if plan.shape is LoopShape.REDUCTION_FRONT:
            total = 0.0
            for rep in range(plan.reps):
                lo, hi = plan.domain(rep)
                total += max(0, hi - lo)
            return total
        return float(plan.unit_count * plan.reps)

    def _units_per_hook(self) -> dict[int, float]:
        counts = self._counts()
        if self.plan.shape is LoopShape.PARALLEL_MAP:
            return {p: 1.0 for p in range(self.n)}
        if self.plan.shape is LoopShape.PIPELINE:
            bs = self.block_size or 1
            total = self.plan.strip.total
            return {
                p: max(counts[p] * bs / total, 1e-9) for p in range(self.n)
            }
        # REDUCTION_FRONT: one hook per repetition covering the active set.
        return {p: max(float(counts[p]), 1.0) for p in range(self.n)}

    def _counts(self) -> list[int]:
        if isinstance(self.partition, BlockPartition):
            return self.partition.counts()
        return self.partition.counts(self._active_predicate())

    def _remaining_sets(self) -> dict[int, tuple[int, ...]] | None:
        """Per-slave remaining-work unit ids (PARALLEL_MAP tail phase).

        In steady state the paper's ownership-proportional balancing is
        used (remaining counts snapshotted at different report times
        would inject progress-position noise).  Once some slave runs dry
        while others still hold work, ownership no longer reflects load,
        so the tail balances explicit remaining-work sets — built from
        slave reports, intersected with current ownership so a stale
        report cannot name a unit that has since moved."""
        if self.plan.shape is not LoopShape.PARALLEL_MAP:
            return None
        sets: dict[int, tuple[int, ...]] = {}
        for p in range(self.n):
            owned = set(int(u) for u in self.partition.owned(p))
            rep = self.last_report.get(p)
            if rep is None or rep.remaining_units is None:
                sets[p] = tuple(sorted(owned))
            else:
                sets[p] = tuple(sorted(owned & set(rep.remaining_units)))
        lens = [len(s) for s in sets.values()]
        if min(lens) > 0 or max(lens) == 0:
            return None  # steady state (or fully done): ownership rules
        return sets

    def _active_predicate(self) -> Callable[[int], bool] | None:
        if self.plan.shape is not LoopShape.REDUCTION_FRONT:
            return None
        rep_of: dict[int, int] = {}
        for p in range(self.n):
            rep = self.last_report[p].rep if p in self.last_report else 0
            for u in self.partition.owned(p):
                rep_of[int(u)] = rep
        # A margin of one repetition protects against report staleness.
        return lambda u: u > rep_of.get(u, 0) + 1

    # ------------------------------------------------------------------
    # Movement round bookkeeping
    # ------------------------------------------------------------------

    def _issue_transfers(self, transfers: list[Transfer], now: float) -> None:
        for t in transfers:
            order = MoveOrder(move_id=self.next_move_id, transfer=t)
            self.next_move_id += 1
            self.in_flight[order.move_id] = _InFlightMove(order, issued_at=now)
            self.pending_orders[t.src].append(order)
            self.pending_orders[t.dst].append(order)
            self.log.moves_issued += 1
        self.last_move_issue_time = now
        if self.obs.enabled and transfers:
            self.obs.metrics.counter("lb.moves_issued").inc(len(transfers))
            self.obs.emit_counter(
                "lb",
                "redistribute",
                now,
                float(sum(t.count for t in transfers)),
                meta={"transfers": [[t.src, t.dst, t.count] for t in transfers]},
            )

    def _process_acks(self, report: SlaveReport, now: float = 0.0) -> None:
        for mid in report.applied_moves:
            fl = self.in_flight.get(mid)
            if fl is None:
                raise ProtocolError(f"ack for unknown move {mid}")
            fl.acked.add(report.pid)
        for mid in report.canceled_moves:
            fl = self.in_flight.get(mid)
            if fl is None:
                raise ProtocolError(f"cancel for unknown move {mid}")
            fl.acked.add(report.pid)
            fl.canceled = True
        # Close out completed moves, applying ownership changes.
        for mid in [m for m, fl in self.in_flight.items() if fl.complete()]:
            fl = self.in_flight.pop(mid)
            if fl.canceled:
                self.log.moves_canceled += 1
            else:
                self.partition = self.partition.apply([fl.order.transfer])
                self.log.moves_applied += 1
                self.log.units_moved += fl.order.transfer.count
            if self.obs.enabled:
                tr = fl.order.transfer
                self.obs.emit_span(
                    "lb",
                    "move",
                    fl.issued_at,
                    now,
                    value=float(tr.count),
                    meta={
                        "move_id": mid,
                        "src": tr.src,
                        "dst": tr.dst,
                        "canceled": fl.canceled,
                    },
                )
                if not fl.canceled:
                    self.obs.metrics.counter("lb.units_migrated").inc(tr.count)
                    self.obs.metrics.histogram("lb.balance_latency_s").observe(
                        now - fl.issued_at
                    )

    def _movement_allowed(self, now: float) -> bool:
        if self.in_flight:
            return False
        if any(self.pending_orders[p] for p in range(self.n)):
            return False
        period = self.state.config.min_period
        return (now - self.last_move_issue_time) >= period

    # ------------------------------------------------------------------
    # Per-report handling
    # ------------------------------------------------------------------

    def handle_report(self, report: SlaveReport, now: float) -> Instructions:
        self.log.reports_received += 1
        self.last_report[report.pid] = report
        self.done_units_accum += report.units_done
        raw = report.rate
        self.state.observe(report)
        self._process_acks(report, now)

        if self.obs.enabled:
            self.obs.metrics.counter("lb.reports").inc()
            self.obs.emit_counter(
                "lb",
                "report",
                now,
                float(report.units_done),
                pid=report.pid,
                meta={"done": report.done, "seq": report.seq},
            )
            if raw is not None:
                self.obs.emit_counter("rate", "raw_rate", now, raw, pid=report.pid)
            filt = self.state.filters[report.pid].value
            if filt is not None:
                self.obs.emit_counter(
                    "rate", "adjusted_rate", now, filt, pid=report.pid
                )

        remaining = max(0.0, self.total_work_units - self.done_units_accum)
        allow = (
            self.cfg.dlb_enabled
            and self._movement_allowed(now)
            and remaining > 0
        )
        decision = decide(
            self.state,
            self.partition,
            self._units_per_hook(),
            remaining_units=remaining,
            active=self._active_predicate(),
            allow_movement=allow,
            remaining_sets=self._remaining_sets(),
        )
        self.log.decisions.append(decision)
        if self.obs.enabled:
            self.obs.metrics.counter("lb.decisions").inc()
            if decision.cancelled is not None:
                self.obs.metrics.counter(
                    f"lb.cancelled.{decision.cancelled}"
                ).inc()
            self.obs.emit_counter(
                "lb",
                "improvement",
                now,
                decision.improvement,
                meta={
                    "cancelled": decision.cancelled,
                    "share_deviation": decision.share_deviation,
                    "period": decision.period,
                },
            )
        if decision.transfers:
            # Released slaves no longer read instructions; a transfer
            # touching one could never be delivered and its units would
            # vanish from the gather.
            usable = [
                t
                for t in decision.transfers
                if t.src not in self.released and t.dst not in self.released
            ]
            if usable:
                self._issue_transfers(usable, now)

        if self.obs.enabled:
            counts = self._counts()
            for p in range(self.n):
                self.obs.emit_counter("lb", "work", now, float(counts[p]), pid=p)

        sends = tuple(
            o
            for o in self.pending_orders[report.pid]
            if o.transfer.src == report.pid
        )
        recvs = tuple(
            o
            for o in self.pending_orders[report.pid]
            if o.transfer.dst == report.pid
        )
        self.pending_orders[report.pid] = []

        if report.done and not sends and not recvs:
            involved = any(
                report.pid in fl.involved() and report.pid not in fl.acked
                for fl in self.in_flight.values()
            )
            if not involved:
                self.released.add(report.pid)
                return Instructions(
                    phase=decision.phase, release=True, note="release"
                )
        return Instructions(
            phase=decision.phase,
            skip_hooks=decision.skip_hooks.get(report.pid, 1),
            sends=sends,
            recvs=recvs,
        )


def master_task(
    ctx: TaskContext,
    plan: ExecutionPlan,
    run_cfg: RunConfig,
    log: MasterLog,
    recorder: Recorder | None,
    global_state: Any,
    partition: BlockPartition | IndexPartition,
    block_size: int | None,
    result_sink: dict,
):
    """Simulator task body for the central load balancer.

    ``recorder`` is the observability sink for rate samples, balancer
    decisions, and move round-trips; ``None`` falls back to the
    cluster's recorder (disabled by default).
    """
    m = _Master(
        ctx, plan, run_cfg, log, recorder, global_state, partition, block_size
    )
    kernels = plan.kernels
    exec_num = run_cfg.execute_numerics and global_state is not None

    # Initial hook skip: measuring over less than ~5 quanta makes rates
    # oscillate with context switching (Section 4.3), so slaves skip
    # enough hooks that their first measurement already spans the floor
    # period, assuming dedicated-speed execution.
    from .frequency import hooks_to_skip

    mid_unit = (plan.unit_lo + plan.n_units) // 2
    est_rate = run_cfg.cluster.processor.speed / max(
        plan.unit_cost(0, mid_unit), 1.0
    )
    floor_period = max(
        run_cfg.balancer.min_period,
        run_cfg.balancer.quantum_multiple * run_cfg.cluster.processor.quantum,
    )
    uph = m._units_per_hook()

    # Initial scatter: each slave gets its units plus the data they own.
    for pid in range(m.n):
        units = m.partition.owned(pid)
        payload: dict[str, Any] = {"units": tuple(int(u) for u in units)}
        if exec_num:
            payload["local"] = kernels.make_local(global_state, np.asarray(units))
        if block_size is not None:
            payload["block_size"] = block_size
        payload["skip"] = hooks_to_skip(floor_period, est_rate, uph[pid])
        nbytes = kernels.input_bytes(len(units)) if exec_num else 64 * max(1, len(units))
        yield Send(pid, Tags.INIT, payload, nbytes)

    # Control loop: serve reports (and, for WHILE-repetition plans, the
    # convergence barrier of Section 4.1) until every slave is released.
    residuals: dict[int, list[float]] = {}
    while len(m.released) < m.n:
        msg = yield Recv()
        tag = msg.tag
        if tag == Tags.STATUS:
            report: SlaveReport = msg.payload
            instr = m.handle_report(report, msg.t_arrived)
            yield Send(report.pid, Tags.INSTR, instr, INSTR_BYTES)
        elif tag.startswith("conv.res."):
            # The master mirrors the slaves' WHILE loop: it reduces the
            # residuals of repetition ``rep`` and broadcasts the loop
            # condition's verdict before anyone starts ``rep + 1``.
            rep = int(tag.rsplit(".", 1)[1])
            residuals.setdefault(rep, []).append(float(msg.payload))
            if len(residuals[rep]) == m.n:
                global_residual = max(residuals.pop(rep))
                go = rep + 1 < plan.reps and (
                    plan.convergence_tol is None
                    or global_residual > plan.convergence_tol
                )
                for pid in range(m.n):
                    yield Send(pid, Tags.cont(rep + 1), bool(go), 16)
        elif tag == Tags.RESULT:
            m.results[msg.src] = msg.payload
        else:  # pragma: no cover - no other tags target the master
            raise ProtocolError(f"master received unexpected message {tag}")

    while len(m.results) < m.n:
        msg = yield Recv(tag=Tags.RESULT)
        m.results[msg.src] = msg.payload

    # Completeness check: every unit exactly once across slave results.
    seen: dict[int, int] = {}
    for pid, res in m.results.items():
        for u in res["units"]:
            if u in seen:
                raise ProtocolError(f"unit {u} owned by {seen[u]} and {pid}")
            seen[u] = pid
    if len(seen) != plan.unit_count:
        raise ProtocolError(
            f"gather incomplete: {len(seen)}/{plan.unit_count} units returned"
        )
    log.merged_units = len(seen)
    log.final_partition_counts = m._counts()
    if exec_num:
        parts = {pid: res["data"] for pid, res in m.results.items() if res["data"] is not None}
        units_by_pid = {pid: np.asarray(res["units"]) for pid, res in m.results.items()}
        log.result = kernels.merge_results(
            global_state, {pid: (units_by_pid[pid], parts.get(pid)) for pid in m.results}
        )
    result_sink["log"] = log
