"""Pipeline-shape slave (SOR): strip-mined wavefront with mid-sweep
work movement.

Execution follows the paper's Figure 3c: at each sweep the slave first
exchanges the sweep-start halo (its first owned column's *old* values go
to the left neighbour; the right neighbour's arrive as the right halo),
then processes row strips in order, receiving the left neighbour's
updated boundary column per strip and sending its own last column right.

Work movement (Section 4.5) is *restricted* to adjacent slaves and may
happen mid-sweep:

- Columns moved rightward arrive one or more strips AHEAD of the
  receiver and are **set aside** until the local iterations catch up,
  at which point they merge seamlessly (their values are already final
  for all earlier strips).
- Columns moved leftward arrive BEHIND and are **caught up**: the
  receiver recomputes them over the missed strips using its own last
  column as the left halo and an old-value snapshot shipped in the
  payload as the right halo, then re-sends refreshed boundary values to
  the sender.

Boundary messages carry a per-neighbour *generation* number that both
sides bump at their movement application point, so stale boundary values
sent before a movement can never be confused with post-movement ones.
A movement whose sender is already in the final sweep is cancelled
(both sides report the cancellation), because a receiver that finished
the application could no longer reconstruct the halo history needed for
catch-up.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..ckpt import SlaveSnapshot
from ..errors import MovementError, ProtocolError
from ..sim import Now, Poll, Recv, Send, Sleep
from .movement import MovePayload
from .protocol import Instructions, MoveOrder, Tags
from .slave import SlaveCore

__all__ = ["PipelineSlave"]


class PipelineSlave(SlaveCore):
    """Interpreter for loop-carried-dependence pipelines."""

    def __init__(self, ctx, plan, run_cfg, init):
        super().__init__(ctx, plan, run_cfg, init)
        if plan.strip is None:
            raise ProtocolError("pipeline plan without strip spec")
        # Per-run resolved strip: the startup-sized block depends on the
        # cluster (Section 4.4), so the shared plan is never mutated.
        from ..compiler.plan import StripSpec

        self.strip = StripSpec(
            loop_var=plan.strip.loop_var,
            total=plan.strip.total,
            block_size=int(init["block_size"]),
        )
        self.nb = self.strip.n_blocks()
        self.total_rows = self.strip.total
        # Generation counters, one per neighbour pair (see module doc).
        self.gen_left = 0
        self.gen_right = 0
        # Out-of-order neighbour messages (future-gen boundaries, halos).
        self.stash: dict[str, Any] = {}
        # A rightward-moved payload waiting for local iterations to catch
        # up (at most one; the master keeps one movement round in flight).
        self.set_aside: tuple[MoveOrder, MovePayload] | None = None
        # Data-dependent WHILE termination (Section 4.1): set when the
        # master's reduced residual satisfies the exit condition.
        self.stopped = False
        # Sweeps whose right-halo receive must be skipped: after giving
        # away our rightmost columns exactly at a sweep boundary, the
        # retained (stale) copy of the moved leftmost column IS the
        # old-value halo for the next sweep, and the receiver may not
        # have merged (and bumped generations) before sending its halo.
        self.skip_halo_recv: set[int] = set()
        # Pipeline ring neighbours.  Initially adjacency in pid order;
        # a checkpoint rollback re-links the ring around dead slaves.
        self.left_pid: int | None = self.pid - 1 if self.pid > 0 else None
        self.right_pid: int | None = (
            self.pid + 1 if self.pid < ctx.n_slaves - 1 else None
        )

    # ------------------------------------------------------------------
    # Position helpers
    # ------------------------------------------------------------------

    def _lin(self, rep: int, block: int) -> int:
        return rep * self.nb + block

    def _lin_next(self) -> int:
        """Linear index of the next strip to process."""
        return self._lin(self.rep, self.block)

    def work_remaining(self) -> bool:
        return self.rep < self.plan.reps and not self.stopped

    # ------------------------------------------------------------------
    # Main sweep loop
    # ------------------------------------------------------------------

    def work_loop(self) -> Generator[Any, Any, None]:
        plan = self.plan
        k = self.kernels()
        while self.rep < plan.reps and not self.stopped:
            rep = self.rep
            if self.block == 0:
                if self.ft.enabled and self.ckpt.enabled:
                    # Top of sweep: the checkpoint barrier point.  The
                    # neighbour waits below only poll controls while
                    # blocked, so guarantee one poll (and a deposit of a
                    # pending snapshot) even on a fast path.
                    yield from self._poll_ctrl()
                if plan.dynamic_reps:
                    # Deferred movement executes at the sweep boundary,
                    # after the convergence barrier: every element's
                    # update is then counted in exactly one slave's
                    # residual (no mid-sweep catch-up can slip between a
                    # residual report and the WHILE test).
                    yield from self._execute_send_orders()
                yield from self._sweep_start(rep)
            while self.block < self.nb:
                yield from self._merge_set_aside_if_due()
                b = self.block
                rows = self.strip.block_range(b)
                left_halo = None
                if self.left_pid is not None:
                    msg = yield from self._recv_neighbor(
                        self.left_pid,
                        lambda r=rep, b=b: Tags.boundary(r, b, self.gen_left),
                    )
                    left_halo = msg.payload
                n_rows = rows[1] - rows[0]
                frac = n_rows / self.total_rows
                ops = plan.units_cost(rep, self.owned) * frac
                holder: dict[str, Any] = {}

                def _do(rows=rows, left_halo=left_halo, rep=rep):
                    holder["bnd"] = k.run_block(self.local, rep, rows, left_halo)

                dt = yield from self.compute(ops, fn=_do)
                self.note_access(dt, self.owned, rep)
                if self.right_pid is not None:
                    yield Send(
                        self.right_pid,
                        Tags.boundary(rep, b, self.gen_right),
                        holder.get("bnd"),
                        k.boundary_bytes(n_rows) if self.exec_num else 8 * n_rows,
                    )
                self.count_units(len(self.owned) * frac)
                self.block += 1
                yield from self.lb_hook()
                yield from self._poll_moves()
            yield from self._merge_set_aside_if_due()
            if plan.dynamic_reps:
                yield from self._convergence_barrier(rep)
            self.rep += 1
            self.block = 0

    def _convergence_barrier(self, rep: int) -> Generator[Any, Any, None]:
        """End-of-sweep WHILE-condition test (Section 4.1).

        The slave reports its local residual; the master reduces all
        slaves' residuals, evaluates the loop condition, and broadcasts
        continue/stop before anyone enters the next sweep.  Cost-only
        simulations report an infinite residual (the condition cannot be
        evaluated without numerics), so they run the full trip-count cap.
        """
        k = self.kernels()
        res = k.sweep_residual(self.local, rep) if self.exec_num else float("inf")
        # With checkpointing the residual carries the rollback era, so
        # the master can discard stale pre-rollback values computed over
        # a partition that no longer exists.
        payload: Any = {"era": self.era, "res": res} if self.ckpt.enabled else res
        yield Send(self.master, Tags.residual(rep), payload, 16)
        msg = yield from self._recv_ft(src=self.master, tag=Tags.cont(rep + 1))
        if not msg.payload:
            self.stopped = True

    def _sweep_start(self, rep: int) -> Generator[Any, Any, None]:
        """Sweep-start halo exchange (the paper's communication outside
        the distributed loop), move-aware so a movement applied at the
        tail of the previous sweep merges before halo generations are
        compared."""
        yield from self._poll_moves()
        yield from self._merge_set_aside_if_due()
        k = self.kernels()
        if self.left_pid is not None:
            payload = k.sweep_first_boundary(self.local, rep) if self.exec_num else None
            yield Send(
                self.left_pid,
                Tags.halo(rep, self.gen_left),
                payload,
                (
                    k.boundary_bytes(self.total_rows)
                    if self.exec_num
                    else 8 * self.total_rows
                ),
            )
        if self.right_pid is not None:
            if rep in self.skip_halo_recv:
                # Our grid still holds the moved-away leftmost column's
                # values from the previous sweep — exactly the old-value
                # halo this sweep needs.  The neighbour's halo message
                # (whatever its generation) is intentionally left unread.
                self.skip_halo_recv.discard(rep)
            else:
                msg = yield from self._recv_neighbor(
                    self.right_pid, lambda r=rep: Tags.halo(r, self.gen_right)
                )
                if self.exec_num:
                    k.set_right_halo(self.local, rep, msg.payload)

    # ------------------------------------------------------------------
    # Neighbour receive with move/generation awareness
    # ------------------------------------------------------------------

    def _recv_neighbor(self, src: int, expected_fn) -> Generator[Any, Any, Any]:
        """Receive the message currently expected from a neighbour.

        Any other message that arrives meanwhile is dispatched: movement
        payloads are handled (possibly merging work and bumping the
        expected generation, which is why ``expected_fn`` is re-evaluated
        each time), everything else is stashed for later."""
        tick = self.ft.wait_tick / 16
        while True:
            tag = expected_fn()
            if tag in self.stash:
                return self.stash.pop(tag)
            if self.ft.enabled:
                # Poll instead of blocking so recovery controls (and
                # checkpoint chores) are served while the neighbour is
                # slow — or dead.  Exponential backoff keeps the common
                # almost-here wait fine-grained without busy-polling an
                # absent (possibly dead) neighbour.
                msg = yield Poll(src=src)
                if msg is None:
                    yield from self._poll_ctrl()
                    yield from self._maybe_heartbeat()
                    yield Sleep(tick)
                    tick = min(tick * 2, self.ft.wait_tick)
                    continue
            else:
                msg = yield Recv(src=src)
            if msg.tag == tag:
                return msg
            if msg.tag.startswith("lb.move."):
                yield from self._handle_move_message(msg)
            elif msg.tag == Tags.CKPT:
                # Buddy placement: the neighbour may also be our ward.
                self._store_buddy_deposit(msg.payload)
            else:
                self.stash[msg.tag] = msg

    # ------------------------------------------------------------------
    # Movement: sending side
    # ------------------------------------------------------------------

    def execute_moves(self) -> Generator[Any, Any, None]:
        if self.plan.dynamic_reps and self.block != 0 and self.work_remaining():
            # Mid-sweep sends are deferred to the next sweep boundary on
            # dynamic-reps plans (see _convergence_barrier).
            yield from self._poll_moves()
            return
        yield from self._execute_send_orders()
        yield from self._poll_moves()

    def _execute_send_orders(self) -> Generator[Any, Any, None]:
        k = self.kernels()
        for order in self.ledger.take_sends():
            units = order.transfer.units
            for u in units:
                if u not in self.owned:
                    raise MovementError(f"slave {self.pid} told to send unowned {u}")
            to_right = order.transfer.dst == self.pid + 1
            if not to_right and order.transfer.dst != self.pid - 1:
                raise MovementError("pipeline movement must be adjacent")
            final_sweep = self.rep >= self.plan.reps - 1 and self.block > 0
            completed_all = self.rep >= self.plan.reps or self.stopped
            if final_sweep or completed_all:
                # Mid-final-sweep movement cannot pay off and the receiver
                # could not catch up past the end; cancel cooperatively.
                payload = MovePayload(order.move_id, units, None, {"canceled": True})
                yield Send(
                    order.transfer.dst, Tags.move(order.move_id), payload, 64
                )
                self.ledger.mark_canceled(order.move_id)
                continue
            t0 = yield Now()
            # Pack is consistent through the last completed strip.
            through = self._lin_next() - 1
            rep_s, block_s = divmod(through, self.nb) if through >= 0 else (-1, -1)
            ctx = {
                "shape": "pipeline",
                "rep": rep_s,
                "through_block": block_s,
                "direction": "to_right" if to_right else "to_left",
            }
            data = (
                k.pack_units(self.local, np.asarray(units), ctx)
                if self.exec_num
                else None
            )
            meta = {"through_lin": through, "canceled": False}
            for u in units:
                self.owned.remove(u)
            if to_right:
                self.gen_right += 1
                if block_s == self.nb - 1:
                    self.skip_halo_recv.add(rep_s + 1)
            else:
                self.gen_left += 1
            payload = MovePayload(order.move_id, units, data, meta)
            yield Send(
                order.transfer.dst,
                Tags.move(order.move_id),
                payload,
                nbytes=order.transfer.count * self.plan.movement.unit_bytes,
            )
            t1 = yield Now()
            self.ledger.record_cost(t1 - t0, order.transfer.count)
            self.ledger.mark_sent(order.move_id)
            self.note_move("send", t0, t1, order)

    # ------------------------------------------------------------------
    # Movement: receiving side
    # ------------------------------------------------------------------

    def _poll_moves(self) -> Generator[Any, Any, None]:
        for order in self.ledger.pending_recvs():
            msg = yield Poll(src=order.transfer.src, tag=Tags.move(order.move_id))
            if msg is not None:
                yield from self._accept_move(order, msg.payload)

    def _handle_move_message(self, msg) -> Generator[Any, Any, None]:
        if self.ledger.is_voided(msg.payload.move_id):
            return  # stale pre-rollback movement payload
        order = next(
            (
                o
                for o in self.ledger.pending_recvs()
                if Tags.move(o.move_id) == msg.tag
            ),
            None,
        )
        if order is None:
            # The payload outran the master's movement order (which we
            # only read at hooks, and we may be blocked on a neighbour).
            # The payload itself carries units and phase, so synthesize
            # the order and apply now; the ledger drops the late order.
            payload: MovePayload = msg.payload
            from .partition import Transfer

            order = MoveOrder(
                move_id=payload.move_id,
                transfer=Transfer(
                    src=msg.src, dst=self.pid, units=tuple(payload.units)
                ),
            )
        yield from self._accept_move(order, msg.payload)

    def _accept_move(
        self, order: MoveOrder, payload: MovePayload
    ) -> Generator[Any, Any, None]:
        if payload.meta.get("canceled"):
            self.ledger.mark_canceled(order.move_id)
            return
        from_left = order.transfer.src == self.pid - 1
        if not from_left and order.transfer.src != self.pid + 1:
            raise MovementError("pipeline movement must be adjacent")
        through = payload.meta["through_lin"]
        completed = self._lin_next() - 1
        if from_left:
            # Sender is ahead or equal: set aside until we reach it.
            if through < completed:
                raise MovementError(
                    f"rightward move behind receiver: {through} < {completed}"
                )
            if self.set_aside is not None:
                raise MovementError("second rightward move while one is set aside")
            self.set_aside = (order, payload)
            yield from self._merge_set_aside_if_due()
        else:
            # Sender is behind or equal: merge now with catch-up.
            if through > completed:
                raise MovementError(
                    f"leftward move ahead of receiver: {through} > {completed}"
                )
            yield from self._merge_from_right(order, payload, through, completed)

    def _merge_set_aside_if_due(self) -> Generator[Any, Any, None]:
        if self.set_aside is None:
            return
        order, payload = self.set_aside
        through = payload.meta["through_lin"]
        completed = self._lin_next() - 1
        if through != completed:
            return
        self.set_aside = None
        t0 = yield Now()
        k = self.kernels()
        units = payload.units
        rep_s, block_s = divmod(through, self.nb) if through >= 0 else (-1, -1)
        if self.exec_num:
            k.unpack_units(
                self.local,
                np.asarray(units),
                payload.data,
                {
                    "shape": "pipeline",
                    "rep": rep_s,
                    "through_block": block_s,
                    "direction": "from_left",
                },
            )
        self.owned = sorted(set(self.owned) | set(units))
        self.gen_left += 1
        t1 = yield Now()
        self.ledger.record_cost(t1 - t0, order.transfer.count)
        self.ledger.complete_recv(order.move_id)
        self.note_move("recv", t0, t1, order)

    def _merge_from_right(
        self, order: MoveOrder, payload: MovePayload, through: int, completed: int
    ) -> Generator[Any, Any, None]:
        t0 = yield Now()
        k = self.kernels()
        units = payload.units
        rep_s, block_s = divmod(through, self.nb) if through >= 0 else (-1, -1)
        if self.exec_num:
            k.unpack_units(
                self.local,
                np.asarray(units),
                payload.data,
                {
                    "shape": "pipeline",
                    "rep": rep_s,
                    "through_block": block_s,
                    "direction": "from_right",
                },
            )
        self.owned = sorted(set(self.owned) | set(units))
        self.gen_right += 1
        # Catch the moved columns up over the strips the sender missed,
        # and refresh the boundary values the sender will now expect from
        # us (it bumped its generation at pack time).
        catch_lins = list(range(through + 1, completed + 1))
        if catch_lins:
            blocks = []
            for lin in catch_lins:
                r, b = divmod(lin, self.nb)
                if r != (catch_lins[0] // self.nb) and r != rep_s:
                    pass  # catch-up never spans past one sweep; see module doc
                blocks.append((r, self.strip.block_range(b)))
            n_rows = sum(hi - lo for _r, (lo, hi) in blocks)
            frac_units = len(units) * n_rows / self.total_rows
            ops = (
                self.plan.units_cost(blocks[0][0], list(units))
                * n_rows
                / self.total_rows
            )
            holder: dict[str, Any] = {}

            def _do():
                holder["refreshed"] = k.catchup_and_refresh(
                    self.local,
                    blocks[0][0],
                    np.asarray(units),
                    [rows for _r, rows in blocks],
                )

            dt = yield from self.compute(ops, fn=_do)
            self.note_access(dt, units, blocks[0][0], name="catchup")
            self.count_units(frac_units)
            refreshed = holder.get("refreshed") or [None] * len(blocks)
            src = order.transfer.src
            for (r, rows), values in zip(blocks, refreshed):
                b = rows[0] // self.strip.resolved()
                yield Send(
                    src,
                    Tags.boundary(r, b, self.gen_right),
                    values,
                    (
                        k.boundary_bytes(rows[1] - rows[0])
                        if self.exec_num
                        else 8 * (rows[1] - rows[0])
                    ),
                )
        t1 = yield Now()
        self.ledger.record_cost(t1 - t0, order.transfer.count)
        self.ledger.complete_recv(order.move_id)
        self.note_move("recv", t0, t1, order)
        if self.obs.enabled:
            self.obs.emit_span(
                "pipeline",
                "catchup",
                t0,
                t1,
                pid=self.pid,
                value=float(len(units)),
                meta={
                    "move_id": order.move_id,
                    "strips": len(catch_lins),
                    "through": through,
                },
            )
            self.obs.metrics.counter("pipeline.catchups").inc()
            self.obs.metrics.counter("pipeline.catchup_strips").inc(len(catch_lins))

    # ------------------------------------------------------------------
    # Checkpoint barrier + rollback restore (RunConfig.ckpt)
    # ------------------------------------------------------------------

    def _ckpt_barrier_reachable(self, meta: dict[str, Any]) -> bool:
        # The barrier is the top of sweep ``barrier`` (block 0, before
        # any strip of that sweep runs); mid-sweep state is not a
        # dependence-safe cut.
        barrier = int(meta["barrier"])
        return self.rep < barrier or (self.rep == barrier and self.block == 0)

    def _at_ckpt_barrier(self, meta: dict[str, Any]) -> bool:
        return self.rep == int(meta["barrier"]) and self.block == 0

    def _restore_shape(self, snap: SlaveSnapshot, meta: dict[str, Any]) -> None:
        # All survivors restart with identical fresh generation counters
        # (the master picks a base beyond any pre-rollback value), so no
        # stale boundary or halo tag can ever match again.
        gen = int(meta.get("gen", 0))
        self.gen_left = gen
        self.gen_right = gen
        self.stash = {}
        self.set_aside = None
        self.stopped = False
        self.skip_halo_recv = set()
        if "left" in meta:
            left = meta["left"]
            self.left_pid = None if left is None else int(left)
        if "right" in meta:
            right = meta["right"]
            self.right_pid = None if right is None else int(right)

    def _apply_rollback_grant(self, grant: dict[str, Any]) -> None:
        units = tuple(int(u) for u in grant["units"])
        for u in units:
            if u in self.owned:
                raise ProtocolError(
                    f"slave {self.pid} granted unit {u} it already owns"
                )
        if self.exec_num and grant.get("data") is not None:
            self.kernels().unpack_units(
                self.local,
                np.asarray(units),
                grant["data"],
                {"shape": "pipeline"},
            )
        self.owned = sorted(set(self.owned) | set(units))

    # ------------------------------------------------------------------
    # End-of-run drain
    # ------------------------------------------------------------------

    def _lifecycle(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.work_loop()
            while self.outstanding_replies > 0:
                msg = yield from self._recv_ft(src=self.master, tag=Tags.INSTR)
                instr: Instructions = msg.payload
                if instr.era != self.era:
                    continue  # stale pre-rollback reply
                self.outstanding_replies -= 1
                yield from self._apply_instructions(instr)
            # Outstanding movement payloads must be consumed before the
            # result gather; block for each.
            for order in self.ledger.pending_recvs():
                if self.ft.enabled:
                    msg = yield from self._recv_move_ft(order)
                    if msg is None:
                        continue  # move voided: its sender died
                else:
                    msg = yield Recv(
                        src=order.transfer.src, tag=Tags.move(order.move_id)
                    )
                yield from self._accept_move(order, msg.payload)
            yield from self._merge_set_aside_if_due()
            if self.work_remaining():
                continue
            yield from self._exchange(done=True)
            if self.released:
                break
            if not self.work_remaining() and not self.ledger.has_pending():
                if self.ft.enabled:
                    # Done-time return (see SlaveCore._maybe_early_result);
                    # re-report quickly, the release waits on the gather.
                    yield from self._maybe_early_result()
                    yield from self._poll_ctrl()
                    yield from self._maybe_heartbeat()
                    yield Sleep(4 * self.ft.wait_tick)
                else:
                    yield Sleep(0.1)
        yield from (
            self._maybe_early_result() if self.ft.enabled else self._send_result()
        )
