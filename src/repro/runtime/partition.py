"""Iteration partitions and work-movement bookkeeping.

Two partition kinds mirror the paper's two movement regimes (Figure 1):

- :class:`BlockPartition` — contiguous ranges per slave; movement only
  between logically adjacent slaves so the block distribution (and hence
  minimal boundary communication) is preserved.  Used when the
  distributed loop has loop-carried dependences (SOR).
- :class:`IndexPartition` — arbitrary iteration sets per slave, tracked
  with index arrays (the run-time indirection of Section 4.5).  Movement
  may pair any two slaves (MM, LU).

Both produce explicit :class:`Transfer` lists so master and slaves agree
exactly on which unit ids move where.  :func:`proportional_counts`
implements the paper's proportional allocation (work assigned to each
slave proportional to its measured computation rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import PartitionError

__all__ = [
    "Transfer",
    "proportional_counts",
    "transfers_from_sets",
    "BlockPartition",
    "IndexPartition",
]


@dataclass(frozen=True)
class Transfer:
    """Move ``units`` (global iteration ids) from slave ``src`` to ``dst``."""

    src: int
    dst: int
    units: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise PartitionError("transfer to self")
        if not self.units:
            raise PartitionError("empty transfer")

    @property
    def count(self) -> int:
        return len(self.units)


def proportional_counts(
    total: int, weights: Sequence[float], minimum: int = 0
) -> list[int]:
    """Apportion ``total`` units proportionally to ``weights``.

    Largest-remainder rounding; every slave receives at least ``minimum``
    units when feasible (otherwise ``minimum`` is reduced to fit).
    """
    n = len(weights)
    if n == 0:
        raise PartitionError("no slaves")
    if total < 0:
        raise PartitionError(f"negative total: {total}")
    if any(w < 0 for w in weights):
        raise PartitionError(f"negative weight in {weights}")
    minimum = min(minimum, total // n)
    wsum = float(sum(weights))
    if wsum <= 0:
        weights = [1.0] * n
        wsum = float(n)
    spare = total - minimum * n
    shares = [spare * w / wsum for w in weights]
    counts = [int(s) for s in shares]
    remainders = [s - c for s, c in zip(shares, counts)]
    leftover = spare - sum(counts)
    # Assign leftovers to the largest remainders (ties: lowest index).
    order = sorted(range(n), key=lambda i: (-remainders[i], i))
    for i in order[:leftover]:
        counts[i] += 1
    result = [c + minimum for c in counts]
    assert sum(result) == total
    return result


def transfers_from_sets(
    remaining_by_pid: dict[int, Sequence[int]],
    target_counts: Sequence[int],
) -> list[Transfer]:
    """Direct transfers computed from explicit remaining-work sets.

    Used for independent-iteration shapes near the end of a run, where
    ownership counts no longer reflect remaining work: slaves report the
    ids of units still carrying work, and donors give their
    highest-numbered remaining units to deficit slaves.
    """
    n = len(target_counts)
    cur = [len(remaining_by_pid.get(p, ())) for p in range(n)]
    if sum(target_counts) != sum(cur):
        raise PartitionError(
            f"target sum {sum(target_counts)} != remaining units {sum(cur)}"
        )
    surplus = [c - t for c, t in zip(cur, target_counts)]
    takers = [p for p in range(n) if surplus[p] < 0]
    transfers: list[Transfer] = []
    for d in range(n):
        if surplus[d] <= 0:
            continue
        pool = sorted(remaining_by_pid.get(d, ()))
        while surplus[d] > 0 and takers:
            t = takers[0]
            k = min(surplus[d], -surplus[t])
            units = tuple(pool[-k:])
            pool = pool[:-k]
            transfers.append(Transfer(src=d, dst=t, units=units))
            surplus[d] -= k
            surplus[t] += k
            if surplus[t] == 0:
                takers.pop(0)
    return transfers


class BlockPartition:
    """Contiguous unit ranges delimited by boundaries.

    ``boundaries`` has ``n_slaves + 1`` entries; slave ``s`` owns
    ``[boundaries[s], boundaries[s+1])``.
    """

    def __init__(self, boundaries: Sequence[int]):
        b = list(boundaries)
        if len(b) < 2:
            raise PartitionError("need at least one slave")
        if any(y < x for x, y in zip(b, b[1:])):
            raise PartitionError(f"boundaries not monotone: {b}")
        self.boundaries = b

    @classmethod
    def even(cls, n_units: int, n_slaves: int, lo: int = 0) -> "BlockPartition":
        """Initial even block distribution over ``[lo, lo + n_units)``."""
        if n_slaves < 1 or n_units < 1:
            raise PartitionError("need >= 1 slave and >= 1 unit")
        counts = proportional_counts(n_units, [1.0] * n_slaves, minimum=1)
        return cls.from_counts(counts, lo=lo)

    @classmethod
    def from_counts(cls, counts: Sequence[int], lo: int = 0) -> "BlockPartition":
        b = [lo]
        for c in counts:
            if c < 0:
                raise PartitionError(f"negative count {c}")
            b.append(b[-1] + c)
        return cls(b)

    @property
    def n_slaves(self) -> int:
        return len(self.boundaries) - 1

    @property
    def n_units(self) -> int:
        return self.boundaries[-1] - self.boundaries[0]

    def counts(self) -> list[int]:
        b = self.boundaries
        return [b[s + 1] - b[s] for s in range(self.n_slaves)]

    def owned_range(self, s: int) -> tuple[int, int]:
        return self.boundaries[s], self.boundaries[s + 1]

    def owned(self, s: int) -> np.ndarray:
        lo, hi = self.owned_range(s)
        return np.arange(lo, hi)

    def owner_of(self, unit: int) -> int:
        b = self.boundaries
        if not b[0] <= unit < b[-1]:
            raise PartitionError(f"unit {unit} outside domain [{b[0]}, {b[-1]})")
        return int(np.searchsorted(np.asarray(b), unit, side="right")) - 1

    def transfers_toward(self, target_counts: Sequence[int]) -> list[Transfer]:
        """Adjacent-only transfers moving this partition toward
        ``target_counts`` in a single balancing step.

        Each boundary moves at most to the edge of the *sending* slave's
        current range, so every transfer is feasible immediately; a large
        shift across several slaves completes over several balancing
        periods, with intermediate slaves forwarding load (paper
        Figure 1b).
        """
        if len(target_counts) != self.n_slaves:
            raise PartitionError("target counts length mismatch")
        if sum(target_counts) != self.n_units:
            raise PartitionError(
                f"target counts sum {sum(target_counts)} != units {self.n_units}"
            )
        old = self.boundaries
        # Desired boundaries from target counts.
        desired = [old[0]]
        for c in target_counts:
            desired.append(desired[-1] + c)
        new = list(old)
        transfers: list[Transfer] = []
        for i in range(1, self.n_slaves):
            # Boundary i separates slave i-1 and slave i.  Clamp so that
            # (a) the chunk transferred comes out of the sender's *old*
            # range, (b) boundaries stay monotone, and (c) every slave
            # keeps at least one unit (a pipeline slave must retain a
            # column to anchor its halo exchange).
            lo_limit = max(old[i - 1], new[i - 1] + 1)
            hi_limit = min(old[i + 1] - 1, self.boundaries[-1] - (self.n_slaves - i))
            if hi_limit < lo_limit:
                new[i] = old[i]
            else:
                new[i] = max(lo_limit, min(hi_limit, desired[i]))
        # A slave executes its sends before its receives, so it must
        # retain at least one *currently owned* unit even when the round
        # both takes from and gives to it; cap each slave's gives.
        for s in range(self.n_slaves):
            old_count = old[s + 1] - old[s]
            give_bottom = max(0, new[s] - old[s])
            give_top = max(0, old[s + 1] - new[s + 1])
            excess = give_bottom + give_top - (old_count - 1)
            if excess > 0:
                shrink_top = min(excess, give_top)
                new[s + 1] += shrink_top
                excess -= shrink_top
                if excess > 0:
                    new[s] -= min(excess, give_bottom)
        transfers = []
        for i in range(1, self.n_slaves):
            if new[i] < old[i]:
                units = tuple(range(new[i], old[i]))
                transfers.append(Transfer(src=i - 1, dst=i, units=units))
            elif new[i] > old[i]:
                units = tuple(range(old[i], new[i]))
                transfers.append(Transfer(src=i, dst=i - 1, units=units))
        return transfers

    def apply(self, transfers: Sequence[Transfer]) -> "BlockPartition":
        """New partition after applying adjacent transfers."""
        new = list(self.boundaries)
        for t in transfers:
            if abs(t.src - t.dst) != 1:
                raise PartitionError(f"non-adjacent transfer {t.src}->{t.dst}")
            units = sorted(t.units)
            if t.dst == t.src + 1:
                # Sender gives its top chunk: boundary between src and dst
                # moves down.
                if units[-1] != new[t.src + 1] - 1:
                    raise PartitionError(f"transfer {t} not at boundary")
                new[t.src + 1] -= len(units)
            else:
                # Sender gives its bottom chunk: boundary moves up.
                if units[0] != new[t.src]:
                    raise PartitionError(f"transfer {t} not at boundary")
                new[t.src] += len(units)
        return BlockPartition(new)


class IndexPartition:
    """Arbitrary per-slave unit sets with index arrays (Section 4.5)."""

    def __init__(self, owned: Sequence[Sequence[int]]):
        self._owned: list[list[int]] = [sorted(int(u) for u in o) for o in owned]
        seen: set[int] = set()
        for o in self._owned:
            for u in o:
                if u in seen:
                    raise PartitionError(f"unit {u} owned twice")
                seen.add(u)

    @classmethod
    def even(cls, n_units: int, n_slaves: int, lo: int = 0) -> "IndexPartition":
        counts = proportional_counts(n_units, [1.0] * n_slaves, minimum=1)
        owned = []
        start = lo
        for c in counts:
            owned.append(list(range(start, start + c)))
            start += c
        return cls(owned)

    @property
    def n_slaves(self) -> int:
        return len(self._owned)

    @property
    def n_units(self) -> int:
        return sum(len(o) for o in self._owned)

    def counts(self, active: Callable[[int], bool] | None = None) -> list[int]:
        if active is None:
            return [len(o) for o in self._owned]
        return [sum(1 for u in o if active(u)) for o in self._owned]

    def owned(self, s: int) -> np.ndarray:
        return np.asarray(self._owned[s], dtype=int)

    def owner_of(self, unit: int) -> int:
        for s, o in enumerate(self._owned):
            if unit in o:
                return s
        raise PartitionError(f"unit {unit} unowned")

    def transfers_toward(
        self,
        target_counts: Sequence[int],
        active: Callable[[int], bool] | None = None,
    ) -> list[Transfer]:
        """Direct transfers from surplus to deficit slaves.

        Only *active* units move (Section 4.7); targets refer to active
        counts.  Donors give their highest-numbered active units (those
        stay active longest, so their data keeps paying off).
        """
        if len(target_counts) != self.n_slaves:
            raise PartitionError("target counts length mismatch")
        cur = self.counts(active)
        if sum(target_counts) != sum(cur):
            raise PartitionError(
                f"target sum {sum(target_counts)} != active units {sum(cur)}"
            )
        surplus = [c - t for c, t in zip(cur, target_counts)]
        donors = [s for s in range(self.n_slaves) if surplus[s] > 0]
        takers = [s for s in range(self.n_slaves) if surplus[s] < 0]
        transfers: list[Transfer] = []
        for d in donors:
            pool = [u for u in self._owned[d] if active is None or active(u)]
            while surplus[d] > 0 and takers:
                t = takers[0]
                n = min(surplus[d], -surplus[t])
                units = tuple(pool[-n:])
                pool = pool[:-n]
                transfers.append(Transfer(src=d, dst=t, units=units))
                surplus[d] -= n
                surplus[t] += n
                if surplus[t] == 0:
                    takers.pop(0)
        return transfers

    def apply(self, transfers: Sequence[Transfer]) -> "IndexPartition":
        owned = [list(o) for o in self._owned]
        for t in transfers:
            for u in t.units:
                if u not in owned[t.src]:
                    raise PartitionError(f"slave {t.src} does not own unit {u}")
                owned[t.src].remove(u)
                owned[t.dst].append(u)
        return IndexPartition(owned)
