"""Finite-state abstraction of the centralized master/slave DLB plane.

This is the model-extraction shim the protocol model checker
(``repro.analysis.model``) explores.  It abstracts the runtime protocol
in ``runtime/master.py`` / ``runtime/slave.py`` to its coordination
skeleton:

- A slave completes one work unit per hook, then sends ``lb.status``
  (remaining set, applied move ids, and — at done-time — its banked
  result, mirroring the FT early-result protocol) and blocks on the
  ``lb.instr`` reply, exactly like the real hook cycle.
- The master replies with movement orders (``send``/``recv`` halves of
  a transfer, shipped leaf-to-leaf on ``lb.move.<id>``), a ``noop``, or
  — once every unit is complete, every banked result matches the
  ledger, and no move is outstanding — a ``release``.
- Ownership is *ledger-style*, exactly like the FT master: the master's
  view of who owns which unit changes only through its own decisions
  (move issue, grant, recovery sweep) and their acknowledgements, never
  by overwriting from a slave report — reports carry progress
  (remaining, applied move ids), and the master subtracts the units of
  still-outstanding outbound moves so a stale report cannot double-book
  a unit into a second move.
- A done slave is *parked* (no reply) until work arrives for it or the
  run completes; this abstracts the runtime's poll loop, which re-asks
  instead of blocking, into an eventually-equivalent wait.

The ``front`` shape variant abstracts the reduction-front (LU-style)
plane instead: per repetition the front owner broadcasts ``front.<rep>``
and every other slave must consume it before advancing — no movement,
but the broadcast pairing and the final release barrier are explored.

Abstractions (documented, deliberate): rates and timing are dropped
(movement decisions become nondeterministic choices bounded by
``moves``), the transport is reliable and loss-free (PR 3's
retransmission layer is verified separately), numerics are replaced by
unit custody, and a moved unit is re-executed by the receiver even if
the sender had already worked it (work units are deterministic, so
re-execution is safe — only wasteful, which the model does not score).
``MUTATIONS`` lists seeded protocol corruptions used by the test suite
to prove the checker catches real classes of bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, NamedTuple

from ..analysis.model.core import Invariant, Model, Msg, Step, selective

__all__ = [
    "CentralConfig",
    "MUTATIONS",
    "CentralMaster",
    "CentralSlave",
    "MasterLocal",
    "SlaveLocal",
    "build_model",
    "unit_conservation",
]

MASTER = "master"

#: Seeded protocol corruptions for the checker's own test suite.
MUTATIONS: dict[str, str] = {
    "drop_release": "master never issues the final release instruction",
    "lose_moved_units": "movement send half ships an empty payload",
    "duplicate_moved_units": "movement send half keeps the shipped units",
    "front_skip_peer": "front owner skips one peer in the broadcast",
}


@dataclass(frozen=True)
class CentralConfig:
    """Size of the explored configuration (keep these small)."""

    n_slaves: int = 2
    units: int = 3
    moves: int = 1
    shape: str = "map"  # "map" | "front"
    mutation: str | None = None

    def slave_names(self) -> list[str]:
        return [f"s{i}" for i in range(self.n_slaves)]

    def initial_owned(self, index: int) -> frozenset[int]:
        return frozenset(
            u for u in range(self.units) if u % self.n_slaves == index
        )


class SlaveLocal(NamedTuple):
    phase: str  # run | wait_instr | wait_move | done | crashed
    owned: frozenset[int]
    remaining: frozenset[int]
    wait_mid: int  # move id awaited in wait_move
    applied: tuple[int, ...]  # moves applied since the last report
    moved: frozenset[int]  # move ids this slave shipped or applied
    canceled: frozenset[int]  # move ids voided by a cancel control
    banked: frozenset[int] | None  # owned set last banked as a result


def _status_payload(
    owned: frozenset[int],
    remaining: frozenset[int],
    applied: tuple[int, ...],
    banked: frozenset[int] | None,
) -> tuple[Hashable, ...]:
    result = (
        tuple(sorted(owned))
        if not remaining and banked != owned
        else None
    )
    return ("status", tuple(sorted(remaining)), applied, result)


class CentralSlave:
    """Map-shape slave: work -> status -> instructions cycle."""

    def __init__(self, name: str, cfg: CentralConfig, index: int):
        self.name = name
        self.cfg = cfg
        self.index = index

    def init(self) -> Hashable:
        owned = self.cfg.initial_owned(self.index)
        return SlaveLocal(
            phase="run",
            owned=owned,
            remaining=owned,
            wait_mid=-1,
            applied=(),
            moved=frozenset(),
            canceled=frozenset(),
            banked=None,
        )

    def _report(self, s: SlaveLocal, label: str) -> Step:
        payload = _status_payload(s.owned, s.remaining, s.applied, s.banked)
        banked = s.banked
        if payload[3] is not None:
            banked = s.owned
        return Step(
            actor=self.name,
            label=label,
            next_state=s._replace(
                phase="wait_instr", applied=(), banked=banked
            ),
            sends=(Msg(self.name, MASTER, "lb.status", payload),),
        )

    def _instr_steps(
        self, s: SlaveLocal, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        for msg in selective(pending, lambda m: m.tag == "lb.instr"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            kind = payload[0]
            if kind == "noop":
                yield Step(
                    actor=self.name,
                    label="instr(noop)",
                    next_state=s._replace(phase="run"),
                    consumed=msg,
                )
            elif kind == "send":
                _, mid, units, dst = payload
                if mid in s.canceled:
                    yield Step(
                        actor=self.name,
                        label=f"instr(send m{mid}: voided)",
                        next_state=s._replace(phase="run"),
                        consumed=msg,
                    )
                    continue
                shipped = frozenset(units)
                mutation = self.cfg.mutation
                payload_units = (
                    () if mutation == "lose_moved_units" else tuple(units)
                )
                keep = (
                    s.owned
                    if mutation == "duplicate_moved_units"
                    else s.owned - shipped
                )
                yield Step(
                    actor=self.name,
                    label=f"instr(send m{mid} -> {dst})",
                    next_state=s._replace(
                        phase="run",
                        owned=keep,
                        remaining=s.remaining - shipped,
                        moved=s.moved | {mid},
                    ),
                    consumed=msg,
                    sends=(
                        Msg(
                            self.name,
                            str(dst),
                            f"lb.move.{mid}",
                            ("units", payload_units),
                        ),
                    ),
                )
            elif kind == "recv":
                _, mid, _src = payload
                if mid in s.canceled:
                    yield Step(
                        actor=self.name,
                        label=f"instr(recv m{mid}: voided)",
                        next_state=s._replace(phase="run"),
                        consumed=msg,
                    )
                else:
                    yield Step(
                        actor=self.name,
                        label=f"instr(recv m{mid})",
                        next_state=s._replace(phase="wait_move", wait_mid=mid),
                        consumed=msg,
                    )
            elif kind == "release":
                yield Step(
                    actor=self.name,
                    label="instr(release)",
                    next_state=s._replace(phase="done"),
                    consumed=msg,
                )
            else:  # pragma: no cover - malformed model
                raise ValueError(f"unknown instruction {payload!r}")

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        s = local
        assert isinstance(s, SlaveLocal)
        if s.phase in ("done", "crashed"):
            return
        if s.phase == "run":
            if s.remaining:
                u = min(s.remaining)
                done = s._replace(remaining=s.remaining - {u})
                yield self._report(done, f"work(u{u})")
            else:
                yield self._report(s, "report_done")
        elif s.phase == "wait_instr":
            yield from self._instr_steps(s, pending)
        elif s.phase == "wait_move":
            tag = f"lb.move.{s.wait_mid}"
            for msg in selective(pending, lambda m: m.tag == tag):
                payload = msg.payload
                assert isinstance(payload, tuple)
                units = frozenset(payload[1])
                yield Step(
                    actor=self.name,
                    label=f"apply m{s.wait_mid}",
                    next_state=s._replace(
                        phase="run",
                        owned=s.owned | units,
                        remaining=s.remaining | units,
                        wait_mid=-1,
                        applied=s.applied + (s.wait_mid,),
                        moved=s.moved | {s.wait_mid},
                    ),
                    consumed=msg,
                )


#: An issued-but-unconfirmed move: ``(mid, src, dst, units)``.
MoveRec = tuple[int, str, str, tuple[int, ...]]


class MasterLocal(NamedTuple):
    phase: str  # run | final
    # ledger: (slave, owned, remaining) triples sorted by slave name
    view: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...]
    parked: frozenset[str]
    # queued movement orders: (dst slave, order payload)
    pending: tuple[tuple[str, tuple[Hashable, ...]], ...]
    outstanding: tuple[MoveRec, ...]  # issued but unconfirmed moves
    moves_left: int
    next_mid: int
    banked: tuple[tuple[str, tuple[int, ...]], ...]  # slave -> result


def _view_get(
    view: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...], name: str
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    for slave, owned, remaining in view:
        if slave == name:
            return owned, remaining
    raise KeyError(name)


def _view_adjust(
    view: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...],
    name: str,
    add: frozenset[int] = frozenset(),
    drop: frozenset[int] = frozenset(),
    remaining: tuple[int, ...] | None = None,
) -> tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...]:
    """Ledger update: adjust one slave's owned set (and optionally
    replace its remaining)."""
    out = []
    for slave, owned, rem in view:
        if slave == name:
            new_owned = (frozenset(owned) | add) - drop
            new_rem = (
                tuple(sorted((frozenset(rem) | add) - drop))
                if remaining is None
                else remaining
            )
            out.append((slave, tuple(sorted(new_owned)), new_rem))
        else:
            out.append((slave, owned, rem))
    return tuple(out)


def _bank_set(
    banked: tuple[tuple[str, tuple[int, ...]], ...],
    name: str,
    units: tuple[int, ...] | None,
) -> tuple[tuple[str, tuple[int, ...]], ...]:
    rest = tuple(item for item in banked if item[0] != name)
    if units is None:
        return rest
    return tuple(sorted(rest + ((name, units),)))


class CentralMaster:
    """Map-shape master: status handling, movement, release barrier."""

    def __init__(self, cfg: CentralConfig):
        self.name = MASTER
        self.cfg = cfg

    def init(self) -> Hashable:
        return MasterLocal(
            phase="run",
            view=tuple(
                (
                    name,
                    tuple(sorted(self.cfg.initial_owned(i))),
                    tuple(sorted(self.cfg.initial_owned(i))),
                )
                for i, name in enumerate(self.cfg.slave_names())
            ),
            parked=frozenset(),
            pending=(),
            outstanding=(),
            moves_left=self.cfg.moves,
            next_mid=0,
            banked=(),
        )

    # -- hooks the FT master refines -------------------------------------

    def _live(self, m: MasterLocal) -> frozenset[str]:
        return frozenset(self.cfg.slave_names())

    def _extra_release_blockers(self, m: MasterLocal) -> bool:
        return False

    # -- release barrier -------------------------------------------------

    def _release_ready(self, m: MasterLocal) -> bool:
        """All live slaves parked with a banked result matching the
        ledger, and nothing outstanding anywhere."""
        if m.outstanding or m.pending or m.phase != "run":
            return False
        if self._extra_release_blockers(m):
            return False
        banked = dict(m.banked)
        live = self._live(m)
        for slave, owned, _ in m.view:
            if slave not in live:
                continue
            if slave not in m.parked:
                return False
            if banked.get(slave) != owned:
                return False
        return True

    def _finish(self, m: MasterLocal, sends: list[Msg]) -> MasterLocal:
        """Append releases when the run is complete (mutation hook)."""
        if self.cfg.mutation == "drop_release":
            return m
        if not self._release_ready(m):
            return m
        for slave in sorted(m.parked):
            sends.append(Msg(self.name, slave, "lb.instr", ("release",)))
        return m._replace(parked=frozenset(), phase="final")

    # -- status handling -------------------------------------------------

    def _status_steps(self, m: MasterLocal, msg: Msg) -> Iterable[Step]:
        payload = msg.payload
        assert isinstance(payload, tuple)
        _, remaining_t, applied, result = payload
        reporter = msg.src
        applied_set = frozenset(applied)
        outstanding = tuple(
            rec for rec in m.outstanding if rec[0] not in applied_set
        )
        # Ledger remaining: the report minus units of moves this slave
        # has been ordered to ship but has not confirmed shipping (the
        # report may predate the order).
        ship_pending = frozenset(
            u
            for rec in outstanding
            if rec[1] == reporter
            for u in rec[3]
        )
        remaining_eff = tuple(
            sorted(frozenset(remaining_t) - ship_pending)
        )
        base = m._replace(
            view=_view_adjust(m.view, reporter, remaining=remaining_eff),
            outstanding=outstanding,
        )
        if result is not None:
            base = base._replace(
                banked=_bank_set(base.banked, reporter, result)
            )

        queued = [order for dst, order in base.pending if dst == reporter]
        if queued:
            order = queued[0]
            rest = tuple(
                (dst, o)
                for dst, o in base.pending
                if not (dst == reporter and o == order)
            )
            yield Step(
                actor=self.name,
                label=f"reply({reporter}: queued order)",
                next_state=base._replace(pending=rest),
                consumed=msg,
                sends=(Msg(self.name, reporter, "lb.instr", order),),
            )
            return

        if remaining_eff:
            # Default reply: carry on.
            yield Step(
                actor=self.name,
                label=f"reply({reporter}: noop)",
                next_state=base,
                consumed=msg,
                sends=(Msg(self.name, reporter, "lb.instr", ("noop",)),),
            )
            # Movement branches: shed one unit to an idle slave.
            if base.moves_left > 0:
                yield from self._move_steps(base, msg, reporter)
            return

        # Reporter believes it is done — but park it only if its banked
        # result matches the ledger.  A mismatch means ledger-assigned
        # work (a grant, an unapplied move) has not reached it yet:
        # keep it cycling with a noop so it cannot be parked on a stale
        # done-report.
        owned_v, _ = _view_get(base.view, reporter)
        if dict(base.banked).get(reporter) != owned_v:
            yield Step(
                actor=self.name,
                label=f"reply({reporter}: noop, ledger ahead)",
                next_state=base,
                consumed=msg,
                sends=(Msg(self.name, reporter, "lb.instr", ("noop",)),),
            )
            return
        sends: list[Msg] = []
        parked = base._replace(parked=base.parked | {reporter})
        finished = self._finish(parked, sends)
        yield Step(
            actor=self.name,
            label=f"park({reporter})"
            + (" + release-all" if finished.phase == "final" else ""),
            next_state=finished,
            consumed=msg,
            sends=tuple(sends),
        )

    def _move_steps(
        self, base: MasterLocal, msg: Msg, reporter: str
    ) -> Iterable[Step]:
        """Issue a move: ledger transfer at issue time, confirmation via
        the receiver's later applied-report."""
        _, rep_remaining = _view_get(base.view, reporter)
        if not rep_remaining:
            return
        unit = max(rep_remaining)
        live = self._live(base)
        for dst, _, dst_remaining in base.view:
            if dst == reporter or dst not in live or dst_remaining:
                continue  # only shed toward idle live slaves
            mid = base.next_mid
            units = frozenset({unit})
            view = _view_adjust(base.view, reporter, drop=units)
            view = _view_adjust(view, dst, add=units)
            nxt = base._replace(
                view=view,
                outstanding=base.outstanding
                + ((mid, reporter, dst, (unit,)),),
                moves_left=base.moves_left - 1,
                next_mid=mid + 1,
            )
            sends = [
                Msg(
                    self.name,
                    reporter,
                    "lb.instr",
                    ("send", mid, (unit,), dst),
                )
            ]
            if dst in nxt.parked:
                nxt = nxt._replace(parked=nxt.parked - {dst})
                sends.append(
                    Msg(self.name, dst, "lb.instr", ("recv", mid, reporter))
                )
            else:
                nxt = nxt._replace(
                    pending=nxt.pending + ((dst, ("recv", mid, reporter)),)
                )
            yield Step(
                actor=self.name,
                label=f"move m{mid}: {reporter} -> {dst} (u{unit})",
                next_state=nxt,
                consumed=msg,
                sends=tuple(sends),
            )

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        m = local
        assert isinstance(m, MasterLocal)
        if m.phase != "run":
            return
        for msg in selective(pending, lambda x: x.tag == "lb.status"):
            yield from self._status_steps(m, msg)


# -- reduction-front variant -------------------------------------------


class FrontSlave(NamedTuple):
    phase: str  # run | wait_release | done
    rep: int


class FrontSlaveActor:
    """Reduction-front slave: broadcast/consume ``front.<rep>`` in order."""

    def __init__(self, name: str, cfg: CentralConfig, index: int):
        self.name = name
        self.cfg = cfg
        self.index = index

    def init(self) -> Hashable:
        return FrontSlave(phase="run", rep=0)

    def _owner(self, rep: int) -> str:
        return f"s{rep % self.cfg.n_slaves}"

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        s = local
        assert isinstance(s, FrontSlave)
        if s.phase == "done":
            return
        if s.phase == "wait_release":
            for msg in selective(pending, lambda m: m.tag == "lb.instr"):
                yield Step(
                    actor=self.name,
                    label="instr(release)",
                    next_state=s._replace(phase="done"),
                    consumed=msg,
                )
            return
        if s.rep >= self.cfg.units:
            yield Step(
                actor=self.name,
                label="report_done",
                next_state=s._replace(phase="wait_release"),
                sends=(
                    Msg(self.name, MASTER, "lb.status", ("front_done",)),
                ),
            )
            return
        if self._owner(s.rep) == self.name:
            peers = [n for n in self.cfg.slave_names() if n != self.name]
            if self.cfg.mutation == "front_skip_peer" and peers:
                peers = peers[:-1]
            yield Step(
                actor=self.name,
                label=f"front(rep {s.rep})",
                next_state=s._replace(rep=s.rep + 1),
                sends=tuple(
                    Msg(self.name, peer, f"front.{s.rep}", ()) for peer in peers
                ),
            )
        else:
            tag = f"front.{s.rep}"
            for msg in selective(pending, lambda m: m.tag == tag):
                yield Step(
                    actor=self.name,
                    label=f"consume front(rep {s.rep})",
                    next_state=s._replace(rep=s.rep + 1),
                    consumed=msg,
                )


class FrontMaster(NamedTuple):
    phase: str  # run | final
    done: frozenset[str]


class FrontMasterActor:
    """Reduction-front master: collect done reports, release everyone."""

    def __init__(self, cfg: CentralConfig):
        self.name = MASTER
        self.cfg = cfg

    def init(self) -> Hashable:
        return FrontMaster(phase="run", done=frozenset())

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        m = local
        assert isinstance(m, FrontMaster)
        if m.phase != "run":
            return
        everyone = frozenset(self.cfg.slave_names())
        for msg in selective(pending, lambda x: x.tag == "lb.status"):
            done = m.done | {msg.src}
            sends: tuple[Msg, ...] = ()
            phase = "run"
            if done == everyone and self.cfg.mutation != "drop_release":
                sends = tuple(
                    Msg(self.name, slave, "lb.instr", ("release",))
                    for slave in sorted(everyone)
                )
                phase = "final"
            yield Step(
                actor=self.name,
                label=f"collect({msg.src})"
                + (" + release-all" if phase == "final" else ""),
                next_state=FrontMaster(phase=phase, done=done),
                consumed=msg,
                sends=sends,
            )


# -- invariants and model assembly -------------------------------------


def unit_conservation(cfg: CentralConfig) -> Invariant:
    """Every unit has exactly one custodian.

    Custodians: a live (or crashed-but-undeclared) slave's owned set, an
    in-flight ``units``/``grant`` payload on a channel between live
    actors, the master's reclaim pool, or a declared-dead slave's banked
    result.  Channels touching a declared-dead actor are ghost data —
    custody authority there is the master's ledger, so they are skipped;
    units of an unresolved in-flight move the master has *parked*
    (``contested``) may legitimately have zero other custodians until
    the surviving peer's cancel ack resolves them.
    """

    def check(
        locals_: Mapping[str, Hashable],
        channels: Mapping[tuple[str, str], tuple[Msg, ...]],
    ) -> tuple[str, str] | None:
        counts = {u: 0 for u in range(cfg.units)}
        master = locals_.get(MASTER)
        dead: frozenset[str] = frozenset()
        if master is not None and hasattr(master, "dead"):
            dead = master.dead  # FT extension
        parked: set[int] = set()
        if master is not None and hasattr(master, "contested"):
            for rec in master.contested:  # MoveRec
                parked.update(rec[3])
        for name, local in locals_.items():
            if name == MASTER or not isinstance(local, SlaveLocal):
                continue
            if name in dead:
                continue  # custody reclaimed by the master on declare
            for u in local.owned:
                counts[u] = counts.get(u, 0) + 1
        if master is not None and hasattr(master, "pool"):
            for u in master.pool:  # FT reclaim pool
                counts[u] = counts.get(u, 0) + 1
        if master is not None and hasattr(master, "banked"):
            for slave, units in master.banked:
                if slave in dead:
                    for u in units:
                        counts[u] = counts.get(u, 0) + 1
        for (src, dst), msgs in channels.items():
            if src in dead or dst in dead:
                continue  # ghost data; the ledger is authoritative
            for msg in msgs:
                payload = msg.payload
                if (
                    isinstance(payload, tuple)
                    and payload
                    and payload[0] in ("units", "grant")
                ):
                    for u in payload[1]:
                        counts[u] = counts.get(u, 0) + 1
        lost = sorted(
            u for u, c in counts.items() if c == 0 and u not in parked
        )
        dup = sorted(u for u, c in counts.items() if c > 1)
        if dup:
            return (
                "RA702",
                f"unit(s) {dup} have more than one custodian "
                f"(duplicated by movement/recovery)",
            )
        if lost:
            return (
                "RA701",
                f"unit(s) {lost} have no custodian (lost by "
                f"movement/recovery)",
            )
        return None

    return check


def _terminal_map(
    cfg: CentralConfig,
) -> "Callable[[Mapping[str, Hashable]], bool]":
    def done(locals_: Mapping[str, Hashable]) -> bool:
        for name, local in locals_.items():
            if name == MASTER:
                if getattr(local, "phase", "") != "final":
                    return False
            elif getattr(local, "phase", "") not in ("done", "crashed"):
                return False
        return True

    return done


def build_model(
    cfg: CentralConfig | None = None, mutation: str | None = None
) -> Model:
    """Build the centralized-plane model for one configuration."""
    cfg = cfg or CentralConfig()
    if mutation is not None:
        if mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutation!r}")
        cfg = CentralConfig(
            n_slaves=cfg.n_slaves,
            units=cfg.units,
            moves=cfg.moves,
            shape=cfg.shape,
            mutation=mutation,
        )
    name = (
        f"centralized-{cfg.shape}-p{cfg.n_slaves}-u{cfg.units}-m{cfg.moves}"
    )
    if cfg.mutation:
        name += f"!{cfg.mutation}"
    if cfg.shape == "front":
        actors: list[object] = [FrontMasterActor(cfg)] + [
            FrontSlaveActor(n, cfg, i)
            for i, n in enumerate(cfg.slave_names())
        ]
        return Model(
            name=name,
            plane="centralized",
            actors=actors,  # type: ignore[arg-type]
            invariants=[],
            terminal=_terminal_map(cfg),
            notes="reduction-front broadcast skeleton; no movement",
        )
    actors = [CentralMaster(cfg)] + [
        CentralSlave(n, cfg, i) for i, n in enumerate(cfg.slave_names())
    ]
    return Model(
        name=name,
        plane="centralized",
        actors=actors,  # type: ignore[arg-type]
        invariants=[unit_conservation(cfg)],
        terminal=_terminal_map(cfg),
        notes=(
            "hook cycle with bounded nondeterministic movement; "
            "reliable transport assumed (verified separately)"
        ),
    )
