"""Slave-side work-movement bookkeeping (paper Section 4.5).

Tracks movement orders received from the master until they are executed,
and measures the CPU-side cost of moving work (measured each time work
moves; the measurement feeds the frequency selection of Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import MovementError
from .protocol import MoveOrder

__all__ = ["MovementLedger", "MovePayload"]


@dataclass
class MovePayload:
    """Wire payload of one work movement.

    ``data`` is the application-packed unit state (None in cost-only
    simulation); ``meta`` carries shape-specific phase information, e.g.
    per-unit completed repetition counters for parallel maps or the
    (rep, block) application point plus halo snapshots for pipelines.
    """

    move_id: int
    units: tuple[int, ...]
    data: Any
    meta: dict[str, Any] = field(default_factory=dict)


class MovementLedger:
    """Pending movement orders for one slave."""

    def __init__(self, pid: int):
        self.pid = pid
        self._pending_sends: dict[int, MoveOrder] = {}
        self._pending_recvs: dict[int, MoveOrder] = {}
        self._applied: list[int] = []
        self._canceled: list[int] = []
        # Moves completed straight from their payload before the master's
        # order arrived (the payload carries units + phase, so a blocked
        # pipeline slave can apply it immediately); the late order is then
        # dropped on arrival.
        self._early_done: set[int] = set()
        # Persistent histories for failure recovery: every move id this
        # slave fully executed (its half), and every id voided by a
        # master cancel.  A voided order arriving late is dropped.
        self._done_ids: set[int] = set()
        self._voided: set[int] = set()
        self._last_cost_per_unit: float | None = None

    # -- order intake ---------------------------------------------------

    def add_orders(
        self, sends: tuple[MoveOrder, ...], recvs: tuple[MoveOrder, ...]
    ) -> None:
        for o in sends:
            if o.transfer.src != self.pid:
                raise MovementError(
                    f"slave {self.pid} given send order for src {o.transfer.src}"
                )
            if o.move_id in self._voided:
                continue  # canceled by the master before the order arrived
            if o.move_id in self._pending_sends:
                raise MovementError(f"duplicate send order {o.move_id}")
            self._pending_sends[o.move_id] = o
        for o in recvs:
            if o.transfer.dst != self.pid:
                raise MovementError(
                    f"slave {self.pid} given recv order for dst {o.transfer.dst}"
                )
            if o.move_id in self._voided:
                continue  # canceled by the master before the order arrived
            if o.move_id in self._early_done:
                self._early_done.discard(o.move_id)
                continue  # already applied from the payload
            if o.move_id in self._pending_recvs:
                raise MovementError(f"duplicate recv order {o.move_id}")
            self._pending_recvs[o.move_id] = o

    # -- execution ------------------------------------------------------

    def take_sends(self) -> list[MoveOrder]:
        """All send orders, removed from the ledger (executed at the next
        hook, sends first so adjacent chains cannot deadlock)."""
        orders = sorted(self._pending_sends.values(), key=lambda o: o.move_id)
        self._pending_sends.clear()
        return orders

    def pending_recvs(self) -> list[MoveOrder]:
        return sorted(self._pending_recvs.values(), key=lambda o: o.move_id)

    def complete_recv(self, move_id: int) -> None:
        if move_id in self._pending_recvs:
            del self._pending_recvs[move_id]
        else:
            self._early_done.add(move_id)
        self._applied.append(move_id)
        self._done_ids.add(move_id)

    def mark_sent(self, move_id: int) -> None:
        self._applied.append(move_id)
        self._done_ids.add(move_id)

    def is_done(self, move_id: int) -> bool:
        """Has this slave's half of ``move_id`` already executed?"""
        return move_id in self._done_ids

    def is_voided(self, move_id: int) -> bool:
        return move_id in self._voided

    def void(self, move_id: int) -> bool:
        """Cancel a movement on the master's behalf (peer died).

        Returns False when this slave's half already executed — the
        master then treats the movement as applied instead.  Otherwise
        the order (pending or yet to arrive) is dropped and reported as
        canceled.
        """
        if move_id in self._done_ids:
            return False
        self._pending_sends.pop(move_id, None)
        self._pending_recvs.pop(move_id, None)
        if move_id not in self._voided:
            self._voided.add(move_id)
            self._canceled.append(move_id)
        return True

    def void_quiet(self, move_id: int) -> None:
        """Mark a movement void without reporting it as canceled.

        Used when restoring a checkpoint: every move issued after the
        epoch cut is void, but the master already resolved the whole id
        range on its side, so reporting each id back would be noise.
        """
        self._pending_sends.pop(move_id, None)
        self._pending_recvs.pop(move_id, None)
        self._voided.add(move_id)

    def mark_canceled(self, move_id: int) -> None:
        """A movement both sides abandoned (e.g. issued during a pipeline
        application's final sweep, where catch-up is impossible)."""
        if move_id not in self._pending_recvs and move_id not in self._pending_sends:
            self._early_done.add(move_id)
        self._pending_recvs.pop(move_id, None)
        self._pending_sends.pop(move_id, None)
        self._canceled.append(move_id)

    def has_pending(self) -> bool:
        return bool(self._pending_sends or self._pending_recvs)

    # -- reporting -------------------------------------------------------

    def record_cost(self, wall_time: float, n_units: int) -> None:
        """Measured CPU-side cost of one movement."""
        if n_units > 0 and wall_time >= 0:
            self._last_cost_per_unit = wall_time / n_units

    def pop_report_fields(
        self,
    ) -> tuple[tuple[int, ...], tuple[int, ...], float | None]:
        """Applied + canceled move ids and last measured cost, cleared
        after reporting."""
        applied = tuple(self._applied)
        self._applied.clear()
        canceled = tuple(self._canceled)
        self._canceled.clear()
        cost = self._last_cost_per_unit
        self._last_cost_per_unit = None
        return applied, canceled, cost
