"""Central load-balancing decision algorithm (paper Section 3.2).

Pure logic, independent of the simulator, so every refinement can be unit
tested: proportional redistribution from filtered rates, the 10%
improvement threshold, the profitability phase, restricted vs
unrestricted instruction generation, and frequency selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..config import BalancerConfig, NetworkSpec
from ..errors import ProtocolError
from .filtering import TrendFilter
from .frequency import hooks_to_skip, select_period
from .partition import (
    BlockPartition,
    IndexPartition,
    Transfer,
    proportional_counts,
    transfers_from_sets,
)
from .profitability import estimate_movement_cost, movement_profitable
from .protocol import SlaveReport

__all__ = ["BalancerState", "BalancerDecision", "decide"]


@dataclass
class BalancerDecision:
    """Outcome of one load-balancing phase."""

    phase: int
    transfers: list[Transfer]
    period: float
    skip_hooks: dict[int, int]
    rates: dict[int, float]
    t_current: float
    t_balanced: float
    improvement: float
    cancelled: str | None = None  # None | "threshold" | "profitability" | "in-flight"
    share_deviation: float = 0.0  # worst per-slave deviation from target share

    @property
    def moves_work(self) -> bool:
        return bool(self.transfers)


class BalancerState:
    """Mutable state the central balancer carries across phases."""

    def __init__(
        self,
        n_slaves: int,
        config: BalancerConfig,
        unit_bytes: int,
        network: NetworkSpec,
        quantum: float,
    ):
        if n_slaves < 1:
            raise ProtocolError("need at least one slave")
        self.n_slaves = n_slaves
        self.config = config
        self.unit_bytes = unit_bytes
        self.network = network
        self.quantum = quantum
        self.filters: dict[int, TrendFilter] = {
            pid: TrendFilter() for pid in range(n_slaves)
        }
        if not config.filter_enabled:
            # Degenerate filter: always take the raw sample.
            self.filters = {
                pid: TrendFilter(slow_gain=1.0, fast_gain=1.0)
                for pid in range(n_slaves)
            }
        # Measured interaction cost: one status+instruction round trip.
        self.interaction_cost = 2.0 * (
            network.send_cpu + network.recv_cpu + network.transfer_time(96)
        )
        # Movement cost per unit: analytic prior, replaced by measurements
        # whenever work actually moves (Section 4.3).
        self.move_cost_per_unit = (
            unit_bytes / network.bandwidth + 2.0e-5 * 2
        )
        self.measured_move_cost = False
        self.phase = 0
        # Slaves declared dead by the failure-tolerant master: their stale
        # rates must not attract proportional shares.
        self.excluded: set[int] = set()

    # ------------------------------------------------------------------

    def observe(self, report: SlaveReport) -> None:
        """Fold a slave report into the filters and cost estimates.

        Rates measured over less than ~2 scheduling quanta are ignored:
        context switching makes such samples oscillate wildly
        (Section 4.3); the slave keeps accumulating and a later report
        carries the full window.
        """
        rate = report.rate
        if rate is not None and report.meas_work >= 2.0 * self.quantum:
            self.filters[report.pid].update(rate)
        if (
            report.measured_move_cost_per_unit is not None
            and report.measured_move_cost_per_unit > 0
        ):
            if self.measured_move_cost:
                self.move_cost_per_unit = (
                    0.5 * self.move_cost_per_unit
                    + 0.5 * report.measured_move_cost_per_unit
                )
            else:
                self.move_cost_per_unit = report.measured_move_cost_per_unit
                self.measured_move_cost = True

    def exclude(self, pid: int) -> None:
        """Permanently zero a (dead) slave's rate for share computation."""
        self.excluded.add(pid)

    def filtered_rates(self) -> dict[int, float]:
        """Filtered units/sec per slave; slaves with no samples yet get
        the mean of the others (or 1.0 if nobody has reported)."""
        known = {
            pid: f.value
            for pid, f in self.filters.items()
            if f.value is not None and pid not in self.excluded
        }
        default = (
            sum(known.values()) / len(known) if known else 1.0
        )
        default = max(default, 1e-9)
        return {
            pid: (
                1e-9
                if pid in self.excluded
                else max(known.get(pid, default), 1e-9)
            )
            for pid in range(self.n_slaves)
        }


def _completion_time(counts: Sequence[int], rates: Mapping[int, float]) -> float:
    """Predicted time for the slowest slave to finish its allocation,
    assuming equal-cost remaining units (paper Section 3.2)."""
    return max(
        (counts[pid] / rates[pid] for pid in range(len(counts))), default=0.0
    )


def _share_deviation(counts: Sequence[int], targets: Sequence[int]) -> float:
    """Worst per-slave relative deviation from its target share, beyond
    the one unit of slack inherent in largest-remainder rounding.

    The improvement threshold alone can stall the balancer far from the
    proportional targets: integer-rounded targets understate achievable
    improvement for near-uniform rates, so a slave can sit several units
    over its share while the predicted completion-time gain stays under
    the threshold.  Comparing this deviation against the same threshold
    lets the balancer keep converging toward the targets without moving
    work over rounding noise (deviation of a single unit is always 0).
    """
    worst = 0.0
    for count, target in zip(counts, targets):
        dev = (abs(count - target) - 1.0) / max(target, 1)
        if dev > worst:
            worst = dev
    return worst


def decide(
    state: BalancerState,
    partition: BlockPartition | IndexPartition,
    units_per_hook: Mapping[int, float],
    remaining_units: float,
    active: Callable[[int], bool] | None = None,
    allow_movement: bool = True,
    remaining_sets: Mapping[int, tuple[int, ...]] | None = None,
) -> BalancerDecision:
    """Run one load-balancing phase and produce instructions.

    ``partition`` is the master's view of current ownership; ``active``
    restricts counting/movement to units that still carry work
    (Section 4.7).  ``allow_movement=False`` is used while a previous
    movement is still in flight.  For independent-iteration shapes the
    master passes ``remaining_sets`` (per-slave ids of units with work
    left, from slave reports) so the end of a run balances remaining
    work rather than ownership.
    """
    cfg = state.config
    state.phase += 1
    rates = state.filtered_rates()
    n = state.n_slaves

    if remaining_sets is not None:
        counts = [len(remaining_sets.get(p, ())) for p in range(n)]
    elif isinstance(partition, BlockPartition):
        counts = partition.counts()
    else:
        counts = partition.counts(active)
    total = sum(counts)

    bounds = select_period(
        state.interaction_cost,
        movement_cost_per_balance(state, counts, rates),
        state.quantum,
        cfg,
    )
    period = bounds.period
    skips = {
        pid: hooks_to_skip(period, rates[pid], max(units_per_hook.get(pid, 1.0), 1e-9))
        for pid in range(n)
    }

    weights = [rates[pid] for pid in range(n)]
    minimum = 1 if total >= n else 0
    targets = proportional_counts(total, weights, minimum=minimum)

    t_cur = _completion_time(counts, rates)
    t_new = _completion_time(targets, rates)
    improvement = 0.0 if t_cur <= 0 else (t_cur - t_new) / t_cur
    deviation = _share_deviation(counts, targets)

    def no_move(reason: str | None) -> BalancerDecision:
        return BalancerDecision(
            phase=state.phase,
            transfers=[],
            period=period,
            skip_hooks=skips,
            rates=rates,
            t_current=t_cur,
            t_balanced=t_new,
            improvement=improvement,
            cancelled=reason,
            share_deviation=deviation,
        )

    if not allow_movement:
        return no_move("in-flight")
    if total == 0 or (
        improvement < cfg.improvement_threshold
        and deviation < cfg.improvement_threshold
    ):
        return no_move("threshold" if improvement > 0 else None)

    if remaining_sets is not None:
        transfers = transfers_from_sets(dict(remaining_sets), targets)
    elif isinstance(partition, BlockPartition):
        transfers = partition.transfers_toward(targets)
    else:
        transfers = partition.transfers_toward(targets, active)
    if not transfers:
        return no_move(None)

    if cfg.profitability_enabled:
        estimate = estimate_movement_cost(
            transfers,
            unit_bytes=state.unit_bytes,
            bandwidth=state.network.bandwidth,
            latency=state.network.latency,
            pack_cpu_per_unit=2.0e-5,
            fixed_cpu=1.0e-3,
            measured_per_unit=(
                state.move_cost_per_unit if state.measured_move_cost else None
            ),
        )
        total_rate = sum(rates.values())
        remaining_time = remaining_units / max(total_rate, 1e-9)
        horizon = min(
            remaining_time, cfg.profitability_horizon_periods * period
        )
        if not movement_profitable(estimate, t_cur, t_new, horizon):
            return no_move("profitability")

    return BalancerDecision(
        phase=state.phase,
        transfers=transfers,
        period=period,
        skip_hooks=skips,
        rates=rates,
        t_current=t_cur,
        t_balanced=t_new,
        improvement=improvement,
        share_deviation=deviation,
    )


def movement_cost_per_balance(
    state: BalancerState, counts: Sequence[int], rates: Mapping[int, float]
) -> float:
    """Typical cost of one work movement, used for the frequency bound.

    Scale: moving the imbalance of one period's worth of drift — roughly
    a tenth of a slave's allocation — at the measured per-unit cost.
    """
    if not counts:
        return 0.0
    typical_units = max(1.0, sum(counts) / len(counts) * 0.1)
    return state.move_cost_per_unit * typical_units
