"""Movement profitability determination (paper Section 3.2).

After redistribution instructions are generated, a more detailed
profitability phase compares the estimated cost of the work movement with
the projected benefit and cancels the movement if it cannot pay off
(following Willebeek-LeMair & Reeves' profitability framework, the
paper's reference [16]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError
from .partition import Transfer

__all__ = ["MovementEstimate", "estimate_movement_cost", "movement_profitable"]


@dataclass(frozen=True)
class MovementEstimate:
    """Predicted cost of executing a set of transfers."""

    total_units: int
    wire_time: float
    cpu_time: float

    @property
    def total_time(self) -> float:
        return self.wire_time + self.cpu_time


def estimate_movement_cost(
    transfers: Sequence[Transfer],
    unit_bytes: int,
    bandwidth: float,
    latency: float,
    pack_cpu_per_unit: float,
    fixed_cpu: float,
    measured_per_unit: float | None = None,
) -> MovementEstimate:
    """Estimate how long the given transfers take.

    When a measured per-unit movement cost is available (the runtime
    measures it each time work moves, Section 4.3), it overrides the
    analytic model.
    """
    if unit_bytes <= 0 or bandwidth <= 0:
        raise ConfigError("unit_bytes and bandwidth must be positive")
    total_units = sum(t.count for t in transfers)
    if total_units == 0:
        return MovementEstimate(0, 0.0, 0.0)
    if measured_per_unit is not None and measured_per_unit > 0:
        return MovementEstimate(
            total_units=total_units,
            wire_time=measured_per_unit * total_units,
            cpu_time=fixed_cpu * len(transfers),
        )
    wire = sum(latency + t.count * unit_bytes / bandwidth for t in transfers)
    cpu = fixed_cpu * len(transfers) + pack_cpu_per_unit * total_units * 2
    return MovementEstimate(total_units=total_units, wire_time=wire, cpu_time=cpu)


def movement_profitable(
    estimate: MovementEstimate,
    t_current: float,
    t_balanced: float,
    horizon: float,
) -> bool:
    """Does the projected benefit exceed the movement cost?

    ``t_current`` / ``t_balanced`` are the predicted per-period completion
    times of the current and proposed distributions; the saving accrues
    over the remaining computation, capped at ``horizon`` seconds of
    lookahead (rates may change again, so benefits far in the future are
    not credited).
    """
    if estimate.total_units == 0:
        return False
    saving_rate = max(0.0, (t_current - t_balanced) / max(t_current, 1e-12))
    projected_benefit = saving_rate * max(0.0, horizon)
    return projected_benefit > estimate.total_time
