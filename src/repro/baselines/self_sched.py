"""Central task-queue self-scheduling (paper Section 6, refs [7]-[10]).

A master keeps the loop iterations in a central queue; idle slaves
request the next chunk.  Chunking policies:

- :class:`ChunkPolicy` — fixed-size chunks (chunk self-scheduling).
- :class:`GuidedPolicy` — guided self-scheduling, chunk = ceil(R / P)
  (Polychronopoulos & Kuck).
- :class:`FactoringPolicy` — batches of P equal chunks, each batch half
  the remaining work (Hummel, Schonberg & Flynn).
- :class:`TrapezoidPolicy` — linearly decreasing chunk sizes from
  ``first`` to ``last`` (Tzen & Ni).

These schemes were designed for shared memory: the "queue access" there
is a cheap atomic op.  On a distributed-memory cluster each chunk must
also carry its input data from the master and return its results, which
is the locality cost the paper's iteration-ownership design avoids —
the comparison benchmark makes that cost visible.

Only PARALLEL_MAP-shaped plans (independent iterations, e.g. MM) are
supported, which mirrors the self-scheduling literature's assumption of
independent loop iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..compiler.plan import ExecutionPlan, LoopShape
from ..config import RunConfig
from ..errors import ProtocolError
from ..sim import Cluster, Compute, LoadGenerator, Recv, Send
from ..sim.rusage import RusageReport

__all__ = [
    "ChunkPolicy",
    "GuidedPolicy",
    "FactoringPolicy",
    "TrapezoidPolicy",
    "SelfSchedResult",
    "run_self_scheduling",
]


class ChunkPolicy:
    """Fixed-size chunking (CSS)."""

    def __init__(self, chunk: int = 1):
        if chunk < 1:
            raise ProtocolError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk

    name = "chunk"

    def next_chunk(self, remaining: int, n_slaves: int) -> int:
        return min(self.chunk, remaining)


class GuidedPolicy:
    """Guided self-scheduling (GSS): chunk = ceil(remaining / P)."""

    name = "guided"

    def next_chunk(self, remaining: int, n_slaves: int) -> int:
        return max(1, math.ceil(remaining / n_slaves))


class FactoringPolicy:
    """Factoring: allocate batches of P chunks, each batch covering half
    the remaining iterations."""

    name = "factoring"

    def __init__(self) -> None:
        self._batch_left = 0
        self._batch_chunk = 1

    def next_chunk(self, remaining: int, n_slaves: int) -> int:
        if self._batch_left <= 0:
            self._batch_chunk = max(1, math.ceil(remaining / (2 * n_slaves)))
            self._batch_left = n_slaves
        self._batch_left -= 1
        return min(self._batch_chunk, remaining)


class TrapezoidPolicy:
    """Trapezoid self-scheduling (TSS): chunks decrease linearly."""

    name = "trapezoid"

    def __init__(self, total: int, n_slaves: int, last: int = 1):
        first = max(1, total // (2 * n_slaves))
        n_steps = max(1, math.ceil(2 * total / (first + last)))
        self._chunk = float(first)
        self._delta = (first - last) / max(1, n_steps - 1)
        self._last = last

    def next_chunk(self, remaining: int, n_slaves: int) -> int:
        c = max(self._last, int(round(self._chunk)))
        self._chunk = max(float(self._last), self._chunk - self._delta)
        return min(max(1, c), remaining)


@dataclass
class SelfSchedResult:
    """Metrics of one self-scheduling run (mirrors RunResult fields)."""

    name: str
    policy: str
    n_slaves: int
    elapsed: float
    sequential_time: float
    rusage: RusageReport
    message_count: int
    bytes_sent: int
    chunks_served: int
    result: Any = None

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return self.rusage.efficiency(self.sequential_time, list(range(self.n_slaves)))


_REQ = "ss.request"
_WORK = "ss.work"
_DONE_CHUNK = "ss.chunkdone"


def _ss_master(ctx, plan: ExecutionPlan, policy, exec_num: bool, global_state, sink):
    n = ctx.n_slaves
    lo, hi = plan.unit_space()
    queue = list(range(lo, hi))
    kernels = plan.kernels
    chunks_served = 0
    live = n
    results: dict[int, list] = {p: [] for p in range(n)}
    while live > 0:
        msg = yield Recv(tag=_REQ)
        pid = msg.src
        if msg.payload is not None and msg.payload.get("data") is not None:
            units, data = msg.payload["units"], msg.payload["data"]
            results[pid].append((units, data))
        elif msg.payload is not None and "units" in msg.payload:
            results[pid].append((msg.payload["units"], None))
        if not queue:
            yield Send(pid, _WORK, {"units": ()}, 16)
            live -= 1
            continue
        size = policy.next_chunk(len(queue), n)
        chunk, queue = queue[:size], queue[size:]
        payload: dict[str, Any] = {"units": tuple(chunk)}
        if exec_num:
            payload["data"] = kernels.make_local(global_state, np.asarray(chunk))
        nbytes = (
            kernels.input_bytes(len(chunk))
            if exec_num
            else len(chunk) * plan.movement.unit_bytes
        )
        chunks_served += 1
        yield Send(pid, _WORK, payload, nbytes)
    sink["chunks"] = chunks_served
    sink["results"] = results


def _ss_slave(ctx, plan: ExecutionPlan, exec_num: bool):
    kernels = plan.kernels
    master = ctx.master_pid
    pending_report: dict[str, Any] | None = None
    while True:
        yield Send(master, _REQ, pending_report, 32)
        msg = yield Recv(src=master, tag=_WORK)
        units = msg.payload["units"]
        if not units:
            return
        arr = np.asarray(units)
        local = msg.payload.get("data")
        ops = plan.units_cost(0, units)

        def _do(local=local, arr=arr):
            kernels.run_units(local, 0, arr)

        yield Compute(ops, fn=_do if exec_num and local is not None else None)
        report: dict[str, Any] = {"units": units}
        if exec_num and local is not None:
            report["data"] = kernels.local_result(local)
        # The chunk's results travel back with the next request.
        pending_report = report


def run_self_scheduling(
    plan: ExecutionPlan,
    run_cfg: RunConfig,
    policy,
    loads: Mapping[int, LoadGenerator] | None = None,
    seed: int = 0,
) -> SelfSchedResult:
    """Run ``plan`` under central-queue self-scheduling."""
    if plan.shape is not LoopShape.PARALLEL_MAP:
        raise ProtocolError(
            "self-scheduling baseline supports independent iterations only"
        )
    cluster = Cluster(
        run_cfg.cluster, dict(loads or {}), engine=run_cfg.engine
    )
    exec_num = run_cfg.execute_numerics
    rng = np.random.default_rng(seed)
    global_state = plan.kernels.make_global(rng) if exec_num else None
    sink: dict[str, Any] = {}
    for pid in range(run_cfg.cluster.n_slaves):
        cluster.spawn(pid, _ss_slave, plan, exec_num)
    cluster.spawn(
        run_cfg.cluster.master_pid,
        _ss_master,
        plan,
        policy,
        exec_num,
        global_state,
        sink,
    )
    cluster.run()
    elapsed = max(
        cluster.task_finish_time(p) for p in range(run_cfg.cluster.n_processors)
    )
    result = None
    if exec_num:
        merged: dict[int, Any] = {}
        for pid, items in sink["results"].items():
            units = [u for us, _ in items for u in us]
            datas = [d for _, d in items if d is not None]
            if datas:
                # Per-chunk result matrices are zero outside their own
                # rows, so summing merges them.
                total = datas[0]
                for d in datas[1:]:
                    total = total + d
                merged[pid] = (np.asarray(units), total)
        result = plan.kernels.merge_results(global_state, merged) if merged else None
    return SelfSchedResult(
        name=plan.name,
        policy=policy.name,
        n_slaves=run_cfg.cluster.n_slaves,
        elapsed=elapsed,
        sequential_time=plan.total_ops() / run_cfg.cluster.processor.speed,
        rusage=cluster.rusage(elapsed),
        message_count=cluster.message_count,
        bytes_sent=cluster.bytes_sent,
        chunks_served=sink.get("chunks", 0),
        result=result,
    )
