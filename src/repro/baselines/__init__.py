"""Comparison schedulers from the paper's related work (Section 6).

- :mod:`self_sched` — central task-queue self-scheduling (chunk, guided,
  factoring, trapezoid), the shared-memory lineage the paper contrasts
  with; on a distributed-memory cluster every chunk ships its data, which
  is exactly the locality cost the paper's design avoids.
- :mod:`diffusion` — receiver/sender-initiated near-neighbour diffusion
  balancing (Willebeek-LeMair & Reeves / gradient-model style), which
  uses only local information.

The paper's *static block distribution* baseline is the DLB runtime with
``RunConfig.dlb_enabled=False`` (hooks compiled in but disabled).
"""

from .diffusion import run_diffusion
from .self_sched import (
    ChunkPolicy,
    FactoringPolicy,
    GuidedPolicy,
    TrapezoidPolicy,
    run_self_scheduling,
)

__all__ = [
    "ChunkPolicy",
    "GuidedPolicy",
    "FactoringPolicy",
    "TrapezoidPolicy",
    "run_self_scheduling",
    "run_diffusion",
]
