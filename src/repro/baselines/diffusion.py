"""Near-neighbour diffusion load balancing (paper Section 6, refs [16][17]).

No central balancer makes *placement* decisions: periodically each slave
exchanges its remaining-work count with its topology neighbours and
shifts iterations toward the lighter side when the imbalance exceeds a
threshold.  Decisions use only local information, so load gradients take
multiple exchange rounds to propagate across the network — the latency
the paper's global-information design avoids.

By default slaves form a chain (the original baseline); passing a
:class:`~repro.config.TopologySpec` (or setting one on the cluster spec)
makes the exchange graph topology-aware — ring, 2-D mesh, fat-tree, or
WAN-linked two-cluster neighbour sets from :mod:`repro.sim.network` —
and prices every message over the topology's routed links.

A passive coordinator only *detects termination* (it counts completed
units and broadcasts a stop notice) and gathers results; it takes no
balancing decisions, preserving the decentralised character.

Supports PARALLEL_MAP plans (independent iterations), as the diffusion
literature assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from ..compiler.plan import ExecutionPlan, LoopShape
from ..config import RunConfig, TopologySpec
from ..errors import ConfigError
from ..sim import Cluster, Compute, LoadGenerator, Poll, Recv, Send, Sleep
from ..sim.network import build_topology
from ..sim.rusage import RusageReport
from ..runtime.partition import proportional_counts

__all__ = ["DiffusionResult", "run_diffusion"]

_LOADINFO = "diff.load"
_WORK = "diff.work"
_PROGRESS = "diff.progress"
_TERM = "diff.term"
_RESULT = "diff.result"


@dataclass
class DiffusionResult:
    name: str
    n_slaves: int
    elapsed: float
    sequential_time: float
    rusage: RusageReport
    message_count: int
    bytes_sent: int
    moves: int
    units_moved: int
    result: Any = None
    topology: str = "chain"

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return self.rusage.efficiency(self.sequential_time, list(range(self.n_slaves)))


def _diff_slave(
    ctx,
    plan: ExecutionPlan,
    exec_num: bool,
    init_units: tuple[int, ...],
    local,
    neighbors: tuple[int, ...],
    exchange_every: int,
    threshold: int,
    stats: dict,
):
    kernels = plan.kernels
    pid = ctx.pid
    pending = sorted(init_units)
    done_units: list[int] = []
    unreported = 0
    counter = 0
    neighbor_load: dict[int, int] = {}
    terminated = False

    def intake():
        """Non-blocking intake of load info, shifted work, termination."""
        nonlocal terminated
        while True:
            msg = yield Poll(tag=_LOADINFO)
            if msg is None:
                break
            neighbor_load[msg.src] = msg.payload
        while True:
            msg = yield Poll(tag=_WORK)
            if msg is None:
                break
            units = list(msg.payload["units"])
            if exec_num and msg.payload.get("data") is not None:
                kernels.unpack_units(local, np.asarray(units), msg.payload["data"], {})
            pending.extend(units)
            pending.sort()
            stats["received"] = stats.get("received", 0) + len(units)
        msg = yield Poll(tag=_TERM)
        if msg is not None:
            terminated = True

    def exchange():
        """Advertise load, report progress, shift work if imbalanced."""
        nonlocal pending, unreported
        for nb in neighbors:
            yield Send(nb, _LOADINFO, len(pending), 16)
        if unreported:
            yield Send(ctx.master_pid, _PROGRESS, unreported, 16)
            unreported = 0
        yield from intake()
        for nb in neighbors:
            their = neighbor_load.get(nb)
            if their is None:
                continue
            excess = (len(pending) - their) // 2
            if excess >= threshold and excess <= len(pending):
                # Shift contiguous index ranges toward the neighbour:
                # higher-numbered neighbours take the tail, lower ones
                # the head (preserves locality on chains and rings).
                give = pending[-excess:] if nb > pid else pending[:excess]
                pending = pending[:-excess] if nb > pid else pending[excess:]
                payload: dict[str, Any] = {"units": tuple(give)}
                if exec_num:
                    payload["data"] = kernels.pack_units(local, np.asarray(give), {})
                yield Send(nb, _WORK, payload, len(give) * plan.movement.unit_bytes)
                stats["moves"] = stats.get("moves", 0) + 1
                stats["moved_units"] = stats.get("moved_units", 0) + len(give)
                neighbor_load[nb] = their + len(give)

    while not terminated:
        yield from intake()
        if terminated:
            break
        if not pending:
            # Idle: let neighbours see a zero load, then wait for work or
            # the termination notice.
            yield from exchange()
            if not pending and not terminated:
                yield Sleep(0.02)
            continue
        u = pending.pop(0)
        arr = np.array([u])
        yield Compute(
            plan.unit_cost(0, u),
            fn=(lambda: kernels.run_units(local, 0, arr)) if exec_num else None,
        )
        done_units.append(u)
        unreported += 1
        counter += 1
        if counter % exchange_every == 0:
            yield from exchange()

    if unreported:
        yield Send(ctx.master_pid, _PROGRESS, unreported, 16)
    payload = {"units": tuple(done_units)}
    if exec_num:
        payload["data"] = kernels.local_result(local)
    nbytes = kernels.result_bytes(len(done_units)) if exec_num else 64
    yield Send(ctx.master_pid, _RESULT, payload, nbytes)


def _diff_master(ctx, n_slaves: int, total_units: int, sink: dict):
    """Passive coordinator: termination detection + gather only."""
    done = 0
    while done < total_units:
        msg = yield Recv(tag=_PROGRESS)
        done += msg.payload
    for pid in range(n_slaves):
        yield Send(pid, _TERM, None, 16)
    results = {}
    for _ in range(n_slaves):
        msg = yield Recv(tag=_RESULT)
        results[msg.src] = msg.payload
    sink["results"] = results


def run_diffusion(
    plan: ExecutionPlan,
    run_cfg: RunConfig,
    loads: Mapping[int, LoadGenerator] | None = None,
    exchange_every: int = 2,
    threshold: int = 2,
    seed: int = 0,
    topology: TopologySpec | None = None,
) -> DiffusionResult:
    """Run ``plan`` under near-neighbour diffusion balancing.

    ``topology`` (or ``run_cfg.cluster.topology``) selects the exchange
    graph and prices messages over the topology's links; with neither,
    slaves form the legacy chain over a crossbar.
    """
    if plan.shape is not LoopShape.PARALLEL_MAP:
        raise ConfigError(
            "diffusion baseline supports PARALLEL_MAP plans (independent "
            f"iterations) only; plan {plan.name!r} has shape "
            f"{plan.shape.name}. PIPELINE and REDUCTION_FRONT loops need "
            "the central runtime (repro.runtime.run_application)."
        )
    n = run_cfg.cluster.n_slaves
    topo_spec = topology if topology is not None else run_cfg.cluster.topology
    cluster_spec = run_cfg.cluster
    neighbor_map: dict[int, tuple[int, ...]] | None = None
    topo_name = "chain"
    if topo_spec is not None:
        if topo_spec.n_members is None:
            topo_spec = replace(topo_spec, n_members=n)
        topo = build_topology(topo_spec, topo_spec.n_members, cluster_spec.network)
        neighbor_map = {pid: topo.neighbors(pid) for pid in range(n)}
        cluster_spec = replace(cluster_spec, topology=topo_spec)
        topo_name = topo_spec.kind
    cluster = Cluster(cluster_spec, dict(loads or {}), engine=run_cfg.engine)
    exec_num = run_cfg.execute_numerics
    rng = np.random.default_rng(seed)
    global_state = plan.kernels.make_global(rng) if exec_num else None
    lo, hi = plan.unit_space()
    counts = proportional_counts(hi - lo, [1.0] * n, minimum=1)
    stats: dict[str, int] = {}
    sink: dict[str, Any] = {}
    start = lo
    for pid in range(n):
        units = tuple(range(start, start + counts[pid]))
        start += counts[pid]
        local = (
            plan.kernels.make_local(global_state, np.asarray(units))
            if exec_num
            else None
        )
        if neighbor_map is not None:
            neighbors = neighbor_map[pid]
        else:  # legacy chain
            neighbors = tuple(
                nb for nb in (pid - 1, pid + 1) if 0 <= nb < n
            )
        cluster.spawn(
            pid, _diff_slave, plan, exec_num, units, local, neighbors,
            exchange_every, threshold, stats,
        )
    cluster.spawn(run_cfg.cluster.master_pid, _diff_master, n, hi - lo, sink)
    cluster.run()
    elapsed = max(
        cluster.task_finish_time(p) for p in range(run_cfg.cluster.n_processors)
    )
    result = None
    if exec_num and sink.get("results"):
        merged = {
            pid: (np.asarray(res["units"]), res.get("data"))
            for pid, res in sink["results"].items()
            if res.get("data") is not None and len(res["units"])
        }
        result = plan.kernels.merge_results(global_state, merged)
    return DiffusionResult(
        name=plan.name,
        n_slaves=n,
        elapsed=elapsed,
        sequential_time=plan.total_ops() / run_cfg.cluster.processor.speed,
        rusage=cluster.rusage(elapsed),
        message_count=cluster.message_count,
        bytes_sent=cluster.bytes_sent,
        moves=stats.get("moves", 0),
        units_moved=stats.get("moved_units", 0),
        result=result,
        topology=topo_name,
    )
