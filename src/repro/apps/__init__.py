"""The paper's applications: MM, SOR, and LU.

Each application module provides the sequential loop-nest IR (what the
paper's compiler would consume), the distribution directive, the numeric
kernels the generated SPMD program calls, and a ``build(...)`` helper
returning a compiled :class:`~repro.compiler.plan.ExecutionPlan`.
"""

from .adaptive import build_adaptive, build_particle
from .base import Application
from .lu import build_lu
from .matmul import build_matmul
from .sor import build_sor

REGISTRY = {
    "matmul": build_matmul,
    "sor": build_sor,
    "lu": build_lu,
    "adaptive": build_adaptive,
    "particle": build_particle,
}

__all__ = [
    "Application",
    "build_matmul",
    "build_sor",
    "build_lu",
    "build_adaptive",
    "build_particle",
    "REGISTRY",
]
