"""Successive overrelaxation (SOR): the paper's pipelined application.

The grid ``b`` is indexed ``b[j][i]`` (column-major like the paper's
Figure 3): columns ``j`` are distributed, rows ``i`` are the pipelined
dimension, strip-mined by the compiler.  The update

    b[j][i] = 0.493*(b[j][i-1] + b[j-1][i] + b[j][i+1] + b[j+1][i])
              - 0.972*b[j][i]

carries flow dependences at distance +1 (left neighbour's updated
column) and anti dependences at distance -1 (right neighbour's old
column) along ``j``, plus a recurrence along ``i`` — exactly the feature
set that forces restricted movement, pipelined boundary communication,
and the sweep-start halo exchange (communication outside the loop).

Local state holds the full grid array; each slave only ever reads/writes
its owned columns plus the neighbour halo columns, so in-place update
order reproduces the sequential semantics bit-for-bit.  Columns 0 and
``n-1`` (and rows 0/``n-1``) are fixed boundary values; distributed
units are the ``n-2`` interior columns (unit ``u`` <-> column ``u+1``)
and pipelined strips cover the ``n-2`` interior rows.  Unit ids equal
column indices (the distributed loop's index values), so the unit space
is ``[1, n-1)``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..compiler.ir import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Directive,
    Loop,
    Program,
    const,
    var,
)
from ..compiler.plan import AppKernels, ExecutionPlan
from ..config import GrainConfig
from ..errors import MovementError
from .base import Application

__all__ = [
    "sor_program",
    "sor_sequential_convergent",
    "sor_semantics",
    "sor_application",
    "build_sor",
    "SorKernels",
]

C1 = 0.493
C2 = -0.972
OPS_PER_ELEMENT = 6.0  # 4 adds, 2 multiplies


def sor_program(dynamic: bool = False) -> Program:
    """The sequential SOR loop nest.

    With ``dynamic=True`` the sweep loop is a data-dependent WHILE
    (sweep until the residual drops below ``tol``, capped at
    ``maxiter`` trips) — the Section 4.1 case where the master must run
    the loop condition's test.
    """
    i, j, n = var("i"), var("j"), var("n")
    update = Assign(
        target=ArrayRef("b", (j, i)),
        reads=(
            ArrayRef("b", (j, i - 1)),
            ArrayRef("b", (j - 1, i)),
            ArrayRef("b", (j, i + 1)),
            ArrayRef("b", (j + 1, i)),
            ArrayRef("b", (j, i)),
        ),
        ops=OPS_PER_ELEMENT,
        label=(
            "b[j][i] = 0.493*(b[j][i-1]+b[j-1][i]"
            "+b[j][i+1]+b[j+1][i]) - 0.972*b[j][i]"
        ),
    )
    nest = Loop(
        "iter",
        const(0),
        var("maxiter"),
        (
            Loop(
                "i",
                const(1),
                n - 1,
                (Loop("j", const(1), n - 1, (update,)),),
            ),
        ),
        while_condition="max|delta| > tol" if dynamic else None,
    )
    return Program(
        name="sor",
        params=("n", "maxiter") + (("tol",) if dynamic else ()),
        arrays=(ArrayDecl("b", (n, n)),),
        body=(nest,),
    )


def sor_semantics() -> dict:
    """Executable semantics for the IR (see repro.compiler.interp)."""
    return {
        "b[j][i] = 0.493*(b[j][i-1]+b[j-1][i]+b[j][i+1]+b[j+1][i]) - 0.972*b[j][i]": (
            lambda up, left, down, right, self_: C1 * (up + left + down + right)
            + C2 * self_
        ),
    }


def sor_directive() -> Directive:
    return Directive(distribute="j", distributed_arrays=(("b", 0),))


def _update_cell(G: np.ndarray, j: int, i: int) -> None:
    G[j, i] = (
        C1 * (G[j, i - 1] + G[j - 1, i] + G[j, i + 1] + G[j + 1, i]) + C2 * G[j, i]
    )


def sor_sequential(G0: np.ndarray, maxiter: int) -> np.ndarray:
    """Reference sequential sweep (in place on a copy)."""
    G = G0.copy()
    n = G.shape[0]
    for _ in range(maxiter):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                _update_cell(G, j, i)
    return G


def sor_sequential_convergent(
    G0: np.ndarray, maxiter: int, tol: float
) -> tuple[np.ndarray, int]:
    """Sweep until ``max|delta| <= tol`` (at most ``maxiter`` sweeps);
    returns the grid and the number of sweeps executed.  This is the
    WHILE-loop semantics the distributed runtime must reproduce exactly,
    including the sweep count."""
    G = G0.copy()
    n = G.shape[0]
    sweeps = 0
    for _ in range(maxiter):
        residual = 0.0
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                old = G[j, i]
                _update_cell(G, j, i)
                delta = abs(G[j, i] - old)
                if delta > residual:
                    residual = delta
        sweeps += 1
        if residual <= tol:
            break
    return G, sweeps


class SorKernels(AppKernels):
    """Numeric kernels for the generated SOR program."""

    def __init__(self, params: Mapping[str, float]):
        self.n = int(params["n"])
        self.maxiter = int(params["maxiter"])
        # WHILE-repetition mode: track per-sweep residuals.
        self.tol = float(params["tol"]) if "tol" in params else None

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _cols(local: dict) -> list[int]:
        return local["cols"]

    @staticmethod
    def _rows(rows: tuple[int, int]) -> range:
        """Strip coordinates -> interior row indices."""
        return range(rows[0] + 1, rows[1] + 1)

    # -- setup ------------------------------------------------------------

    def make_global(self, rng: np.random.Generator) -> dict[str, Any]:
        return {"G": rng.standard_normal((self.n, self.n))}

    def make_local(self, global_state: dict, units: np.ndarray) -> dict[str, Any]:
        n = self.n
        G = np.zeros((n, n))
        cols = [int(u) for u in units]
        G[cols] = global_state["G"][cols]
        G[0] = global_state["G"][0]
        G[n - 1] = global_state["G"][n - 1]
        return {"G": G, "cols": sorted(int(u) for u in units), "residual": 0.0}

    def input_bytes(self, n_units: int) -> int:
        return 8 * self.n * (n_units + 2)

    def result_bytes(self, n_units: int) -> int:
        return 8 * self.n * n_units

    def boundary_bytes(self, n_rows: int) -> int:
        return 8 * n_rows

    # -- pipeline execution -------------------------------------------------

    def sweep_first_boundary(self, local: dict, rep: int) -> np.ndarray:
        """Old values of my first owned column (sent to the left
        neighbour as its right halo for this sweep)."""
        G = local["G"]
        return G[self._cols(local)[0], :].copy()

    def set_right_halo(self, local: dict, rep: int, halo: np.ndarray) -> None:
        G = local["G"]
        G[self._cols(local)[-1] + 1, :] = halo

    def run_block(
        self,
        local: dict,
        rep: int,
        rows: tuple[int, int],
        left_halo: np.ndarray | None,
    ) -> np.ndarray:
        G = local["G"]
        jcols = self._cols(local)
        if left_halo is not None:
            G[jcols[0] - 1, rows[0] + 1 : rows[1] + 1] = left_halo
        if self.tol is None:
            for i in self._rows(rows):
                for j in jcols:
                    _update_cell(G, j, i)
        else:
            self._update_tracked(local, jcols, rows)
        return G[jcols[-1], rows[0] + 1 : rows[1] + 1].copy()

    def _update_tracked(self, local: dict, jcols, rows: tuple[int, int]) -> None:
        """Update cells while tracking the sweep's max |delta| (the local
        contribution to the WHILE condition's residual)."""
        G = local["G"]
        residual = local["residual"]
        for i in self._rows(rows):
            for j in jcols:
                old = G[j, i]
                _update_cell(G, j, i)
                delta = abs(G[j, i] - old)
                if delta > residual:
                    residual = delta
        local["residual"] = residual

    def sweep_residual(self, local: dict, rep: int) -> float | None:
        """Local max |delta| of the sweep just finished; resets for the
        next sweep."""
        if self.tol is None:
            return None
        res = local["residual"]
        local["residual"] = 0.0
        return res

    def catchup_and_refresh(
        self,
        local: dict,
        rep: int,
        units: np.ndarray,
        row_blocks: Sequence[tuple[int, int]],
    ) -> list[np.ndarray]:
        """Bring just-received (behind) columns up to date over the missed
        strips; my own last pre-existing column serves as their left halo
        (its values per strip are final), the payload halo as their right
        halo.  Returns refreshed boundary values per strip."""
        G = local["G"]
        jmoved = sorted(int(u) for u in units)
        refreshed = []
        for lo, hi in row_blocks:
            if self.tol is None:
                for i in range(lo + 1, hi + 1):
                    for j in jmoved:
                        _update_cell(G, j, i)
            else:
                self._update_tracked(local, jmoved, (lo, hi))
            refreshed.append(G[jmoved[-1], lo + 1 : hi + 1].copy())
        return refreshed

    # -- movement -------------------------------------------------------------

    def pack_units(self, local: dict, units: np.ndarray, ctx: dict) -> dict:
        G = local["G"]
        cols = local["cols"]
        units_l = sorted(int(u) for u in units)
        for u in units_l:
            if u not in cols:
                raise MovementError(f"packing unowned SOR column {u}")
        payload: dict[str, Any] = {"cols_data": G[units_l, :].copy()}
        remaining = [u for u in cols if u not in units_l]
        if not remaining:
            raise MovementError(
                f"SOR slave cannot give away all columns "
                f"(owned={cols}, giving={units_l})"
            )
        if ctx.get("direction") == "to_left":
            # Snapshot of my new first column: its values at rows the
            # receiver will catch up over (and beyond) are still the old
            # ones, exactly what the right halo needs.
            payload["halo"] = G[remaining[0], :].copy()
        local["cols"] = remaining
        return payload

    def unpack_units(
        self, local: dict, units: np.ndarray, payload: dict, ctx: dict
    ) -> None:
        G = local["G"]
        units_l = sorted(int(u) for u in units)
        G[units_l, :] = payload["cols_data"]
        local["cols"] = sorted(set(local["cols"]) | set(units_l))
        if ctx.get("direction") == "from_right":
            G[units_l[-1] + 1, :] = payload["halo"]

    def extract_units(self, local: dict, units: np.ndarray, ctx: dict) -> dict:
        """Checkpoint-rollback extraction: read-only, and — unlike
        :meth:`pack_units` — allowed to cover a dead slave's *entire*
        ownership.  No halo travels: rollback grants restart at the top
        of the barrier sweep, where halo values flow through the normal
        sweep-start exchange."""
        G = local["G"]
        units_l = sorted(int(u) for u in units)
        return {"cols_data": G[units_l, :].copy()}

    # -- gather -------------------------------------------------------------

    def local_result(self, local: dict) -> np.ndarray:
        return local["G"]

    def merge_results(self, global_state: dict, parts: Mapping[int, Any]) -> np.ndarray:
        n = self.n
        G = np.zeros((n, n))
        G[0] = global_state["G"][0]
        G[n - 1] = global_state["G"][n - 1]
        for _pid, (units, data) in parts.items():
            cols = [int(u) for u in units]
            if cols:
                G[cols] = data[cols]
        return G

    def sequential(self, global_state: dict) -> np.ndarray:
        if self.tol is not None:
            G, _sweeps = sor_sequential_convergent(
                global_state["G"], self.maxiter, self.tol
            )
            return G
        return sor_sequential(global_state["G"], self.maxiter)


def sor_application() -> Application:
    """IR + directive + kernels bundle for SOR (static repetitions)."""
    return Application(
        name="sor",
        program=sor_program(),
        directive=sor_directive(),
        kernels_factory=lambda params: SorKernels(params),
    )


def build_sor(
    n: int = 2000,
    maxiter: int = 15,
    tol: float | None = None,
    grain: GrainConfig | None = None,
    n_slaves_hint: int = 8,
) -> ExecutionPlan:
    """Compile the SOR application (the paper uses n=2000).

    With ``tol`` set, the sweep loop becomes a data-dependent WHILE
    (converge to ``max|delta| <= tol``, capped at ``maxiter`` sweeps).
    """
    dynamic = tol is not None
    app = Application(
        name="sor",
        program=sor_program(dynamic=dynamic),
        directive=sor_directive(),
        kernels_factory=lambda params: SorKernels(params),
    )
    params: dict = {"n": n, "maxiter": maxiter}
    if dynamic:
        params["tol"] = tol
    return app.compile(params, grain=grain, n_slaves_hint=n_slaves_hint)
