"""Shared application plumbing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..compiler.codegen import compile_program
from ..compiler.ir import Directive, Program
from ..compiler.plan import AppKernels, ExecutionPlan
from ..config import GrainConfig

__all__ = ["Application"]


@dataclass
class Application:
    """A paper application: sequential IR + directive + kernels."""

    name: str
    program: Program
    directive: Directive
    kernels_factory: Callable[[Mapping[str, float]], AppKernels]

    def compile(
        self,
        params: Mapping[str, float],
        grain: GrainConfig | None = None,
        n_slaves_hint: int = 8,
    ) -> ExecutionPlan:
        """Run the parallelizing compiler on this application."""
        kernels = self.kernels_factory(params)
        return compile_program(
            self.program,
            self.directive,
            kernels,
            params,
            grain=grain,
            n_slaves_hint=n_slaves_hint,
        )
