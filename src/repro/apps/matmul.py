"""Matrix multiplication (MM): the paper's parallel-map application.

``C = A @ B`` with rows of ``A``/``C`` distributed (owner computes) and
``B`` replicated.  No loop-carried dependences, so movement is
unrestricted (paper Figure 1a) and each moved unit carries its A row and
C row.  Table 1 classifies MM as repeatedly executed, so the IR wraps
the distributed loop in a ``rep`` loop (``reps`` defaults to 1 for the
Figure 5/7 experiments).

Per-iteration cost: one row of C costs ``2*n*n`` operations, giving the
paper's ~275 s sequential time for 500x500 at ~1 Mop/s (Sun 4/330).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..compiler.ir import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Directive,
    Loop,
    Program,
    const,
    var,
)
from ..compiler.plan import AppKernels, ExecutionPlan
from ..config import GrainConfig
from .base import Application

__all__ = [
    "matmul_program",
    "matmul_semantics",
    "matmul_application",
    "build_matmul",
    "MatmulKernels",
]

OPS_PER_ELEMENT = 2.0  # multiply + add


def matmul_program() -> Program:
    """The sequential MM loop nest.

    Each repetition recomputes the product from scratch (the ``c[i][j] =
    0`` initialisation makes the loop idempotent across repetitions,
    matching the kernels' semantics).
    """
    i, j, k, rep, n = var("i"), var("j"), var("k"), var("rep"), var("n")
    init = Assign(
        target=ArrayRef("c", (i, j)),
        reads=(),
        ops=0.0,
        label="c[i][j] = 0",
    )
    inner = Assign(
        target=ArrayRef("c", (i, j)),
        reads=(ArrayRef("c", (i, j)), ArrayRef("a", (i, k)), ArrayRef("b", (k, j))),
        ops=OPS_PER_ELEMENT,
        label="c[i][j] += a[i][k] * b[k][j]",
    )
    nest = Loop(
        "rep",
        const(0),
        var("reps"),
        (
            Loop(
                "i",
                const(0),
                n,
                (
                    Loop(
                        "j",
                        const(0),
                        n,
                        (init, Loop("k", const(0), n, (inner,))),
                    ),
                ),
            ),
        ),
    )
    return Program(
        name="matmul",
        params=("n", "reps"),
        arrays=(
            ArrayDecl("a", (n, n)),
            ArrayDecl("b", (n, n)),
            ArrayDecl("c", (n, n)),
        ),
        body=(nest,),
    )


def matmul_semantics() -> dict:
    """Executable semantics for the IR (see repro.compiler.interp)."""
    return {
        "c[i][j] = 0": lambda: 0.0,
        "c[i][j] += a[i][k] * b[k][j]": lambda c, a, b: c + a * b,
    }


def matmul_directive() -> Directive:
    return Directive(
        distribute="i",
        distributed_arrays=(("a", 0), ("c", 0)),
        repetitions="rep",
    )


class MatmulKernels(AppKernels):
    """Numeric kernels for the generated MM program."""

    def __init__(self, params: Mapping[str, float]):
        self.n = int(params["n"])

    # -- setup ----------------------------------------------------------

    def make_global(self, rng: np.random.Generator) -> dict[str, Any]:
        n = self.n
        return {
            "A": rng.standard_normal((n, n)),
            "B": rng.standard_normal((n, n)),
        }

    def make_local(self, global_state: dict, units: np.ndarray) -> dict[str, Any]:
        n = self.n
        local = {
            "A": np.zeros((n, n)),
            "B": global_state["B"].copy(),
            "C": np.zeros((n, n)),
        }
        local["A"][units] = global_state["A"][units]
        return local

    def input_bytes(self, n_units: int) -> int:
        # Owned A rows + replicated B.
        return 8 * self.n * (n_units + self.n)

    def result_bytes(self, n_units: int) -> int:
        return 8 * self.n * n_units

    # -- computation ------------------------------------------------------

    def run_units(self, local: dict, rep: int, units: np.ndarray) -> None:
        local["C"][units] = local["A"][units] @ local["B"]

    # -- movement ----------------------------------------------------------

    def pack_units(self, local: dict, units: np.ndarray, ctx: dict) -> dict:
        return {"A": local["A"][units].copy(), "C": local["C"][units].copy()}

    def unpack_units(
        self, local: dict, units: np.ndarray, payload: dict, ctx: dict
    ) -> None:
        local["A"][units] = payload["A"]
        local["C"][units] = payload["C"]

    # -- gather -------------------------------------------------------------

    def local_result(self, local: dict) -> dict:
        # The runtime pairs this with the owned unit list; ship only the
        # owned C rows, in unit order.
        return local["C"]

    def merge_results(self, global_state: dict, parts: Mapping[int, Any]) -> np.ndarray:
        n = self.n
        C = np.zeros((n, n))
        for _pid, (units, data) in parts.items():
            if len(units):
                C[units] = data[units]
        return C

    def sequential(self, global_state: dict) -> np.ndarray:
        return global_state["A"] @ global_state["B"]


def matmul_application() -> Application:
    """IR + directive + kernels bundle for MM."""
    return Application(
        name="matmul",
        program=matmul_program(),
        directive=matmul_directive(),
        kernels_factory=lambda params: MatmulKernels(params),
    )


def build_matmul(
    n: int = 500,
    reps: int = 1,
    grain: GrainConfig | None = None,
    n_slaves_hint: int = 8,
) -> ExecutionPlan:
    """Compile the MM application (the paper uses n=500)."""
    return matmul_application().compile(
        {"n": n, "reps": reps}, grain=grain, n_slaves_hint=n_slaves_hint
    )
