"""LU decomposition (no pivoting): the paper's shrinking application.

Columns are distributed.  At elimination step ``k`` the owner of column
``k`` scales it into multipliers (the owner-computed "front") and
broadcasts it — under dynamic ownership other slaves cannot compute the
owner locally, so broadcast-and-discard is the data-location strategy of
Section 4.6.  Every other slave then updates its *active* columns
(``j > k``); columns at or below the front are labelled inactive and are
never moved (Section 4.7).  Iteration size shrinks as ``2*(n-k-1)`` ops
per column, so the balancer's automatic frequency selection stretches
the hook skip count as the run progresses.

The test matrices are diagonally dominant, so factoring without
pivoting is numerically safe.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..compiler.ir import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Directive,
    Loop,
    Program,
    const,
    var,
)
from ..compiler.plan import AppKernels, ExecutionPlan
from ..config import GrainConfig
from ..errors import MovementError
from .base import Application

__all__ = [
    "lu_program",
    "lu_semantics",
    "lu_application",
    "build_lu",
    "LuKernels",
    "lu_sequential",
]


def lu_program() -> Program:
    """The sequential LU elimination loop nest (no pivoting)."""
    i, i2, j, k, n = var("i"), var("i2"), var("j"), var("k"), var("n")
    pivot_scale = Loop(
        "i2",
        k + 1,
        n,
        (
            Assign(
                target=ArrayRef("a", (i2, k)),
                reads=(ArrayRef("a", (i2, k)), ArrayRef("a", (k, k))),
                ops=1.0,
                label="a[i2][k] /= a[k][k]",
            ),
        ),
    )
    update = Loop(
        "j",
        k + 1,
        n,
        (
            Loop(
                "i",
                k + 1,
                n,
                (
                    Assign(
                        target=ArrayRef("a", (i, j)),
                        reads=(
                            ArrayRef("a", (i, j)),
                            ArrayRef("a", (i, k)),
                            ArrayRef("a", (k, j)),
                        ),
                        ops=2.0,
                        label="a[i][j] -= a[i][k] * a[k][j]",
                    ),
                ),
            ),
        ),
    )
    nest = Loop("k", const(0), n - 1, (pivot_scale, update))
    return Program(
        name="lu",
        params=("n",),
        arrays=(ArrayDecl("a", (n, n)),),
        body=(nest,),
    )


def lu_semantics() -> dict:
    """Executable semantics for the IR (see repro.compiler.interp)."""
    return {
        "a[i2][k] /= a[k][k]": lambda a_ik, a_kk: a_ik / a_kk,
        "a[i][j] -= a[i][k] * a[k][j]": lambda a_ij, a_ik, a_kj: a_ij - a_ik * a_kj,
    }


def lu_directive() -> Directive:
    return Directive(distribute="j", distributed_arrays=(("a", 1),))


def lu_sequential(M0: np.ndarray) -> np.ndarray:
    """In-place LU (L below diagonal with unit diagonal implied, U on and
    above), no pivoting."""
    M = M0.copy()
    n = M.shape[0]
    for k in range(n - 1):
        M[k + 1 :, k] /= M[k, k]
        M[k + 1 :, k + 1 :] -= np.outer(M[k + 1 :, k], M[k, k + 1 :])
    return M


class LuKernels(AppKernels):
    """Numeric kernels for the generated LU program."""

    def __init__(self, params: Mapping[str, float]):
        self.n = int(params["n"])

    # -- setup -----------------------------------------------------------

    def make_global(self, rng: np.random.Generator) -> dict[str, Any]:
        n = self.n
        M = rng.standard_normal((n, n)) + n * np.eye(n)
        return {"M": M}

    def make_local(self, global_state: dict, units: np.ndarray) -> dict[str, Any]:
        n = self.n
        G = np.zeros((n, n))
        cols = [int(u) for u in units]
        G[:, cols] = global_state["M"][:, cols]
        return {"G": G, "cols": sorted(cols)}

    def input_bytes(self, n_units: int) -> int:
        return 8 * self.n * n_units

    def result_bytes(self, n_units: int) -> int:
        return 8 * self.n * n_units

    def front_bytes(self, rep: int) -> int:
        return 8 * max(1, self.n - rep - 1)

    # -- reduction-front execution -------------------------------------------

    def compute_front(self, local: dict, rep: int) -> np.ndarray:
        """Scale column ``rep`` into multipliers; returns them for
        broadcast."""
        G = local["G"]
        k = rep
        G[k + 1 :, k] = G[k + 1 :, k] / G[k, k]
        return G[k + 1 :, k].copy()

    def apply_front(
        self, local: dict, rep: int, payload: np.ndarray, units: np.ndarray
    ) -> None:
        G = local["G"]
        k = rep
        cols = [int(u) for u in units if u > k]
        if cols and payload is not None:
            G[k + 1 :, cols] -= np.outer(payload, G[k, cols])

    # -- movement ----------------------------------------------------------------

    def pack_units(self, local: dict, units: np.ndarray, ctx: dict) -> np.ndarray:
        cols = local["cols"]
        units_l = sorted(int(u) for u in units)
        for u in units_l:
            if u not in cols:
                raise MovementError(f"packing unowned LU column {u}")
        data = local["G"][:, units_l].copy()
        local["cols"] = [u for u in cols if u not in units_l]
        return data

    def unpack_units(
        self, local: dict, units: np.ndarray, payload: np.ndarray, ctx: dict
    ) -> None:
        units_l = sorted(int(u) for u in units)
        local["G"][:, units_l] = payload
        local["cols"] = sorted(set(local["cols"]) | set(units_l))

    # -- gather --------------------------------------------------------------------

    def local_result(self, local: dict) -> np.ndarray:
        return local["G"]

    def merge_results(self, global_state: dict, parts: Mapping[int, Any]) -> np.ndarray:
        n = self.n
        M = np.zeros((n, n))
        for _pid, (units, data) in parts.items():
            cols = [int(u) for u in units]
            if cols:
                M[:, cols] = data[:, cols]
        return M

    def sequential(self, global_state: dict) -> np.ndarray:
        return lu_sequential(global_state["M"])


def lu_application() -> Application:
    """IR + directive + kernels bundle for LU."""
    return Application(
        name="lu",
        program=lu_program(),
        directive=lu_directive(),
        kernels_factory=lambda params: LuKernels(params),
    )


def build_lu(
    n: int = 600,
    grain: GrainConfig | None = None,
    n_slaves_hint: int = 8,
) -> ExecutionPlan:
    """Compile the LU application."""
    return lu_application().compile({"n": n}, grain=grain, n_slaves_hint=n_slaves_hint)
