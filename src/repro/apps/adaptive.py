"""ADAPT: an irregular application with data-dependent iteration sizes.

None of the paper's three applications has a "yes" in Table 1's last
row; this fourth application exercises it.  It models an adaptive cell
relaxation: each distributed iteration owns a cell whose refinement
level is data — a conditional in the loop body decides how much work the
cell needs, so iteration cost cannot be predicted by the compiler
(Section 2.1: "the presence of conditionals in the distributed loop
makes it difficult to predict the cost of different iterations").

The compiler's cost model supplies only the *expected* cost; at run time
the kernels report the actual per-cell cost (``AppKernels.unit_ops``),
which also drifts across repetitions as cells refine and coarsen.  The
load balancer never sees the costs — it measures work-units/sec, so
intrinsic cost imbalance is corrected the same way competing-load
imbalance is.  The companion experiment shows DLB fixing a skewed cost
distribution on a *dedicated* cluster, where a static distribution
leaves most processors idle.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..compiler.ir import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Conditional,
    Directive,
    Loop,
    Program,
    const,
    var,
)
from ..compiler.plan import AppKernels, ExecutionPlan
from ..config import GrainConfig
from .base import Application

__all__ = [
    "adaptive_program",
    "adaptive_application",
    "build_adaptive",
    "build_particle",
    "particle_application",
    "AdaptiveKernels",
    "ParticleKernels",
]

BASE_OPS = 200.0  # cost of one relaxation step of one cell
REFINED_PROBABILITY = 0.25  # compiler's estimate of the conditional
REFINED_EXTRA_STEPS = 12.0  # extra relaxation steps for refined cells


def adaptive_program() -> Program:
    """for rep: for cell (distributed): relax; if refined: extra steps."""
    cell, n = var("cell"), var("n")
    relax = Assign(
        target=ArrayRef("state", (cell,)),
        reads=(ArrayRef("state", (cell,)),),
        ops=BASE_OPS,
        label="state[cell] = relax(state[cell])",
    )
    refine = Conditional(
        "refined(cell)",
        (
            Assign(
                target=ArrayRef("state", (cell,)),
                reads=(ArrayRef("state", (cell,)),),
                ops=BASE_OPS * REFINED_EXTRA_STEPS,
                label="state[cell] = deep_relax(state[cell])",
            ),
        ),
        probability=REFINED_PROBABILITY,
    )
    nest = Loop(
        "rep",
        const(0),
        var("reps"),
        (Loop("cell", const(0), n, (relax, refine)),),
    )
    return Program(
        name="adaptive",
        params=("n", "reps"),
        arrays=(ArrayDecl("state", (n,)),),
        body=(nest,),
    )


def adaptive_directive() -> Directive:
    return Directive(
        distribute="cell", distributed_arrays=(("state", 0),), repetitions="rep"
    )


class AdaptiveKernels(AppKernels):
    """Kernels with data-dependent, drifting per-cell costs.

    Refinement levels live in the distributed state and move with their
    cells, so a migrated cell costs its new owner exactly what it would
    have cost the old one.
    """

    def __init__(self, params: Mapping[str, float]):
        self.n = int(params["n"])
        self.reps = int(params.get("reps", 1))

    def make_global(self, rng: np.random.Generator) -> dict[str, Any]:
        n = self.n
        # Skewed refinement: a contiguous hot region is deeply refined
        # (the worst case for a static block distribution).
        levels = np.zeros(n)
        hot = slice(0, max(1, n // 5))
        levels[hot] = rng.integers(
            6, int(REFINED_EXTRA_STEPS) + 1, size=levels[hot].shape
        )
        # Per-rep multiplicative drift: cells refine/coarsen over time.
        drift = rng.uniform(0.9, 1.1, size=(self.reps, n))
        return {"levels": levels, "drift": drift, "state": rng.standard_normal(n)}

    def make_local(self, global_state: dict, units: np.ndarray) -> dict[str, Any]:
        n = self.n
        local = {
            "state": np.zeros(n),
            "levels": np.zeros(n),
            "drift": global_state["drift"].copy(),
            "steps": np.zeros(n),
        }
        local["state"][units] = global_state["state"][units]
        local["levels"][units] = global_state["levels"][units]
        return local

    def input_bytes(self, n_units: int) -> int:
        return 8 * n_units * (2 + self.reps)

    def result_bytes(self, n_units: int) -> int:
        return 8 * n_units * 2

    # -- cost + computation ----------------------------------------------

    def unit_ops(self, local: dict, rep: int, unit: int) -> float:
        level = float(local["levels"][unit]) * float(local["drift"][rep, unit])
        return BASE_OPS * (1.0 + level)

    def run_units(self, local: dict, rep: int, units: np.ndarray) -> None:
        # Deterministic relaxation whose step count is the cell's cost —
        # the result encodes exactly how much work was done, so the
        # verifier can prove no step was skipped or duplicated.
        for u in units:
            steps = 1.0 + float(local["levels"][u]) * float(local["drift"][rep, u])
            local["state"][u] = np.tanh(local["state"][u]) + 1e-3 * steps
            local["steps"][u] += steps

    # -- movement -----------------------------------------------------------

    def pack_units(self, local: dict, units: np.ndarray, ctx: dict) -> dict:
        return {
            "state": local["state"][units].copy(),
            "levels": local["levels"][units].copy(),
            "steps": local["steps"][units].copy(),
        }

    def unpack_units(
        self, local: dict, units: np.ndarray, payload: dict, ctx: dict
    ) -> None:
        local["state"][units] = payload["state"]
        local["levels"][units] = payload["levels"]
        local["steps"][units] = payload["steps"]

    # -- gather ----------------------------------------------------------------

    def local_result(self, local: dict) -> dict:
        return {"state": local["state"], "steps": local["steps"]}

    def merge_results(self, global_state: dict, parts: Mapping[int, Any]) -> dict:
        n = self.n
        state = np.zeros(n)
        steps = np.zeros(n)
        for _pid, (units, data) in parts.items():
            if len(units):
                state[units] = data["state"][units]
                steps[units] = data["steps"][units]
        return {"state": state, "steps": steps}

    def sequential(self, global_state: dict) -> dict:
        local = self.make_local(global_state, np.arange(self.n))
        for rep in range(self.reps):
            self.run_units(local, rep, np.arange(self.n))
        return {"state": local["state"], "steps": local["steps"]}


def adaptive_application() -> Application:
    """IR + directive + kernels bundle for ADAPT."""
    return Application(
        name="adaptive",
        program=adaptive_program(),
        directive=adaptive_directive(),
        kernels_factory=lambda params: AdaptiveKernels(params),
    )


def build_adaptive(
    n: int = 400,
    reps: int = 3,
    grain: GrainConfig | None = None,
    n_slaves_hint: int = 8,
) -> ExecutionPlan:
    """Compile the ADAPT application."""
    return adaptive_application().compile(
        {"n": n, "reps": reps}, grain=grain, n_slaves_hint=n_slaves_hint
    )


#: Lognormal shape of the particle refinement levels; at 1.2 most cells
#: are near-empty and a few hold most of the particles.
PARTICLE_SIGMA = 1.2


class ParticleKernels(AdaptiveKernels):
    """ADAPT kernels with a heavy-tailed, scattered cost distribution.

    Models a particle code: each cell's refinement level is the (log-
    normally distributed) number of particles it holds, and hot cells
    are scattered over the whole index space instead of packed into one
    block.  A static block split cannot dodge the tail, and neither can
    a contiguous shard boundary move — this is the workload class where
    per-unit schedulers (work stealing, self-scheduling) earn their
    keep over the paper's shard redistribution.
    """

    def make_global(self, rng: np.random.Generator) -> dict[str, Any]:
        n = self.n
        # Heavy-tailed levels, capped at the deep-relax maximum the
        # cost model knows about, scattered by construction (iid).
        levels = np.minimum(
            rng.lognormal(mean=0.0, sigma=PARTICLE_SIGMA, size=n),
            REFINED_EXTRA_STEPS,
        )
        drift = rng.uniform(0.9, 1.1, size=(self.reps, n))
        return {"levels": levels, "drift": drift, "state": rng.standard_normal(n)}


def particle_application() -> Application:
    """IR + directive + kernels bundle for the particle variant."""
    program = adaptive_program()
    program = Program(
        name="particle",
        params=program.params,
        arrays=program.arrays,
        body=program.body,
    )
    return Application(
        name="particle",
        program=program,
        directive=adaptive_directive(),
        kernels_factory=lambda params: ParticleKernels(params),
    )


def build_particle(
    n: int = 400,
    reps: int = 3,
    grain: GrainConfig | None = None,
    n_slaves_hint: int = 8,
) -> ExecutionPlan:
    """Compile the heavy-tailed particle variant of ADAPT."""
    return particle_application().compile(
        {"n": n, "reps": reps}, grain=grain, n_slaves_hint=n_slaves_hint
    )
