"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      — run one application on a simulated cluster and print
                 the paper's metrics.
- ``figures``  — regenerate the paper's tables/figures (all or by name).
- ``source``   — show an application's generated SPMD program listing.
- ``features`` — print the Table 1 feature matrix.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps import REGISTRY
from .config import BalancerConfig, ClusterSpec, ProcessorSpec, RunConfig
from .runtime import run_application
from .sim import ConstantLoad, OscillatingLoad

__all__ = ["main"]


def _build_plan(app: str, n: int, n_slaves: int):
    builder = REGISTRY[app]
    if app == "sor":
        return builder(n=n, n_slaves_hint=n_slaves)
    return builder(n=n, n_slaves_hint=n_slaves)


def _cmd_run(args: argparse.Namespace) -> int:
    plan = _build_plan(args.app, args.n, args.slaves)
    loads = {}
    if args.load_slave is not None:
        gen = (
            OscillatingLoad(k=args.load_tasks, period=20.0, duration=10.0)
            if args.oscillating
            else ConstantLoad(k=args.load_tasks)
        )
        loads[args.load_slave] = gen
    cfg = RunConfig(
        cluster=ClusterSpec(
            n_slaves=args.slaves, processor=ProcessorSpec(speed=args.speed)
        ),
        balancer=BalancerConfig(pipelined=not args.synchronous),
        execute_numerics=args.numerics,
        dlb_enabled=not args.no_dlb,
    )
    res = run_application(plan, cfg, loads=loads, seed=args.seed)
    print(res.summary())
    print(
        f"sequential: {res.sequential_time:.2f}s  messages: {res.message_count}  "
        f"bytes: {res.bytes_sent / 1e6:.2f} MB  "
        f"final distribution: {res.log.final_partition_counts}"
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from . import experiments as ex

    available = {
        "tab1": lambda: print(
            ex.tab1_features.run()["table"],
            "\nmatches paper:",
            ex.tab1_features.run()["all_match"],
        ),
        "fig3": lambda: print(ex.fig3_codegen.run()["source"]),
        "fig4": lambda: print(ex.fig4_frequency.run().format_table()),
        "fig5": lambda: print(ex.fig5_mm_dedicated.run().format_table()),
        "fig6": lambda: print(ex.fig6_sor_dedicated.run().format_table()),
        "fig7": lambda: print(ex.fig7_mm_loaded.run().format_table()),
        "fig8": lambda: print(ex.fig8_sor_loaded.run().format_table()),
        "fig9": lambda: print(
            ex.fig9_oscillating.tracking_lag(ex.fig9_oscillating.run())
        ),
        "heterogeneous": lambda: print(ex.heterogeneous.run().format_table()),
        "adaptive": lambda: print(ex.adaptive_irregular.run().format_table()),
        "ablation-pipelining": lambda: print(ex.ablations.pipelining().format_table()),
        "ablation-grain": lambda: print(ex.ablations.grain().format_table()),
        "ablation-refinements": lambda: print(
            ex.ablations.refinements().format_table()
        ),
    }
    names = args.names or list(available)
    for name in names:
        if name not in available:
            print(f"unknown figure {name!r}; choices: {', '.join(available)}")
            return 2
        print(f"\n===== {name} =====")
        available[name]()
    return 0


def _cmd_source(args: argparse.Namespace) -> int:
    plan = _build_plan(args.app, args.n, args.slaves)
    print(plan.source)
    return 0


def _cmd_features(_args: argparse.Namespace) -> int:
    from .experiments import tab1_features

    out = tab1_features.run()
    print(out["table"])
    print("matches paper Table 1:", out["all_match"])
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Siegell & Steenkiste (HPDC 1994): automatic "
            "generation of parallel programs with dynamic load balancing"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one application on the simulator")
    p_run.add_argument("app", choices=sorted(REGISTRY))
    p_run.add_argument("-n", type=int, default=200, help="problem size")
    p_run.add_argument("--slaves", type=int, default=4)
    p_run.add_argument("--speed", type=float, default=1.0e6, help="ops/sec per node")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--load-slave", type=int, default=None, metavar="PID")
    p_run.add_argument("--load-tasks", type=int, default=1)
    p_run.add_argument("--oscillating", action="store_true")
    p_run.add_argument("--no-dlb", action="store_true", help="static distribution")
    p_run.add_argument("--synchronous", action="store_true")
    p_run.add_argument(
        "--numerics",
        action="store_true",
        help="execute real kernels (default: cost-only simulation)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument("names", nargs="*", help="subset to run (default: all)")
    p_fig.set_defaults(fn=_cmd_figures)

    p_src = sub.add_parser("source", help="show a generated SPMD program")
    p_src.add_argument("app", choices=sorted(REGISTRY))
    p_src.add_argument("-n", type=int, default=200)
    p_src.add_argument("--slaves", type=int, default=4)
    p_src.set_defaults(fn=_cmd_source)

    p_feat = sub.add_parser("features", help="print the Table 1 matrix")
    p_feat.set_defaults(fn=_cmd_features)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
