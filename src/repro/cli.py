"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      — run one application on a simulated cluster and print
                 the paper's metrics.
- ``trace``    — run one application with full observability and dump or
                 inspect structured :class:`~repro.obs.RunReport` JSON
                 and JSONL event logs.
- ``check``    — run the static verification suite (``repro.analysis``)
                 over generated plans and recorded runs; exits nonzero
                 on error-severity diagnostics.
- ``chaos``    — run an application x fault-plan matrix and validate
                 results against fault-free baselines.
- ``figures``  — regenerate the paper's tables/figures (all or by name).
- ``bench``    — run a named benchmark suite and optionally gate it
                 against a recorded baseline (see ``repro.bench``).
- ``orchestrate`` — operate crash-safe experiment sweeps: run a jobs
                 file, inspect/resume/cancel a journaled sweep, and
                 garbage-collect its result cache
                 (see ``repro.orchestrator``).
- ``source``   — show an application's generated SPMD program listing.
- ``features`` — print the Table 1 feature matrix.

``run`` and ``trace`` take ``--faults NAME_OR_PATH`` (a built-in plan
name from ``repro.faults.NAMED_PLANS`` or a JSON fault-plan file) plus
``--fault-seed``; fractional fault times are resolved against a
fault-free calibration run of the same configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps import REGISTRY
from .config import (
    BalancerConfig,
    CheckpointConfig,
    ClusterSpec,
    ProcessorSpec,
    RunConfig,
)
from .faults import NAMED_PLANS, FaultPlan, load_plan
from .obs import Recorder, RunReport
from .runtime import run_application
from .sim import ConstantLoad, OscillatingLoad

__all__ = ["main"]


def _build_plan(app: str, n: int, n_slaves: int):
    builder = REGISTRY[app]
    if app == "sor":
        return builder(n=n, n_slaves_hint=n_slaves)
    return builder(n=n, n_slaves_hint=n_slaves)


def _loads_from_args(args: argparse.Namespace) -> dict:
    loads = {}
    if args.load_slave is not None:
        gen = (
            OscillatingLoad(k=args.load_tasks, period=20.0, duration=10.0)
            if args.oscillating
            else ConstantLoad(k=args.load_tasks)
        )
        loads[args.load_slave] = gen
    return loads


def _ckpt_from_args(args: argparse.Namespace) -> CheckpointConfig:
    defaults = CheckpointConfig()
    return CheckpointConfig(
        enabled=bool(getattr(args, "ckpt", False)),
        interval=(
            args.ckpt_interval
            if getattr(args, "ckpt_interval", None) is not None
            else defaults.interval
        ),
        placement=getattr(args, "ckpt_placement", None) or defaults.placement,
    )


def _run_cfg_from_args(args: argparse.Namespace) -> RunConfig:
    return RunConfig(
        cluster=ClusterSpec(
            n_slaves=args.slaves, processor=ProcessorSpec(speed=args.speed)
        ),
        balancer=BalancerConfig(pipelined=not args.synchronous),
        execute_numerics=args.numerics,
        dlb_enabled=not args.no_dlb,
        ckpt=_ckpt_from_args(args),
        strategy=getattr(args, "strategy", "centralized") or "centralized",
        engine=getattr(args, "engine", "auto") or "auto",
    )


def _faults_from_args(
    args: argparse.Namespace, plan, run_cfg: RunConfig, loads: dict
) -> FaultPlan | None:
    """Resolve ``--faults``: a built-in plan name, a JSON file path, or
    ``none``.  Fractional fault times (e.g. "crash at 40% of the run")
    are resolved against a fault-free calibration run."""
    name = getattr(args, "faults", None)
    if name is None or name == "none":
        return None
    fault_plan = load_plan(name, seed=getattr(args, "fault_seed", 0))
    fault_plan.validate_for(run_cfg.cluster.n_slaves)
    if fault_plan.empty:
        return None
    if fault_plan.needs_horizon:
        if run_cfg.strategy == "centralized":
            base = run_application(plan, run_cfg, loads=loads, seed=args.seed)
            horizon = base.elapsed
        else:
            # Fractional fault times resolve against a fault-free run of
            # the *same* strategy, whose horizon can differ a lot.
            from .strategies import run_strategy

            horizon = run_strategy(
                run_cfg.strategy, plan, run_cfg, loads, seed=args.seed
            ).elapsed
        fault_plan = fault_plan.resolved(horizon)
    return fault_plan


def _cmd_run(args: argparse.Namespace) -> int:
    plan = _build_plan(args.app, args.n, args.slaves)
    run_cfg = _run_cfg_from_args(args)
    loads = _loads_from_args(args)
    faults = _faults_from_args(args, plan, run_cfg, loads)
    if run_cfg.strategy != "centralized":
        from .errors import ConfigError
        from .strategies import run_strategy

        try:
            out = run_strategy(
                run_cfg.strategy, plan, run_cfg, loads, seed=args.seed, faults=faults
            )
        except ConfigError as exc:
            print(f"run: {exc}")
            return 2
        print(out.summary())
        print(
            f"sequential: {out.sequential_time:.2f}s  "
            f"messages: {out.message_count}  "
            f"bytes: {out.bytes_sent / 1e6:.2f} MB"
        )
        if faults is not None or out.deaths or out.lost_units:
            print(
                f"faults[{faults.name or 'custom' if faults else 'none'}]: "
                f"deaths={out.deaths}  lost_units={out.lost_units}  "
                f"dead={list(out.dead_pids)}"
            )
        return 0
    res = run_application(
        plan, run_cfg, loads=loads, seed=args.seed, faults=faults
    )
    print(res.summary())
    print(
        f"sequential: {res.sequential_time:.2f}s  messages: {res.message_count}  "
        f"bytes: {res.bytes_sent / 1e6:.2f} MB  "
        f"final distribution: {res.log.final_partition_counts}"
    )
    if faults is not None:
        print(
            f"faults[{faults.name or 'custom'}]: "
            f"retransmits={res.retransmits}  lost={res.messages_lost}  "
            f"dead={list(res.dead_pids)}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.inspect is not None:
        report = RunReport.load(args.inspect)
        print(report.describe())
        return 0
    if args.app is None:
        print("trace: an application is required unless --inspect is given")
        return 2
    if getattr(args, "strategy", "centralized") != "centralized":
        print(
            "trace: RunReport aggregation covers the centralized runtime; "
            "use `repro run --strategy ...` for the other planes"
        )
        return 2
    plan = _build_plan(args.app, args.n, args.slaves)
    run_cfg = _run_cfg_from_args(args)
    loads = _loads_from_args(args)
    faults = _faults_from_args(args, plan, run_cfg, loads)
    recorder = Recorder()
    res = run_application(
        plan,
        run_cfg,
        loads=loads,
        seed=args.seed,
        recorder=recorder,
        faults=faults,
    )
    report = res.make_report()
    print(report.describe())
    if args.json is not None:
        report.save(args.json)
        print(f"run report written to {args.json}")
    if args.events is not None:
        recorder.log.save(args.events)
        print(f"{len(recorder.log)} events written to {args.events}")
    return 0


def _check_subjects(args: argparse.Namespace) -> list[tuple[str, object]]:
    """Resolve what ``repro check`` verifies: apps or a custom factory."""
    import importlib

    if args.plan_factory is not None:
        mod_name, sep, fn_name = args.plan_factory.partition(":")
        if not sep:
            raise SystemExit(
                f"check: --plan-factory wants module:function, got "
                f"{args.plan_factory!r}"
            )
        factory = getattr(importlib.import_module(mod_name), fn_name)
        return [(args.plan_factory, factory())]
    apps = args.apps or sorted(REGISTRY)
    for app in apps:
        if app not in REGISTRY:
            raise SystemExit(
                f"check: unknown app {app!r}; choices: {', '.join(sorted(REGISTRY))}"
            )
    return [(app, _build_plan(app, args.n, args.slaves)) for app in apps]


def _check_hier_protocol():
    """Protocol lint (RA4xx) over the hierarchical control plane.

    Same send/receive pairing pass the central runtime gets, but with
    the tag families derived from :class:`repro.scale.protocol.ScaleTags`
    and the sources of the sub-master tree tasks — so a new ``sc.*``
    message that is sent but never drained (or declared but dead) fails
    ``repro check --hier`` exactly like an ``lb.*`` one fails the
    default run.
    """
    import inspect

    from .analysis import CheckResult
    from .analysis.protocol_lint import lint_sources, tag_families
    from .scale import hierarchy
    from .scale.protocol import ScaleTags

    diags = lint_sources(
        [("scale/hierarchy.py", inspect.getsource(hierarchy))],
        tag_families(ScaleTags),
    )
    return CheckResult(subject="hier-protocol[sc.*]", diagnostics=diags)


def _check_steal_protocol() -> list:
    """Protocol lint (RA4xx) over the strategy control planes.

    Pairs every ``st.*`` (work stealing) and ``rb.*`` (robust
    self-scheduling) send site with a selective receive in the strategy
    sources, so a steal/deny/terminate message that is emitted but never
    drained fails ``repro check --steal`` exactly like an ``lb.*``
    orphan fails the default run.
    """
    import inspect

    from .analysis import CheckResult
    from .analysis.protocol_lint import lint_sources, tag_families
    from .strategies import rdlb, stealing
    from .strategies.protocol import RobustTags, StealTags

    out = []
    for subject, module, source_name, tags_cls in (
        ("steal-protocol[st.*]", stealing, "strategies/stealing.py", StealTags),
        ("robust-protocol[rb.*]", rdlb, "strategies/rdlb.py", RobustTags),
    ):
        diags = lint_sources(
            [(source_name, inspect.getsource(module))],
            tag_families(tags_cls),
        )
        out.append(CheckResult(subject=subject, diagnostics=diags))
    return out


def _check_models(args: argparse.Namespace) -> list:
    """Model-check the control planes (``repro check --model``).

    Runs the standard sweep (`repro.analysis.model.configs`): every
    plane's clean model, explored exhaustively unless ``--model-budget``
    caps the state count.  Counterexamples ride along in each
    diagnostic's ``details["trace"]`` and are printed by
    ``CheckResult.describe`` / serialized by ``--json``.
    """
    from .analysis.model import run_sweep

    planes = tuple(args.model_plane) if args.model_plane else None
    out = []
    for check, ex in run_sweep(
        planes, budget=args.model_budget, seed=args.seed
    ):
        mode = "exhaustive" if ex.exhaustive else "bounded"
        check.subject += f"[{mode}:{ex.states} states]"
        out.append(check)
    return out


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import CheckResult, check_log_file, check_suite

    results: list[CheckResult] = []
    if args.hier:
        results.append(_check_hier_protocol())
    if args.steal:
        results.extend(_check_steal_protocol())
    if args.model:
        results.extend(_check_models(args))
    if args.engines:
        from .analysis.equivalence import check_engine_equivalence

        results.append(
            CheckResult(
                subject="engine-equivalence[batch=reference]",
                diagnostics=check_engine_equivalence(),
            )
        )
    if args.events is not None:
        results.append(
            CheckResult(
                subject=args.events, diagnostics=check_log_file(args.events)
            )
        )
    focused = args.events is not None or args.model or args.engines
    if not focused or args.apps or args.plan_factory:
        protocol_pending = True
        for name, plan in _check_subjects(args):
            if args.no_replay:
                res = check_suite(plan, None, protocol=protocol_pending)
                res.subject = name
                results.append(res)
            else:
                for dlb in (True, False):
                    cfg = RunConfig(
                        cluster=ClusterSpec(n_slaves=args.slaves),
                        execute_numerics=False,
                        dlb_enabled=dlb,
                    )
                    res = check_suite(
                        plan,
                        cfg,
                        protocol=protocol_pending and dlb,
                        seed=args.seed,
                    )
                    res.subject = f"{name}[dlb={'on' if dlb else 'off'}]"
                    results.append(res)
            protocol_pending = False
    ok = all(r.ok for r in results)
    if args.json is not None:
        import json as _json

        doc = {"ok": ok, "subjects": [r.to_dict() for r in results]}
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"check results written to {args.json}")
    for r in results:
        print(r.describe())
    n_err = sum(len(r.errors()) for r in results)
    print(
        f"\ncheck: {len(results)} subject(s), "
        f"{sum(len(r) for r in results)} finding(s), {n_err} error(s)"
    )
    return 0 if ok else 1


def _chaos_failed_cell(record: object) -> dict[str, object]:
    """Synthesize a FAILED matrix cell for a job that never completed."""
    from .orchestrator import JobRecord

    assert isinstance(record, JobRecord)
    error_lines = (record.error or "").strip().splitlines()
    detail = error_lines[-1] if error_lines else f"job {record.state.value}"
    return {
        "app": str(record.spec.params.get("app", record.spec.id)),
        "plan": "*",
        "outcome": "FAILED",
        "detail": f"chaos job did not complete: {detail}",
    }


def _cmd_chaos_hier(args: argparse.Namespace) -> int:
    """Sub-master-crash matrix for the hierarchical control plane.

    For each PARALLEL_MAP application: a fault-free hierarchical
    baseline, then one cell per targeted sub-master crash (the first
    and the last level-1 sub-master, at 40% and 60% of the fault-free
    horizon).  Every crash cell must complete with results identical to
    the baseline — the custody rule (units travel leaf-to-leaf only)
    means a dead sub-master can never lose shipped cells — and must
    actually exercise the failure detector (``deaths``/``reparents``
    counters).  PIPELINE / REDUCTION_FRONT apps are skipped: the
    hierarchical plane is PARALLEL_MAP-only, their crash recovery is
    the central runtime's checkpoint machinery (the default matrix).
    Apps fan out as jobs of an orchestrated sweep (one baseline + both
    crash cells per job).
    """
    import json

    from .orchestrator import JobSpec, submit_sweep
    from .scale import build_tree

    apps = args.apps or sorted(REGISTRY)
    for app in apps:
        if app not in REGISTRY:
            raise SystemExit(
                f"chaos: unknown app {app!r}; choices: {', '.join(sorted(REGISTRY))}"
            )
    tree = build_tree(args.slaves, args.fanout)
    if not tree.internal:
        raise SystemExit(
            f"chaos: --slaves {args.slaves} with --fanout {args.fanout} "
            "builds a flat tree (no sub-masters to crash); "
            "use more slaves or a smaller fanout"
        )
    specs = [
        JobSpec(
            id=f"chaos-hier/{app}",
            fn="repro.faults.chaosrun:chaos_hier_cells",
            params={
                "app": app,
                "n": args.n,
                "slaves": args.slaves,
                "fanout": args.fanout,
                "seed": args.seed,
            },
            max_retries=1,
            backoff_s=0.1,
        )
        for app in apps
    ]
    sweep = submit_sweep(
        specs,
        state_dir=args.state_dir,
        workers=args.workers,
        meta={"matrix": "chaos-hier"},
    )
    cells: list[dict[str, object]] = []
    failed = 0
    for record in sweep.records:
        if not record.ok:
            cell = _chaos_failed_cell(record)
            cells.append(cell)
            failed += 1
            print(
                f"chaos {cell['app']:>8} x {'*':<14} FAILED  ({cell['detail']})"
            )
            continue
        row = record.result
        if row["skipped"] is not None:
            print(
                f"chaos {row['app']:>8} x hier           skipped ({row['skipped']})"
            )
            continue
        for cell in row["cells"]:
            failed += cell["outcome"] == "FAILED"
            cells.append(cell)
            detail = f"  ({cell['detail']})" if "detail" in cell else ""
            print(
                f"chaos {cell['app']:>8} x {cell['plan']:<14} {cell['outcome']}"
                f"  [pid={cell['crash_pid']} deaths={cell['deaths']}"
                f" reparents={cell['reparents']}]"
                f"{detail}"
            )
    ok = failed == 0
    print(
        f"\nchaos: {len(cells)} hierarchical cell(s), {failed} failure(s) "
        f"[fanout={args.fanout} slaves={args.slaves} seed={args.seed}]"
    )
    if args.json is not None:
        doc = {
            "ok": ok,
            "control": "hier",
            "fanout": args.fanout,
            "n": args.n,
            "slaves": args.slaves,
            "seed": args.seed,
            "cells": cells,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"chaos results written to {args.json}")
    return 0 if ok else 1


def _cmd_chaos_strategy(args: argparse.Namespace) -> int:
    """Worker-crash matrix for a robust strategy plane.

    For each PARALLEL_MAP application: a fault-free baseline under the
    strategy, then one cell per targeted worker crash (an early worker
    at 25% and the last worker at 60% of the fault-free horizon).  Every
    cell must terminate and land on the plane's documented contract:
    ``recovered`` (all units complete, result numerically matching the
    baseline — rDLB's chunk reassignment) or ``lost-expected`` (work
    stealing's explicit loss report for the dead worker's un-gathered
    units).  A hang, silent divergence, or implausible loss accounting
    fails the cell.  PIPELINE / REDUCTION_FRONT apps are skipped — the
    strategy planes are PARALLEL_MAP-only.
    """
    import json

    from .orchestrator import JobSpec, submit_sweep

    apps = args.apps or sorted(REGISTRY)
    for app in apps:
        if app not in REGISTRY:
            raise SystemExit(
                f"chaos: unknown app {app!r}; choices: {', '.join(sorted(REGISTRY))}"
            )
    specs = [
        JobSpec(
            id=f"chaos-{args.control}/{app}",
            fn="repro.faults.chaosrun:chaos_strategy_cells",
            params={
                "app": app,
                "strategy": args.control,
                "n": args.n,
                "slaves": args.slaves,
                "seed": args.seed,
            },
            max_retries=1,
            backoff_s=0.1,
        )
        for app in apps
    ]
    sweep = submit_sweep(
        specs,
        state_dir=args.state_dir,
        workers=args.workers,
        meta={"matrix": f"chaos-{args.control}"},
    )
    cells: list[dict[str, object]] = []
    failed = 0
    for record in sweep.records:
        if not record.ok:
            cell = _chaos_failed_cell(record)
            cells.append(cell)
            failed += 1
            print(
                f"chaos {cell['app']:>8} x {'*':<14} FAILED  ({cell['detail']})"
            )
            continue
        row = record.result
        if row["skipped"] is not None:
            print(
                f"chaos {row['app']:>8} x {args.control:<14} "
                f"skipped ({row['skipped']})"
            )
            continue
        for cell in row["cells"]:
            failed += cell["outcome"] == "FAILED"
            cells.append(cell)
            detail = f"  ({cell['detail']})" if "detail" in cell else ""
            print(
                f"chaos {cell['app']:>8} x {cell['plan']:<20} {cell['outcome']}"
                f"  [pid={cell['crash_pid']}"
                f" deaths={cell.get('deaths', '?')}"
                f" lost={cell.get('lost_units', '?')}]"
                f"{detail}"
            )
    ok = failed == 0
    print(
        f"\nchaos: {len(cells)} {args.control} cell(s), {failed} failure(s) "
        f"[slaves={args.slaves} seed={args.seed}]"
    )
    if args.json is not None:
        doc = {
            "ok": ok,
            "control": args.control,
            "n": args.n,
            "slaves": args.slaves,
            "seed": args.seed,
            "cells": cells,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"chaos results written to {args.json}")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run an application x fault-plan matrix and validate every cell.

    Message-only plans must leave results bit-identical to the
    fault-free baseline (the transport layer hides them).  Crash plans
    must recover with results still matching: PARALLEL_MAP shapes by
    work reassignment, dependence-carrying shapes by checkpoint rollback
    (auto-enabled, see :func:`repro.runtime.launcher.resolve_run_cfg`).
    Whether a cell may legitimately be lost is decided by
    :func:`repro.runtime.master.can_recover` on the *effective*
    configuration; an unexpected :class:`~repro.errors.SlaveLostError`
    fails the cell and the command exits nonzero.  Apps fan out as jobs
    of an orchestrated sweep (one baseline + every plan cell per job);
    ``--workers`` widens the warm pool and ``--state-dir`` makes the
    matrix resumable.
    """
    import json

    from .errors import FaultPlanError
    from .orchestrator import JobSpec, submit_sweep

    if args.control == "hier":
        return _cmd_chaos_hier(args)
    if args.control in ("stealing", "rdlb"):
        return _cmd_chaos_strategy(args)

    apps = args.apps or sorted(REGISTRY)
    plan_names = args.plans or [
        "message-light",
        "message-heavy",
        "dup-reorder",
        "one-crash",
        "stall",
    ]
    try:
        for pname in plan_names:
            load_plan(pname, seed=args.fault_seed).validate_for(args.slaves)
    except FaultPlanError as exc:
        print(f"chaos: {exc}")
        return 2
    for app in apps:
        if app not in REGISTRY:
            raise SystemExit(
                f"chaos: unknown app {app!r}; choices: {', '.join(sorted(REGISTRY))}"
            )
    ckpt_cfg = _ckpt_from_args(args)
    specs = [
        JobSpec(
            id=f"chaos/{app}",
            fn="repro.faults.chaosrun:chaos_app_cells",
            params={
                "app": app,
                "plans": list(plan_names),
                "n": args.n,
                "slaves": args.slaves,
                "seed": args.seed,
                "fault_seed": args.fault_seed,
                "ckpt": ckpt_cfg.enabled,
                "ckpt_interval": ckpt_cfg.interval,
                "ckpt_placement": ckpt_cfg.placement,
                "reports_dir": args.reports,
            },
            max_retries=1,
            backoff_s=0.1,
        )
        for app in apps
    ]
    sweep = submit_sweep(
        specs,
        state_dir=args.state_dir,
        workers=args.workers,
        meta={"matrix": "chaos"},
    )
    cells: list[dict[str, object]] = []
    failed = 0
    for record in sweep.records:
        if not record.ok:
            cell = _chaos_failed_cell(record)
            cells.append(cell)
            failed += 1
            print(
                f"chaos {cell['app']:>8} x {'*':<14} FAILED  ({cell['detail']})"
            )
            continue
        for cell in record.result:
            failed += cell["outcome"] == "FAILED"
            cells.append(cell)
            detail = f"  ({cell['detail']})" if "detail" in cell else ""
            print(
                f"chaos {cell['app']:>8} x {cell['plan']:<14} "
                f"{cell['outcome']}{detail}"
            )
    ok = failed == 0
    print(
        f"\nchaos: {len(cells)} cell(s), {failed} failure(s) "
        f"[apps={len(apps)} plans={len(plan_names)} seed={args.seed} "
        f"fault-seed={args.fault_seed}]"
    )
    if args.json is not None:
        doc = {
            "ok": ok,
            "n": args.n,
            "slaves": args.slaves,
            "seed": args.seed,
            "fault_seed": args.fault_seed,
            "cells": cells,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"chaos results written to {args.json}")
    return 0 if ok else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    import json
    import os

    from . import experiments as ex
    from .experiments.common import ExperimentSeries

    available = {
        "tab1": ex.tab1_features.run,
        "fig3": ex.fig3_codegen.run,
        "fig4": ex.fig4_frequency.run,
        "fig5": ex.fig5_mm_dedicated.run,
        "fig6": ex.fig6_sor_dedicated.run,
        "fig7": ex.fig7_mm_loaded.run,
        "fig8": ex.fig8_sor_loaded.run,
        "fig9": ex.fig9_oscillating.run,
        "heterogeneous": ex.heterogeneous.run,
        "adaptive": ex.adaptive_irregular.run,
        "ablation-pipelining": ex.ablations.pipelining,
        "ablation-grain": ex.ablations.grain,
        "ablation-refinements": ex.ablations.refinements,
    }
    names = args.names or list(available)
    for name in names:
        if name not in available:
            print(f"unknown figure {name!r}; choices: {', '.join(available)}")
            return 2
    if args.json is not None:
        os.makedirs(args.json, exist_ok=True)
    for name in names:
        print(f"\n===== {name} =====")
        out = available[name]()
        if isinstance(out, ExperimentSeries):
            print(out.format_table())
        elif name == "tab1":
            print(out["table"], "\nmatches paper:", out["all_match"])
        elif name == "fig3":
            print(out["source"])
        elif name == "fig9":
            print(ex.fig9_oscillating.tracking_lag(out))
        if args.json is None:
            continue
        path = os.path.join(args.json, f"{name}.json")
        if isinstance(out, ExperimentSeries):
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(out.to_dict(), fh, indent=2, sort_keys=True)
        elif name == "fig9":
            out["report"].save(path)
        else:
            continue
        print(f"wrote {path}")
    return 0


def _cmd_source(args: argparse.Namespace) -> int:
    plan = _build_plan(args.app, args.n, args.slaves)
    print(plan.source)
    return 0


def _cmd_features(_args: argparse.Namespace) -> int:
    from .experiments import tab1_features

    out = tab1_features.run()
    print(out["table"])
    print("matches paper Table 1:", out["all_match"])
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    from .strategies import available_strategies

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Siegell & Steenkiste (HPDC 1994): automatic "
            "generation of parallel programs with dynamic load balancing"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("-n", type=int, default=200, help="problem size")
        p.add_argument("--slaves", type=int, default=4)
        p.add_argument("--speed", type=float, default=1.0e6, help="ops/sec per node")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--load-slave", type=int, default=None, metavar="PID")
        p.add_argument("--load-tasks", type=int, default=1)
        p.add_argument("--oscillating", action="store_true")
        p.add_argument("--no-dlb", action="store_true", help="static distribution")
        p.add_argument("--synchronous", action="store_true")
        p.add_argument(
            "--numerics",
            action="store_true",
            help="execute real kernels (default: cost-only simulation)",
        )
        p.add_argument(
            "--strategy",
            choices=("centralized", *available_strategies()),
            default="centralized",
            help=(
                "DLB control plane: 'centralized' is the paper's runtime; "
                "the rest are the repro.strategies registry "
                "(PARALLEL_MAP apps only)"
            ),
        )
        p.add_argument(
            "--engine",
            choices=("auto", "reference", "batch"),
            default="auto",
            help=(
                "event core: 'batch' is the vectorized pooled-heap core, "
                "'reference' the original loop; 'auto' (default) picks "
                "batch unless fault injection forces the reference path"
            ),
        )
        p.add_argument(
            "--faults",
            metavar="NAME_OR_PATH",
            default=None,
            help=(
                "inject a fault plan: a built-in name "
                f"({', '.join(sorted(NAMED_PLANS))}) or a JSON file; "
                "'none' disables injection explicitly"
            ),
        )
        p.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for the fault plan's RNG (deterministic injection)",
        )
        p.add_argument(
            "--ckpt",
            action="store_true",
            help=(
                "enable coordinated checkpointing (auto-enabled for "
                "crash plans on dependence-carrying shapes)"
            ),
        )
        p.add_argument(
            "--ckpt-interval",
            type=float,
            default=None,
            metavar="SECONDS",
            help="simulated seconds between checkpoint epochs",
        )
        p.add_argument(
            "--ckpt-placement",
            choices=("master", "buddy"),
            default=None,
            help="where slave snapshots are deposited",
        )

    p_run = sub.add_parser("run", help="run one application on the simulator")
    p_run.add_argument("app", choices=sorted(REGISTRY))
    add_run_options(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run with observability on and dump/inspect RunReport JSON",
    )
    p_trace.add_argument(
        "app", nargs="?", default=None, choices=sorted(REGISTRY)
    )
    add_run_options(p_trace)
    p_trace.add_argument(
        "--json", metavar="PATH", default=None, help="write the RunReport as JSON"
    )
    p_trace.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="write the raw event log as JSONL",
    )
    p_trace.add_argument(
        "--inspect",
        metavar="PATH",
        default=None,
        help="summarize a previously saved RunReport instead of running",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_check = sub.add_parser(
        "check",
        help="run the static verification suite over generated plans",
    )
    p_check.add_argument(
        "apps",
        nargs="*",
        help="applications to verify (default: all registered apps)",
    )
    p_check.add_argument("-n", type=int, default=24, help="problem size")
    p_check.add_argument("--slaves", type=int, default=3)
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument(
        "--json", metavar="PATH", default=None, help="write findings as JSON"
    )
    p_check.add_argument(
        "--no-replay",
        action="store_true",
        help="static passes only (skip the recorded replay simulations)",
    )
    p_check.add_argument(
        "--hier",
        action="store_true",
        help=(
            "also lint the hierarchical control plane's sc.* protocol "
            "(send/receive pairing over repro.scale sources)"
        ),
    )
    p_check.add_argument(
        "--steal",
        action="store_true",
        help=(
            "also lint the strategy control planes' st.* (work stealing) "
            "and rb.* (robust self-scheduling) protocols "
            "(send/receive pairing over repro.strategies sources)"
        ),
    )
    p_check.add_argument(
        "--model",
        action="store_true",
        help=(
            "also model-check the control planes: exhaustive "
            "deadlock/liveness/unit-conservation verification of the "
            "centralized, ft, ckpt, hier and steal protocol models "
            "(RA6xx/RA7xx)"
        ),
    )
    p_check.add_argument(
        "--engines",
        action="store_true",
        help=(
            "also run the differential engine-equivalence suite: every "
            "golden-trace app under engine=reference and engine=batch, "
            "diffing trace bytes and run outcomes (RA8xx)"
        ),
    )
    p_check.add_argument(
        "--model-plane",
        action="append",
        choices=["centralized", "ft", "ckpt", "hier", "steal"],
        default=None,
        metavar="PLANE",
        help="restrict --model to these planes (repeatable; default: all)",
    )
    p_check.add_argument(
        "--model-budget",
        type=int,
        default=None,
        metavar="STATES",
        help=(
            "cap exploration at this many states per model; the verdict "
            "degrades to bounded + randomized walks (RA603)"
        ),
    )
    p_check.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="replay an existing JSONL event log (from `repro trace --events`)",
    )
    p_check.add_argument(
        "--plan-factory",
        metavar="MODULE:FUNC",
        default=None,
        help="verify the plan returned by a custom zero-argument factory",
    )
    p_check.set_defaults(fn=_cmd_check)

    p_chaos = sub.add_parser(
        "chaos",
        help="run an app x fault-plan matrix and validate recovery",
    )
    p_chaos.add_argument(
        "apps",
        nargs="*",
        help="applications to stress (default: all registered apps)",
    )
    p_chaos.add_argument("-n", type=int, default=32, help="problem size")
    p_chaos.add_argument("--slaves", type=int, default=4)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault plans' RNG",
    )
    p_chaos.add_argument(
        "--control",
        choices=("central", "hier", "stealing", "rdlb"),
        default="central",
        help=(
            "control plane to stress: 'central' runs the fault-plan "
            "matrix against the central runtime (default); 'hier' runs "
            "targeted sub-master crashes against the hierarchical plane; "
            "'stealing' / 'rdlb' run targeted worker crashes against the "
            "robust strategy planes"
        ),
    )
    p_chaos.add_argument(
        "--fanout",
        type=int,
        default=4,
        help="sub-master fanout for --control hier (default 4)",
    )
    p_chaos.add_argument(
        "--plans",
        nargs="*",
        default=None,
        metavar="PLAN",
        help=(
            "fault plans to apply "
            f"(default matrix; choices: {', '.join(sorted(NAMED_PLANS))} "
            "or JSON file paths)"
        ),
    )
    p_chaos.add_argument(
        "--json", metavar="PATH", default=None, help="write the matrix as JSON"
    )
    p_chaos.add_argument(
        "--reports",
        metavar="DIR",
        default=None,
        help="write a RunReport JSON per faulted cell into DIR",
    )
    p_chaos.add_argument(
        "--ckpt-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="checkpoint epoch interval for cells that enable ckpt",
    )
    p_chaos.add_argument(
        "--ckpt-placement",
        choices=("master", "buddy"),
        default=None,
        help="snapshot placement for cells that enable ckpt",
    )
    p_chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="warm-pool width for app fan-out (default 1: inline)",
    )
    p_chaos.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="journal + result-cache directory (makes the matrix resumable)",
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument("names", nargs="*", help="subset to run (default: all)")
    p_fig.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write machine-readable JSON per figure into DIR",
    )
    p_fig.set_defaults(fn=_cmd_figures)

    sub.add_parser(
        "bench",
        help="run a benchmark suite and gate against a baseline",
        add_help=False,
    )

    sub.add_parser(
        "orchestrate",
        help="operate crash-safe sweeps: run/status/resume/cancel/gc",
        add_help=False,
    )

    p_src = sub.add_parser("source", help="show a generated SPMD program")
    p_src.add_argument("app", choices=sorted(REGISTRY))
    p_src.add_argument("-n", type=int, default=200)
    p_src.add_argument("--slaves", type=int, default=4)
    p_src.set_defaults(fn=_cmd_source)

    p_feat = sub.add_parser("features", help="print the Table 1 matrix")
    p_feat.set_defaults(fn=_cmd_features)

    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "bench":
        # ``bench`` owns its full option surface (repro.bench.harness);
        # delegate before the main parser can reject its flags.
        from .bench import main as bench_main

        return bench_main(raw[1:])
    if raw and raw[0] == "orchestrate":
        # same arrangement for the sweep operations CLI
        from .orchestrator.cli import main as orchestrate_main

        return orchestrate_main(raw[1:])
    args = parser.parse_args(raw)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
