"""Run reports: one JSON document summarizing a run's behaviour.

:func:`build_run_report` folds a finished run (its result object plus
the :class:`~repro.obs.recorder.Recorder` that observed it) into a
:class:`RunReport`:

- per-slave **rate timelines** (raw and filtered computation rates, and
  the work counts assigned by the balancer) — the data behind the
  paper's Figures 6-9;
- an **imbalance ratio** timeline (max/mean assigned work across the
  slaves after each balancer decision);
- a **DLB overhead breakdown** mirroring the paper's Table 2
  categories: status/instruction message interaction, data movement,
  balance latency, pipeline catch-up, and per-slave idle time.

Reports serialize to plain JSON (``schema`` identifies the layout) and
round-trip through :meth:`RunReport.save` / :meth:`RunReport.load`.

The result object is described structurally (:class:`RunResultLike`) so
this module stays dependency-free and ``mypy --strict``-clean without
importing the runtime.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Protocol, Sequence

from .log import EventLog
from .model import SpanEvent, _as_float, _as_int
from .recorder import Recorder

__all__ = ["RunReport", "RunResultLike", "build_run_report"]

SCHEMA = "repro.obs.run-report/1"

RATE_CHANNELS = ("raw_rate", "adjusted_rate", "work")
"""Counter names exported per-slave as timelines (legacy Trace channels)."""


class UsageLike(Protocol):
    """Structural view of ``repro.sim.rusage.TaskUsage``."""

    @property
    def pid(self) -> int: ...
    @property
    def elapsed(self) -> float: ...
    @property
    def app_cpu(self) -> float: ...
    @property
    def competing_cpu(self) -> float: ...
    @property
    def idle_cpu(self) -> float: ...


class RusageLike(Protocol):
    """Structural view of ``repro.sim.rusage.RusageReport``."""

    @property
    def usages(self) -> Sequence[UsageLike]: ...
    @property
    def t_end(self) -> float: ...


class MasterLogLike(Protocol):
    """Structural view of ``repro.runtime.master.MasterLog``."""

    @property
    def moves_issued(self) -> int: ...
    @property
    def moves_applied(self) -> int: ...
    @property
    def moves_canceled(self) -> int: ...
    @property
    def units_moved(self) -> int: ...
    @property
    def reports_received(self) -> int: ...
    @property
    def merged_units(self) -> int: ...
    @property
    def final_partition_counts(self) -> list[int]: ...


class RunResultLike(Protocol):
    """Structural view of ``repro.runtime.launcher.RunResult``."""

    @property
    def name(self) -> str: ...
    @property
    def n_slaves(self) -> int: ...
    @property
    def elapsed(self) -> float: ...
    @property
    def sequential_time(self) -> float: ...
    @property
    def speedup(self) -> float: ...
    @property
    def efficiency(self) -> float: ...
    @property
    def message_count(self) -> int: ...
    @property
    def bytes_sent(self) -> int: ...
    @property
    def dlb_enabled(self) -> bool: ...
    @property
    def rusage(self) -> RusageLike: ...
    @property
    def log(self) -> MasterLogLike: ...


@dataclass
class RunReport:
    """Aggregated, JSON-serializable description of one run."""

    name: str
    n_slaves: int
    elapsed: float
    sequential_time: float
    speedup: float
    efficiency: float
    dlb_enabled: bool
    schema: str = SCHEMA
    dlb: dict[str, float] = field(default_factory=dict)
    faults: dict[str, float] = field(default_factory=dict)
    ckpt: dict[str, float] = field(default_factory=dict)
    orch: dict[str, float] = field(default_factory=dict)
    strategies: dict[str, float] = field(default_factory=dict)
    slaves: dict[str, dict[str, object]] = field(default_factory=dict)
    imbalance: list[list[float]] = field(default_factory=list)
    overhead: dict[str, object] = field(default_factory=dict)
    metrics: dict[str, object] = field(default_factory=dict)
    event_counts: dict[str, int] = field(default_factory=dict)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-safe dict in schema order."""
        return {
            "schema": self.schema,
            "name": self.name,
            "n_slaves": self.n_slaves,
            "elapsed": self.elapsed,
            "sequential_time": self.sequential_time,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "dlb_enabled": self.dlb_enabled,
            "dlb": dict(self.dlb),
            "faults": dict(self.faults),
            "ckpt": dict(self.ckpt),
            "orch": dict(self.orch),
            "strategies": dict(self.strategies),
            "slaves": {pid: dict(data) for pid, data in self.slaves.items()},
            "imbalance": [list(point) for point in self.imbalance],
            "overhead": dict(self.overhead),
            "metrics": dict(self.metrics),
            "event_counts": dict(self.event_counts),
        }

    def to_json(self, indent: int = 2) -> str:
        """Pretty JSON text (stable key order for golden files)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunReport":
        """Inverse of :meth:`to_dict` (validates the schema tag)."""
        schema = str(data.get("schema", ""))
        if schema != SCHEMA:
            raise ValueError(f"unsupported run-report schema: {schema!r}")

        def _obj(key: str) -> dict[str, object]:
            value = data.get(key, {})
            return dict(value) if isinstance(value, Mapping) else {}

        slaves_raw = data.get("slaves", {})
        slaves: dict[str, dict[str, object]] = {}
        if isinstance(slaves_raw, Mapping):
            for pid, per_slave in slaves_raw.items():
                if isinstance(per_slave, Mapping):
                    slaves[str(pid)] = dict(per_slave)
        imbalance_raw = data.get("imbalance", [])
        imbalance: list[list[float]] = []
        if isinstance(imbalance_raw, list):
            for point in imbalance_raw:
                if isinstance(point, list):
                    imbalance.append([_as_float(x) for x in point])
        dlb = {str(k): _as_float(v) for k, v in _obj("dlb").items()}
        faults = {str(k): _as_float(v) for k, v in _obj("faults").items()}
        ckpt = {str(k): _as_float(v) for k, v in _obj("ckpt").items()}
        orch = {str(k): _as_float(v) for k, v in _obj("orch").items()}
        strategies = {str(k): _as_float(v) for k, v in _obj("strategies").items()}
        event_counts = {str(k): _as_int(v) for k, v in _obj("event_counts").items()}
        return cls(
            schema=schema,
            name=str(data.get("name", "")),
            n_slaves=_as_int(data.get("n_slaves", 0)),
            elapsed=_as_float(data.get("elapsed", 0.0)),
            sequential_time=_as_float(data.get("sequential_time", 0.0)),
            speedup=_as_float(data.get("speedup", 0.0)),
            efficiency=_as_float(data.get("efficiency", 0.0)),
            dlb_enabled=bool(data.get("dlb_enabled", False)),
            dlb=dlb,
            faults=faults,
            ckpt=ckpt,
            orch=orch,
            strategies=strategies,
            slaves=slaves,
            imbalance=imbalance,
            overhead=_obj("overhead"),
            metrics=_obj("metrics"),
            event_counts=event_counts,
        )

    def save(self, path: str | Path) -> None:
        """Write the report as pretty JSON to ``path``."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        """Read a report written by :meth:`save`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict):
            raise ValueError(f"expected a JSON object in {path}")
        return cls.from_dict(data)

    # -- presentation ----------------------------------------------------

    def describe(self) -> str:
        """Human-readable multi-line summary (used by ``repro trace``)."""
        lines = [
            f"run report: {self.name}  (schema {self.schema})",
            f"  slaves={self.n_slaves}  dlb={'on' if self.dlb_enabled else 'off'}",
            f"  elapsed={self.elapsed:.3f}s  seq={self.sequential_time:.3f}s  "
            f"speedup={self.speedup:.2f}  efficiency={self.efficiency:.3f}",
        ]
        if self.dlb:
            moves = self.dlb.get("moves_applied", 0.0)
            units = self.dlb.get("units_moved", 0.0)
            reports = self.dlb.get("reports_received", 0.0)
            lines.append(
                f"  dlb: reports={reports:.0f}  moves_applied={moves:.0f}  "
                f"units_moved={units:.0f}"
            )
        if any(self.faults.values()):
            lines.append(
                "  faults: injected={injected:.0f}  crashes={crashes:.0f}  "
                "retransmits={retransmits:.0f}  lost={messages_lost:.0f}  "
                "deaths={deaths:.0f}  reassigned={units_reassigned:.0f}".format(
                    **{
                        k: self.faults.get(k, 0.0)
                        for k in (
                            "injected",
                            "crashes",
                            "retransmits",
                            "messages_lost",
                            "deaths",
                            "units_reassigned",
                        )
                    }
                )
            )
        if any(self.ckpt.values()):
            lines.append(
                "  ckpt: committed={epochs_committed:.0f}  "
                "aborted={epochs_aborted:.0f}  snapshots={snapshots:.0f}  "
                "rollbacks={rollbacks:.0f}  restores={slave_restores:.0f}  "
                "units_restored={units_restored:.0f}".format(
                    **{
                        k: self.ckpt.get(k, 0.0)
                        for k in (
                            "epochs_committed",
                            "epochs_aborted",
                            "snapshots",
                            "rollbacks",
                            "slave_restores",
                            "units_restored",
                        )
                    }
                )
            )
        if any(self.orch.values()):
            lines.append(
                "  orch: jobs={jobs:.0f}  succeeded={succeeded:.0f}  "
                "cached={cached:.0f}  failed={failed:.0f}  "
                "timeout={timeout:.0f}  retries={retries:.0f}  "
                "restarts={worker_restarts:.0f}".format(
                    **{
                        k: self.orch.get(k, 0.0)
                        for k in (
                            "jobs",
                            "succeeded",
                            "cached",
                            "failed",
                            "timeout",
                            "retries",
                            "worker_restarts",
                        )
                    }
                )
            )
        if any(self.strategies.values()):
            lines.append(
                "  strategies: steals={steal_attempts:.0f}  "
                "hits={steal_hits:.0f}  units_stolen={steal_units:.0f}  "
                "reassigns={robust_reassigns:.0f}  "
                "duplicates={robust_duplicates:.0f}  "
                "lost={lost_units:.0f}".format(
                    **{
                        k: self.strategies.get(k, 0.0)
                        for k in (
                            "steal_attempts",
                            "steal_hits",
                            "steal_units",
                            "robust_reassigns",
                            "robust_duplicates",
                            "lost_units",
                        )
                    }
                )
            )
        if self.imbalance:
            ratios = [point[1] for point in self.imbalance if len(point) > 1]
            if ratios:
                lines.append(
                    f"  imbalance (max/mean work): first={ratios[0]:.3f}  "
                    f"last={ratios[-1]:.3f}  peak={max(ratios):.3f}"
                )
        interaction = self.overhead.get("interaction")
        movement = self.overhead.get("movement")
        if isinstance(interaction, Mapping) and isinstance(movement, Mapping):

            def _num(section: Mapping[str, object], key: str) -> float:
                value = section.get(key, 0.0)
                return float(value) if isinstance(value, (int, float)) else 0.0

            inter_msgs = _num(interaction, "status_msgs") + _num(
                interaction, "instr_msgs"
            )
            lines.append(
                f"  overhead: interaction_msgs={inter_msgs:.0f}"
                f" (est {_num(interaction, 'est_cpu_s') * 1e3:.2f} ms cpu)  "
                f"movement={_num(movement, 'move_bytes') / 1e3:.1f} kB"
                f" in {_num(movement, 'move_msgs'):.0f} msgs"
            )
        for pid in sorted(self.slaves, key=lambda s: int(s)):
            per_slave = self.slaves[pid]
            samples = per_slave.get("raw_rate")
            n_samples = len(samples) if isinstance(samples, list) else 0
            idle = per_slave.get("idle_s", 0.0)
            idle_f = idle if isinstance(idle, (int, float)) else 0.0
            lines.append(
                f"  slave {pid}: rate_samples={n_samples}  idle={idle_f:.3f}s"
            )
        if self.event_counts:
            counts = "  ".join(
                f"{cat}={n}" for cat, n in sorted(self.event_counts.items())
            )
            lines.append(f"  events: {counts}")
        return "\n".join(lines)


def _timeline(log: EventLog, name: str, pid: int) -> list[list[float]]:
    return [[t, v] for t, v in log.counter_series(name, pid=pid)]


def _imbalance_timeline(log: EventLog, n_slaves: int) -> list[list[float]]:
    """(t, max/mean) of assigned work whenever every slave has a sample."""
    latest: dict[int, float] = {}
    out: list[list[float]] = []
    for event in log.sorted_events():
        if isinstance(event, SpanEvent) or event.name != "work":
            continue
        latest[event.pid] = event.value
        if len(latest) < n_slaves:
            continue
        values = [latest[p] for p in sorted(latest)]
        mean = sum(values) / len(values)
        if mean <= 0:
            continue
        ratio = max(values) / mean
        if out and out[-1][0] == event.t:
            out[-1][1] = ratio
        else:
            out.append([event.t, ratio])
    return out


def _span_stats(log: EventLog, category: str, name: str) -> tuple[int, float, float]:
    """(count, total duration, total value) over matching spans."""
    count = 0
    duration = 0.0
    value = 0.0
    for event in log.filter(category=category, name=name):
        if isinstance(event, SpanEvent):
            count += 1
            duration += event.duration
            value += event.value
    return count, duration, value


def build_run_report(result: RunResultLike, recorder: Recorder) -> RunReport:
    """Aggregate one finished run into a :class:`RunReport`.

    Works with a disabled recorder too (timelines and overhead are then
    empty), so callers can build reports unconditionally.
    """
    log = recorder.log
    metrics = recorder.metrics
    n = result.n_slaves

    slaves: dict[str, dict[str, object]] = {}
    for pid in range(n):
        per_slave: dict[str, object] = {
            channel: _timeline(log, channel, pid) for channel in RATE_CHANNELS
        }
        usage: UsageLike | None = next(
            (u for u in result.rusage.usages if u.pid == pid), None
        )
        if usage is not None:
            per_slave["elapsed_s"] = usage.elapsed
            per_slave["app_cpu_s"] = usage.app_cpu
            per_slave["competing_cpu_s"] = usage.competing_cpu
            per_slave["idle_s"] = usage.idle_cpu
        slaves[str(pid)] = per_slave

    master_log = result.log
    dlb: dict[str, float] = {
        "reports_received": float(master_log.reports_received),
        "decisions": metrics.counter_value("lb.decisions"),
        "moves_issued": float(master_log.moves_issued),
        "moves_applied": float(master_log.moves_applied),
        "moves_canceled": float(master_log.moves_canceled),
        "units_moved": float(master_log.units_moved),
        "merged_units": float(master_log.merged_units),
    }

    faults: dict[str, float] = {
        "injected": metrics.counter_value("faults.injected"),
        "crashes": metrics.counter_value("faults.crashes"),
        "retransmits": metrics.counter_value("net.retransmits"),
        "messages_lost": metrics.counter_value("net.msgs_lost"),
        "duplicates_dropped": metrics.counter_value("net.duplicates_dropped"),
        "suspected": metrics.counter_value("ft.suspected"),
        "recovered": metrics.counter_value("ft.recovered"),
        "deaths": metrics.counter_value("ft.deaths"),
        "units_reassigned": metrics.counter_value("ft.units_reassigned"),
        "ctrl_retransmits": metrics.counter_value("ft.ctrl_retransmits"),
    }

    orch: dict[str, float] = {
        "jobs": metrics.counter_value("orch.jobs.submitted"),
        "succeeded": metrics.counter_value("orch.jobs.succeeded"),
        "cached": metrics.counter_value("orch.jobs.cached"),
        "failed": metrics.counter_value("orch.jobs.failed"),
        "timeout": metrics.counter_value("orch.jobs.timeout"),
        "cancelled": metrics.counter_value("orch.jobs.cancelled"),
        "cache_hits": metrics.counter_value("orch.cache_hits"),
        "retries": metrics.counter_value("orch.retries"),
        "worker_restarts": metrics.counter_value("orch.workers.restarted"),
    }

    strategies: dict[str, float] = {
        "steal_attempts": metrics.counter_value("steal.attempts"),
        "steal_hits": metrics.counter_value("steal.hits"),
        "steal_denies": metrics.counter_value("steal.denies"),
        "steal_aborts": metrics.counter_value("steal.aborts"),
        "steal_units": metrics.counter_value("steal.units"),
        "steal_deaths": metrics.counter_value("steal.deaths"),
        "robust_reassigns": metrics.counter_value("robust.reassigns"),
        "robust_duplicates": metrics.counter_value("robust.duplicates"),
        "robust_deaths": metrics.counter_value("robust.deaths"),
        "lost_units": (
            metrics.counter_value("steal.lost_units")
            + metrics.counter_value("robust.lost_units")
        ),
    }

    ckpt: dict[str, float] = {
        "epochs_opened": metrics.counter_value("ckpt.epochs_opened"),
        "epochs_committed": metrics.counter_value("ckpt.epochs_committed"),
        "epochs_aborted": metrics.counter_value("ckpt.epochs_aborted"),
        "barrier_misses": metrics.counter_value("ckpt.barrier_misses"),
        "snapshots": metrics.counter_value("ckpt.snapshots"),
        "snapshot_bytes": metrics.counter_value("ckpt.snapshot_bytes"),
        "rollbacks": metrics.counter_value("ckpt.rollbacks"),
        "units_restored": metrics.counter_value("ckpt.units_restored"),
        "slave_restores": metrics.counter_value("ckpt.slave_restores"),
    }

    send_cpu = metrics.gauge_value("net.send_cpu_per_msg")
    recv_cpu = metrics.gauge_value("net.recv_cpu_per_msg")
    status_msgs = metrics.counter_value("net.msgs.status")
    instr_msgs = metrics.counter_value("net.msgs.instr")
    move_sends, move_send_cpu, move_send_units = _span_stats(log, "move", "send")
    move_recvs, move_recv_cpu, _ = _span_stats(log, "move", "recv")
    merges, merge_cpu, merge_units = _span_stats(log, "pipeline", "catchup")
    latency = metrics.histogram("lb.balance_latency_s").summary()

    idle_per_slave = {
        str(u.pid): u.idle_cpu for u in result.rusage.usages if u.pid < n
    }
    overhead: dict[str, object] = {
        "interaction": {
            "status_msgs": status_msgs,
            "instr_msgs": instr_msgs,
            "status_bytes": metrics.counter_value("net.bytes.status"),
            "instr_bytes": metrics.counter_value("net.bytes.instr"),
            "est_cpu_s": (status_msgs + instr_msgs) * (send_cpu + recv_cpu),
        },
        "movement": {
            "move_msgs": metrics.counter_value("net.msgs.move"),
            "move_bytes": metrics.counter_value("net.bytes.move"),
            "sends": float(move_sends),
            "recvs": float(move_recvs),
            "units_sent": move_send_units,
            "send_cpu_s": move_send_cpu,
            "recv_cpu_s": move_recv_cpu,
        },
        "balance_latency_s": latency,
        "pipeline_catchup": {
            "merges": float(merges),
            "units_merged": merge_units,
            "cpu_s": merge_cpu,
        },
        "idle": {
            "per_slave_s": idle_per_slave,
            "total_s": sum(idle_per_slave.values()),
        },
    }

    return RunReport(
        name=result.name,
        n_slaves=n,
        elapsed=result.elapsed,
        sequential_time=result.sequential_time,
        speedup=result.speedup,
        efficiency=result.efficiency,
        dlb_enabled=result.dlb_enabled,
        dlb=dlb,
        faults=faults,
        ckpt=ckpt,
        orch=orch,
        strategies=strategies,
        slaves=slaves,
        imbalance=_imbalance_timeline(log, n),
        overhead=overhead,
        metrics=metrics.snapshot(),
        event_counts=log.categories(),
    )
