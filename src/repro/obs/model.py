"""Typed observability events.

Two record shapes cover everything the simulator and runtime emit:

- :class:`SpanEvent` — something with duration in *simulated* time
  (a compute burst, a message in flight, a work-movement transfer, a
  balance phase from instruction to last ack).
- :class:`CounterEvent` — an instantaneous sample (a slave status
  report's measured rate, the master's filtered rate, the work count
  assigned to a slave after a redistribution decision).

Both are frozen dataclasses so events are immutable once emitted, and
both serialize to flat JSON objects (``kind`` discriminates) so an event
stream round-trips through JSONL.

Common ``category`` values (see ``docs/observability.md``):

``engine``
    simulator event-loop spans.
``cpu``
    per-processor compute bursts.
``net``
    message deliveries (span is send-time to arrival-time).
``rate``
    raw / filtered computation-rate samples, per slave.
``lb``
    load-balancer activity: reports, redistribution decisions, work
    assignments, move round-trips.
``move``
    slave-side work movement (marshalling sends, applying receives).
``pipeline``
    pipeline-mode catch-up merges.
``access``
    slave-side element-write batches (unit ids + repetition in ``meta``),
    consumed by the happens-before replay checker in ``repro.analysis``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

__all__ = [
    "CounterEvent",
    "Event",
    "SpanEvent",
    "event_from_dict",
    "event_time",
    "event_to_dict",
]

MASTER_PID = 0
"""Processor id the master runs on (mirrors the runtime's convention)."""

NO_PID = -1
"""Pid used for events not attributable to a single processor."""


@dataclass(frozen=True)
class SpanEvent:
    """An interval of simulated time attributed to one processor.

    ``value`` carries the span's natural magnitude (CPU seconds for a
    compute burst, bytes for a message, units for a work transfer) and
    ``meta`` holds small JSON-safe annotations (tags, move ids, flags).
    """

    category: str
    name: str
    t_start: float
    t_end: float
    pid: int = NO_PID
    value: float = 0.0
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (never negative)."""
        return max(0.0, self.t_end - self.t_start)


@dataclass(frozen=True)
class CounterEvent:
    """An instantaneous sample of a named quantity on one processor."""

    category: str
    name: str
    t: float
    value: float
    pid: int = NO_PID
    meta: Mapping[str, object] = field(default_factory=dict)


Event = Union[SpanEvent, CounterEvent]
"""Union of the two event record shapes."""


def event_time(event: Event) -> float:
    """The time an event becomes known: sample time, or span end."""
    if isinstance(event, SpanEvent):
        return event.t_end
    return event.t


def event_to_dict(event: Event) -> dict[str, object]:
    """Serialize an event to a flat JSON-safe dict.

    The ``kind`` key ("span" | "counter") discriminates the shape for
    :func:`event_from_dict`.  ``meta`` is copied so the result does not
    alias the (immutable) event.
    """
    if isinstance(event, SpanEvent):
        return {
            "kind": "span",
            "category": event.category,
            "name": event.name,
            "t_start": event.t_start,
            "t_end": event.t_end,
            "pid": event.pid,
            "value": event.value,
            "meta": dict(event.meta),
        }
    return {
        "kind": "counter",
        "category": event.category,
        "name": event.name,
        "t": event.t,
        "pid": event.pid,
        "value": event.value,
        "meta": dict(event.meta),
    }


def _as_float(value: object) -> float:
    """Coerce a JSON scalar to float, rejecting non-numeric shapes."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"expected a number, got {value!r}")
    return float(value)


def _as_int(value: object) -> int:
    """Coerce a JSON scalar to int, rejecting non-integral shapes."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"expected an integer, got {value!r}")
    return value


def event_from_dict(data: Mapping[str, object]) -> Event:
    """Inverse of :func:`event_to_dict`.

    Raises :class:`ValueError` for an unknown ``kind`` or malformed
    fields so corrupt JSONL fails loudly rather than deserializing into
    the wrong shape.
    """
    kind = data.get("kind")
    meta_obj = data.get("meta", {})
    meta = dict(meta_obj) if isinstance(meta_obj, Mapping) else {}
    if kind == "span":
        return SpanEvent(
            category=str(data["category"]),
            name=str(data["name"]),
            t_start=_as_float(data["t_start"]),
            t_end=_as_float(data["t_end"]),
            pid=_as_int(data.get("pid", NO_PID)),
            value=_as_float(data.get("value", 0.0)),
            meta=meta,
        )
    if kind == "counter":
        return CounterEvent(
            category=str(data["category"]),
            name=str(data["name"]),
            t=_as_float(data["t"]),
            value=_as_float(data.get("value", 0.0)),
            pid=_as_int(data.get("pid", NO_PID)),
            meta=meta,
        )
    raise ValueError(f"unknown event kind: {kind!r}")
