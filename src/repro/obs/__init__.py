"""Structured observability: typed events, metrics, and run reports.

The paper's central claims (Figures 4-9) are time-series claims —
computation rates, filtered rates, work assignment, and load-balance
cost over simulated time.  This subpackage is the machine-readable
instrumentation layer behind them:

- :mod:`repro.obs.model` — typed event records (:class:`SpanEvent`,
  :class:`CounterEvent`) carrying sim-time, processor id, and category.
- :mod:`repro.obs.log` — an append-only :class:`EventLog` with JSONL
  round-tripping.
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms with a cheap no-op mode so dedicated-mode
  benchmarks pay ~0 overhead when observability is disabled.
- :mod:`repro.obs.recorder` — the :class:`Recorder` facade the simulator
  and runtime emit through.
- :mod:`repro.obs.report` — :class:`RunReport`, a JSON document
  aggregating one run (per-slave rate timelines, imbalance over time,
  DLB overhead breakdown mirroring the paper's Table 2 categories).

The package is deliberately dependency-free (stdlib only) and fully
typed; ``mypy --strict`` and ``ruff`` run against it in CI.
"""

from .log import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .model import (
    CounterEvent,
    Event,
    SpanEvent,
    event_from_dict,
    event_time,
    event_to_dict,
)
from .recorder import NULL_RECORDER, Recorder
from .report import RunReport, build_run_report

__all__ = [
    "NULL_RECORDER",
    "Counter",
    "CounterEvent",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "RunReport",
    "SpanEvent",
    "build_run_report",
    "event_from_dict",
    "event_time",
    "event_to_dict",
]
