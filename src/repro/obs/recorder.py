"""The :class:`Recorder` facade the simulator and runtime emit through.

A recorder bundles one :class:`~repro.obs.log.EventLog` and one
:class:`~repro.obs.metrics.MetricsRegistry` behind a single ``enabled``
flag.  Instrumented code holds a recorder reference and guards emission
sites with ``if recorder.enabled:`` so that a disabled run pays one
attribute load + branch per site and nothing else.  The module-level
:data:`NULL_RECORDER` is the shared disabled instance used wherever no
recorder was supplied.
"""

from __future__ import annotations

from .log import EventLog
from .metrics import MetricsRegistry
from .model import NO_PID, CounterEvent, SpanEvent

__all__ = ["NULL_RECORDER", "Recorder"]


class Recorder:
    """One run's event log + metrics registry behind an enable flag."""

    __slots__ = ("enabled", "log", "metrics")

    def __init__(
        self,
        enabled: bool = True,
        log: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.enabled = enabled
        self.log = log if log is not None else EventLog()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=enabled)
        )

    @classmethod
    def disabled(cls) -> "Recorder":
        """A fresh recorder in no-op mode (see also :data:`NULL_RECORDER`)."""
        return cls(enabled=False)

    def emit_span(
        self,
        category: str,
        name: str,
        t_start: float,
        t_end: float,
        pid: int = NO_PID,
        value: float = 0.0,
        meta: dict[str, object] | None = None,
    ) -> None:
        """Record a :class:`SpanEvent` (no-op when disabled)."""
        if not self.enabled:
            return
        self.log.emit(
            SpanEvent(
                category=category,
                name=name,
                t_start=t_start,
                t_end=t_end,
                pid=pid,
                value=value,
                meta=meta if meta is not None else {},
            )
        )

    def emit_counter(
        self,
        category: str,
        name: str,
        t: float,
        value: float,
        pid: int = NO_PID,
        meta: dict[str, object] | None = None,
    ) -> None:
        """Record a :class:`CounterEvent` (no-op when disabled)."""
        if not self.enabled:
            return
        self.log.emit(
            CounterEvent(
                category=category,
                name=name,
                t=t,
                value=value,
                pid=pid,
                meta=meta if meta is not None else {},
            )
        )


NULL_RECORDER = Recorder.disabled()
"""Shared disabled recorder: the default everywhere observability is off."""
