"""Append-only event log with filtering and JSONL round-tripping.

The :class:`EventLog` preserves *emission order*, which in the
discrete-event simulator is deterministic (the engine breaks time ties
FIFO).  :meth:`EventLog.sorted_events` additionally orders by event
time with emission order as the tie-break, which is the order a
post-hoc reader wants.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from .model import CounterEvent, Event, event_from_dict, event_time, event_to_dict

__all__ = ["EventLog"]


class EventLog:
    """An in-memory, append-only sequence of observability events."""

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: list[Event] = list(events)

    def emit(self, event: Event) -> None:
        """Append one event (emission order is preserved)."""
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def events(self) -> list[Event]:
        """All events in emission order (a copy; safe to mutate)."""
        return list(self._events)

    def sorted_events(self) -> list[Event]:
        """Events ordered by :func:`event_time`, emission order tie-break."""
        indexed = list(enumerate(self._events))
        indexed.sort(key=lambda pair: (event_time(pair[1]), pair[0]))
        return [event for _, event in indexed]

    def filter(
        self,
        *,
        category: str | None = None,
        name: str | None = None,
        pid: int | None = None,
    ) -> list[Event]:
        """Events matching every given criterion, in emission order."""
        out: list[Event] = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if pid is not None and event.pid != pid:
                continue
            out.append(event)
        return out

    def counter_series(
        self, name: str, pid: int | None = None
    ) -> list[tuple[float, float]]:
        """(t, value) samples for a named counter, time-ordered."""
        samples = [
            (event.t, event.value)
            for event in self._events
            if isinstance(event, CounterEvent)
            and event.name == name
            and (pid is None or event.pid == pid)
        ]
        samples.sort(key=lambda tv: tv[0])
        return samples

    def categories(self) -> dict[str, int]:
        """Event count per category (sorted by category name)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return dict(sorted(counts.items()))

    # -- serialization ---------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact JSON object per line, emission order."""
        return "".join(
            json.dumps(event_to_dict(event), sort_keys=True) + "\n"
            for event in self._events
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        """Parse a JSONL stream produced by :meth:`to_jsonl`."""
        log = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError(f"expected a JSON object per line, got {data!r}")
            log.emit(event_from_dict(data))
        return log

    def save(self, path: str | Path) -> None:
        """Write the log as JSONL to ``path``."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "EventLog":
        """Read a JSONL log written by :meth:`save`."""
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"))
