"""Counters, gauges, and histograms with a cheap no-op mode.

A :class:`MetricsRegistry` hands out named instruments.  When the
registry is *disabled* it hands out shared null instruments whose
mutators are empty method bodies — instrumented hot paths additionally
guard on ``recorder.enabled`` so the disabled cost is one attribute
load and branch, which is what keeps dedicated-mode benchmarks within
the <3% observability budget.

Conventional metric names used by the simulator and runtime are listed
in ``docs/observability.md`` (e.g. ``net.msgs.status``,
``lb.units_migrated``, ``lb.balance_latency_s``).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A value that can be set to arbitrary levels."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self.value = value


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max/mean).

    Deliberately not bucketed: run reports want summary statistics, and
    the raw samples that matter are already in the event log as spans.
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin = 0.0
        self.vmax = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self.count == 0:
            self.vmin = value
            self.vmax = value
        else:
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """JSON-safe summary statistics."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    """Counter whose ``inc`` does nothing (shared when disabled)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge(Gauge):
    """Gauge whose ``set`` does nothing (shared when disabled)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    """Histogram whose ``observe`` does nothing (shared when disabled)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named instruments for one run.

    ``enabled=False`` makes every accessor return a shared null
    instrument without touching the registry dict, so a disabled
    registry allocates nothing and records nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if not self.enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        if not self.enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter, or ``default`` if never created."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else default

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a gauge, or ``default`` if never created."""
        instrument = self._gauges.get(name)
        return instrument.value if instrument is not None else default

    def snapshot(self) -> dict[str, object]:
        """JSON-safe snapshot of every instrument, sorted by name."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }
