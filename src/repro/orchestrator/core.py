"""The sweep engine: queue, dispatch, retries, timeouts, resume.

:func:`submit_sweep` is the single entry point every sweep in the repo
goes through (``repro bench``, the chaos matrix, the scaling-crossover
study).  It drives a warm worker pool through a priority queue of
:class:`~.jobs.JobSpec` with:

- per-attempt wall-clock **timeouts** (the hung worker is killed and
  respawned, the job retried);
- **retry with exponential backoff + jitter** — the jitter is seeded
  from the job digest so schedules are reproducible across processes;
- **graceful degradation**: a job that exhausts its retries is recorded
  ``failed``/``timeout`` and the sweep continues, down to a single
  surviving worker;
- a **write-ahead journal** of every state transition plus a
  **content-hash result cache**, so a SIGKILLed orchestrator resumes
  exactly where it left off and repeated cells are free;
- **clean interruption**: SIGINT/SIGTERM stop dispatching, kill
  in-flight workers, flush the journal, and return the partial sweep
  (in-flight jobs stay re-runnable on resume) — no orphaned spawn
  workers.

The loop itself is single-threaded: it blocks in
:func:`multiprocessing.connection.wait` on the busy workers' pipes with
a deadline-aware timeout, which is both simpler and stricter to reason
about than callback pools.
"""

from __future__ import annotations

import heapq
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import Any, Callable, Mapping, Sequence

from ..faults.selfchaos import SelfChaos
from ..obs.recorder import Recorder
from .digest import content_digest
from .jobs import JobRecord, JobSpec, JobState, resolve_fn
from .journal import Journal, JournalView, replay_journal
from .pool import WarmPool, WorkerHandle, get_pool
from .store import ResultStore

__all__ = [
    "SWEEP_SCHEMA",
    "SweepResult",
    "cancel_sweep",
    "resume_sweep",
    "submit_sweep",
    "sweep_status",
]

SWEEP_SCHEMA = "repro-orch-sweep/1"

_WAIT_SLICE_S = 0.25
"""Upper bound on one blocking wait, keeping signal response snappy."""

_HEARTBEAT_S = 2.0
"""How often idle workers are health-checked during a sweep."""

_BACKOFF_CAP_S = 30.0
_JITTER_FRAC = 0.25


def _backoff_delay(spec: JobSpec, attempt: int) -> float:
    """Exponential backoff with digest-seeded jitter (reproducible)."""
    if spec.backoff_s == 0:
        return 0.0
    base = min(_BACKOFF_CAP_S, spec.backoff_s * (2.0 ** max(0, attempt - 1)))
    jitter = random.Random(f"{spec.digest}:{attempt}").random()
    return base * (1.0 + _JITTER_FRAC * jitter)


@dataclass
class SweepResult:
    """Outcome of one ``submit_sweep`` call."""

    sweep_id: str
    created_unix: float
    records: list[JobRecord]
    stats: dict[str, float]
    interrupted: bool = False
    state_dir: str | None = None
    wall_s: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every job produced a result and nothing interrupted."""
        return not self.interrupted and all(r.ok for r in self.records)

    @property
    def results(self) -> dict[str, Any]:
        """``job id -> result`` for every successful (or cached) job."""
        return {r.spec.id: r.result for r in self.records if r.ok}

    def failed_records(self) -> list[JobRecord]:
        """Jobs that reached a non-success final state."""
        return [r for r in self.records if r.final and not r.ok]

    def record(self, job_id: str) -> JobRecord:
        """The record for one job id (raises ``KeyError`` if unknown)."""
        for r in self.records:
            if r.spec.id == job_id:
                return r
        raise KeyError(job_id)

    def merged_doc(self) -> dict[str, Any]:
        """Deterministic merged document (jobs in submission order).

        ``created_unix`` comes from the journal header, so an
        uninterrupted run and a crash-plus-resume of the same sweep in
        the same state dir serialize byte-identically when the job
        functions are deterministic.
        """
        return {
            "schema": SWEEP_SCHEMA,
            "sweep_id": self.sweep_id,
            "created_unix": self.created_unix,
            "meta": dict(self.meta),
            "jobs": [r.summary() for r in self.records],
            "results": {r.spec.id: r.result for r in self.records if r.ok},
        }

    def make_report(self) -> Any:
        """A :class:`~repro.obs.RunReport` carrying the ``orch`` section."""
        from ..obs.report import RunReport

        stats = self.stats
        orch = {key: float(value) for key, value in sorted(stats.items())}
        return RunReport(
            name=f"sweep:{self.sweep_id}",
            n_slaves=int(stats.get("workers", 0)),
            elapsed=self.wall_s,
            sequential_time=0.0,
            speedup=0.0,
            efficiency=0.0,
            dlb_enabled=False,
            orch=orch,
        )


class _Sweep:
    """Mutable engine state for one submit_sweep call."""

    def __init__(
        self,
        specs: Sequence[JobSpec],
        state_dir: str | Path | None,
        workers: int,
        meta: Mapping[str, Any] | None,
        recorder: Recorder | None,
        chaos: SelfChaos | None,
        pool_key: str | None,
    ) -> None:
        ids = [spec.id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in sweep")
        self.state_dir = str(state_dir) if state_dir is not None else None
        self.recorder = recorder if recorder is not None else Recorder.disabled()
        self.chaos = chaos
        self.workers_requested = max(1, workers)
        self.t0 = time.monotonic()
        self.stop_requested = False
        self.stop_signal: int | None = None

        view = (
            replay_journal(state_dir)
            if state_dir is not None
            else JournalView()
        )
        self.journal = Journal(state_dir)
        self.store = ResultStore(state_dir)

        # Journal-known specs the caller did not re-submit still belong
        # to the sweep (resume reconstructs the full job list from them).
        known = {spec.id for spec in specs}
        all_specs = list(specs) + [
            spec for spec in view.specs if spec.id not in known
        ]

        if view.empty:
            fns = sorted({spec.fn for spec in all_specs})
            self.sweep_id = content_digest(
                "sweep", {"fns": fns, "ids": sorted(s.id for s in all_specs)}
            )[:16]
            header = self.journal.sweep_header(self.sweep_id, meta)
            self.created_unix = float(header["created_unix"])
            self.meta = dict(meta or {})
        else:
            self.sweep_id = view.sweep_id
            self.created_unix = view.created_unix
            self.meta = dict(view.meta)
            if meta:
                self.meta.update(meta)
        journaled = {spec.id for spec in view.specs}
        for spec in all_specs:
            if spec.id not in journaled:
                self.journal.job(spec)

        self.records: list[JobRecord] = []
        self.by_id: dict[str, JobRecord] = {}
        for spec in all_specs:
            record = JobRecord(spec=spec, attempts=view.attempts.get(spec.id, 0))
            final = view.final_state(spec.id)
            if final is not None:
                record.state = final
                record.error = view.details.get(spec.id)
                if final in (JobState.SUCCEEDED, JobState.CACHED):
                    result = self.store.get(spec.digest)
                    if result is None:
                        # Journal says done but the result is gone (e.g.
                        # GC'd store): the job must run again.
                        record.state = JobState.PENDING
                        record.error = None
                    else:
                        record.result = result
            self.records.append(record)
            self.by_id[spec.id] = record

        self.stats: dict[str, float] = {
            "jobs": float(len(self.records)),
            "workers": 0.0,
            "resumed": 0.0,
            "cache_hits": 0.0,
            "succeeded": 0.0,
            "cached": 0.0,
            "failed": 0.0,
            "timeout": 0.0,
            "cancelled": 0.0,
            "retries": 0.0,
            "worker_restarts": 0.0,
            "worker_kills": 0.0,
        }
        self.stats["resumed"] = float(
            sum(1 for r in self.records if r.final)
        )
        self._finals_seen = 0
        self._queue: list[tuple[int, int, str]] = []
        self._seq = 0
        self.not_before: dict[str, float] = {}
        self.pool: WarmPool | None = None
        self.pool_key = pool_key or content_digest(
            "pool", {"fns": sorted({spec.fn for spec in all_specs})}
        )

        # Cancellation requested via `repro orchestrate cancel` between
        # runs applies now, before anything is dispatched.
        for record in self.records:
            if not record.final and view.is_cancelled(record.spec.id):
                self._finalize(record, JobState.CANCELLED, "cancelled by operator")

    # -- observability ---------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self.t0

    def _emit(
        self,
        name: str,
        value: float = 1.0,
        meta: dict[str, object] | None = None,
    ) -> None:
        rec = self.recorder
        if rec.enabled:
            rec.emit_counter("orch", name, self._now(), value, meta=meta)

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.recorder.metrics.counter(name).inc(amount)

    # -- state transitions (journal first, memory second) ---------------

    def _transition(
        self,
        record: JobRecord,
        state: JobState,
        detail: str | None = None,
        digest: str | None = None,
    ) -> None:
        self.journal.transition(
            record.spec.id, state, record.attempts, detail=detail, digest=digest
        )
        record.state = state

    def _finalize(
        self, record: JobRecord, state: JobState, detail: str | None = None
    ) -> None:
        digest = record.spec.digest if state in (
            JobState.SUCCEEDED, JobState.CACHED
        ) else None
        self._transition(record, state, detail=detail, digest=digest)
        record.error = detail if state not in (
            JobState.SUCCEEDED, JobState.CACHED
        ) else None
        key = state.value
        if key in self.stats:
            self.stats[key] += 1.0
        self._count(f"orch.jobs.{key}")
        self._emit(key, meta={"job": record.spec.id})
        self._finals_seen += 1
        if (
            self.chaos is not None
            and self.chaos.kill_orchestrator_jobs is not None
            and self._finals_seen >= self.chaos.kill_orchestrator_jobs
        ):
            # Self-chaos: die the hard way, journal already on disk.
            self.journal.flush()
            os.kill(os.getpid(), signal.SIGKILL)

    def _enqueue(self, record: JobRecord) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue, (-record.spec.priority, self._seq, record.spec.id)
        )

    def _attempt_failed(
        self, record: JobRecord, detail: str, timed_out: bool
    ) -> None:
        """One attempt crashed/errored/timed out: retry or finalize."""
        spec = record.spec
        if record.attempts > spec.max_retries:
            self._finalize(
                record,
                JobState.TIMEOUT if timed_out else JobState.FAILED,
                detail,
            )
            return
        delay = _backoff_delay(spec, record.attempts)
        self.not_before[spec.id] = time.monotonic() + delay
        record.state = JobState.PENDING
        record.error = detail
        self.stats["retries"] += 1.0
        self._count("orch.retries")
        self._emit(
            "retry",
            meta={
                "job": spec.id,
                "attempt": record.attempts,
                "delay_s": round(delay, 3),
                "timed_out": timed_out,
            },
        )
        self._enqueue(record)

    # -- cache -----------------------------------------------------------

    def serve_from_cache(self) -> None:
        """Mark every pending job whose digest is already stored."""
        for record in self.records:
            if record.final:
                continue
            cached = self.store.get(record.spec.digest)
            if cached is not None:
                record.result = cached
                self.stats["cache_hits"] += 1.0
                self._count("orch.cache_hits")
                self._emit("cache_hit", meta={"job": record.spec.id})
                self._finalize(record, JobState.CACHED)

    def pending_records(self) -> list[JobRecord]:
        """Jobs that still need an execution attempt."""
        return [r for r in self.records if not r.final]

    # -- completion handling --------------------------------------------

    def job_succeeded(self, record: JobRecord, result: Any) -> None:
        record.result = result
        self.store.put(record.spec.digest, result)
        self._finalize(record, JobState.SUCCEEDED)

    def finish(self, interrupted: bool) -> SweepResult:
        self.journal.close()
        return SweepResult(
            sweep_id=self.sweep_id,
            created_unix=self.created_unix,
            records=self.records,
            stats=self.stats,
            interrupted=interrupted,
            state_dir=self.state_dir,
            wall_s=self._now(),
            meta=self.meta,
        )


def _run_inline(sweep: _Sweep) -> None:
    """Single-worker in-process executor (test and one-core path).

    No preemptive timeouts — a wall-clock budget is checked after the
    attempt returns — and self-chaos worker kills do not apply (there is
    no worker process to kill).  Everything else (retries, backoff,
    journal, cache) behaves exactly like the pool path.
    """
    for record in sweep.pending_records():
        sweep._enqueue(record)
    queue = sweep._queue
    while queue and not sweep.stop_requested:
        _, _, job_id = heapq.heappop(queue)
        record = sweep.by_id[job_id]
        if record.final:
            continue
        wake = sweep.not_before.get(job_id)
        if wake is not None:
            time.sleep(max(0.0, wake - time.monotonic()))
        record.attempts += 1
        sweep._transition(record, JobState.RUNNING)
        sweep._emit("dispatch", meta={"job": job_id, "attempt": record.attempts})
        t0 = time.monotonic()
        try:
            result = resolve_fn(record.spec.fn)(**dict(record.spec.params))
        except KeyboardInterrupt:
            sweep.stop_requested = True
            record.state = JobState.PENDING
            break
        except BaseException as exc:  # noqa: BLE001 - isolate any job error
            import traceback

            detail = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            sweep._attempt_failed(record, detail, timed_out=False)
            continue
        elapsed = time.monotonic() - t0
        budget = record.spec.timeout_s
        if budget is not None and elapsed > budget:
            sweep._attempt_failed(
                record,
                f"attempt exceeded wall-clock budget "
                f"({elapsed:.2f}s > {budget:.2f}s)",
                timed_out=True,
            )
            continue
        sweep.job_succeeded(record, result)


def _handle_worker_loss(
    sweep: _Sweep, pool: WarmPool, worker: WorkerHandle, reason: str
) -> None:
    """A worker died or hung: fail its in-flight attempt, respawn it."""
    job_id = worker.busy_job
    timed_out = reason == "timeout"
    if job_id is not None:
        record = sweep.by_id[job_id]
        detail = (
            f"attempt exceeded wall-clock budget ({record.spec.timeout_s}s)"
            if timed_out
            else f"worker {worker.worker_id} died mid-job ({reason})"
        )
        worker.finish()
        sweep._attempt_failed(record, detail, timed_out=timed_out)
    sweep.stats["worker_restarts"] += 1.0
    sweep._count("orch.workers.restarted")
    sweep._emit(
        "worker_restart",
        meta={"worker": worker.worker_id, "reason": reason},
    )
    pool.restart_worker(worker)


def _run_pool(sweep: _Sweep, workers: int) -> None:
    """The pool executor: dispatch/collect loop with health checks."""
    import multiprocessing.connection

    pool = get_pool(sweep.pool_key, workers)
    sweep.pool = pool
    pool.arm_chaos(sweep.chaos)
    pool.start()
    sweep.stats["workers"] = float(len(pool.workers))
    sweep._count("orch.workers.spawned")

    for record in sweep.pending_records():
        sweep._enqueue(record)
    queue = sweep._queue
    last_heartbeat = time.monotonic()

    def dispatchable() -> str | None:
        """Pop the highest-priority job whose backoff window has passed."""
        now = time.monotonic()
        skipped: list[tuple[int, int, str]] = []
        picked: str | None = None
        while queue:
            entry = heapq.heappop(queue)
            job_id = entry[2]
            record = sweep.by_id[job_id]
            if record.final:
                continue
            if sweep.not_before.get(job_id, 0.0) > now:
                skipped.append(entry)
                continue
            picked = job_id
            break
        for entry in skipped:
            heapq.heappush(queue, entry)
        return picked

    def in_flight() -> list[WorkerHandle]:
        return pool.busy_workers()

    while (queue or in_flight()) and not sweep.stop_requested:
        # Dispatch as much as the idle workers allow.
        for worker in pool.idle_workers():
            if sweep.stop_requested:
                break
            job_id = dispatchable()
            if job_id is None:
                break
            record = sweep.by_id[job_id]
            record.attempts += 1
            sweep._transition(record, JobState.RUNNING)
            sweep._emit(
                "dispatch",
                value=float(worker.worker_id),
                meta={"job": job_id, "attempt": record.attempts},
            )
            try:
                killed = pool.dispatch(
                    worker,
                    job_id,
                    record.spec.fn,
                    record.spec.params,
                    record.spec.timeout_s,
                )
                if killed:
                    sweep.stats["worker_kills"] += 1.0
            except (OSError, BrokenPipeError, ValueError):
                _handle_worker_loss(sweep, pool, worker, "dispatch failed")

        busy = in_flight()
        if not busy and not queue:
            break
        now = time.monotonic()
        timeout = _WAIT_SLICE_S
        for worker in busy:
            if worker.deadline is not None:
                timeout = min(timeout, max(0.0, worker.deadline - now))
        for job_id, wake in sweep.not_before.items():
            if not sweep.by_id[job_id].final:
                timeout = min(timeout, max(0.0, wake - now))
        if busy:
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=timeout
            )
        else:
            time.sleep(min(timeout, _WAIT_SLICE_S))
            ready = []

        by_conn = {w.conn: w for w in pool.workers}
        for conn in ready:
            worker = by_conn.get(conn)  # type: ignore[arg-type]
            if worker is None:
                continue
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                _handle_worker_loss(sweep, pool, worker, "pipe EOF")
                continue
            kind = msg[0]
            if kind == "pong":
                worker.pending_ping = None
                continue
            job_id = msg[1]
            record = sweep.by_id.get(job_id)
            worker.finish()
            if record is None or record.final:
                continue
            if kind == "ok":
                sweep.job_succeeded(record, msg[2])
            else:
                sweep._attempt_failed(record, str(msg[2]), timed_out=False)

        # Enforce wall-clock budgets on whatever is still in flight.
        now = time.monotonic()
        for worker in in_flight():
            if worker.deadline is not None and now > worker.deadline:
                sweep.stats["worker_kills"] += 1.0
                sweep._count("orch.workers.killed")
                _handle_worker_loss(sweep, pool, worker, "timeout")

        # Periodic heartbeat over idle workers (catches silent deaths).
        if now - last_heartbeat >= _HEARTBEAT_S:
            last_heartbeat = now
            for worker in pool.heartbeat(deep=True):
                _handle_worker_loss(sweep, pool, worker, "heartbeat")

    if sweep.stop_requested:
        # Kill in-flight workers (their jobs stay RUNNING in the journal
        # and re-run on resume); idle workers stay warm for this
        # process, and the atexit hook reaps them at interpreter exit.
        for worker in in_flight():
            job_id = worker.busy_job
            if job_id is not None:
                record = sweep.by_id[job_id]
                record.state = JobState.PENDING
                record.error = "interrupted"
            worker.stop(kill=True)
        pool.start()
        sweep.journal.flush()


def submit_sweep(
    jobs: Sequence[JobSpec],
    *,
    state_dir: str | Path | None = None,
    workers: int = 1,
    meta: Mapping[str, Any] | None = None,
    recorder: Recorder | None = None,
    chaos: SelfChaos | None = None,
    pool_key: str | None = None,
    mode: str = "auto",
) -> SweepResult:
    """Run a sweep of jobs to completion (or clean interruption).

    ``state_dir`` enables the write-ahead journal and the content-hash
    result cache (``None`` = in-memory, not resumable).  ``workers`` is
    the pool width; ``mode`` is ``"auto"`` (inline when one worker and
    no chaos), ``"inline"``, or ``"pool"``.  ``pool_key`` overrides the
    warm-pool identity (defaults to a digest of the job fn set).

    SIGINT/SIGTERM during the sweep stop dispatching, kill in-flight
    workers, flush the journal, and return a partial ``SweepResult``
    with ``interrupted=True`` — pending and in-flight jobs remain
    re-runnable by a later call with the same ``state_dir``.
    """
    if mode not in ("auto", "inline", "pool"):
        raise ValueError(f"unknown mode {mode!r}")
    sweep = _Sweep(jobs, state_dir, workers, meta, recorder, chaos, pool_key)
    sweep._count("orch.jobs.submitted", float(len(sweep.records)))
    sweep._emit("submitted", value=float(len(sweep.records)))
    sweep.serve_from_cache()

    inline = mode == "inline" or (
        mode == "auto"
        and max(1, workers) == 1
        and (chaos is None or chaos.kill_worker_dispatch is None)
    )

    handled: dict[int, Any] = {}

    def _request_stop(signum: int, frame: FrameType | None) -> None:
        sweep.stop_requested = True
        sweep.stop_signal = signum

    on_main = threading.current_thread() is threading.main_thread()
    if on_main:
        for signum in (signal.SIGINT, signal.SIGTERM):
            handled[signum] = signal.signal(signum, _request_stop)
    try:
        if sweep.pending_records():
            if inline:
                _run_inline(sweep)
            else:
                _run_pool(sweep, max(1, workers))
    except KeyboardInterrupt:
        sweep.stop_requested = True
    finally:
        for signum, previous in handled.items():
            signal.signal(signum, previous)
    interrupted = sweep.stop_requested
    if interrupted:
        sweep._emit("interrupted", meta={"signal": sweep.stop_signal})
        sweep._count("orch.interrupted")
    result = sweep.finish(interrupted)
    if sweep.pool is not None:
        result.stats["pool_spawned"] = float(sweep.pool.spawned)
        result.stats["pool_restarted"] = float(sweep.pool.restarted)
        result.stats["pool_dispatches"] = float(sweep.pool.dispatches)
    return result


def resume_sweep(
    state_dir: str | Path,
    *,
    workers: int = 1,
    recorder: Recorder | None = None,
    chaos: SelfChaos | None = None,
    mode: str = "auto",
) -> SweepResult:
    """Resume a journaled sweep purely from its state directory.

    The job list is reconstructed from the journal's ``job`` records;
    completed jobs are served from the result store, cancelled jobs stay
    cancelled, everything else runs.
    """
    view = replay_journal(state_dir)
    if view.empty:
        raise FileNotFoundError(
            f"no sweep journal under {state_dir!r}; nothing to resume"
        )
    return submit_sweep(
        [],
        state_dir=state_dir,
        workers=workers,
        recorder=recorder,
        chaos=chaos,
        mode=mode,
    )


def sweep_status(state_dir: str | Path) -> dict[str, Any]:
    """JSON-safe status of a journaled sweep (no execution)."""
    view = replay_journal(state_dir)
    store = ResultStore(state_dir)
    jobs = []
    counts: dict[str, int] = {}
    for spec in view.specs:
        state = view.states.get(spec.id, JobState.PENDING)
        if view.is_cancelled(spec.id) and view.final_state(spec.id) is None:
            state = JobState.CANCELLED
        counts[state.value] = counts.get(state.value, 0) + 1
        jobs.append(
            {
                "id": spec.id,
                "state": state.value,
                "attempts": view.attempts.get(spec.id, 0),
                "digest": spec.digest,
                "cached": spec.digest in store,
                "error": view.details.get(spec.id),
            }
        )
    return {
        "schema": SWEEP_SCHEMA,
        "sweep_id": view.sweep_id,
        "created_unix": view.created_unix,
        "meta": view.meta,
        "torn_records": view.torn_records,
        "counts": counts,
        "jobs": jobs,
    }


def cancel_sweep(
    state_dir: str | Path, job_ids: Sequence[str] | None = None
) -> int:
    """Record cancellation for jobs (all non-final ones by default).

    Takes effect at the next run/resume of the sweep; returns how many
    jobs the request covers right now.
    """
    view = replay_journal(state_dir)
    if view.empty:
        raise FileNotFoundError(
            f"no sweep journal under {state_dir!r}; nothing to cancel"
        )
    with Journal(state_dir) as journal:
        if job_ids is None:
            journal.cancel("*")
            return len(view.pending_specs())
        known = {spec.id for spec in view.specs}
        covered = 0
        for job_id in job_ids:
            if job_id not in known:
                raise KeyError(f"unknown job id {job_id!r}")
            journal.cancel(job_id)
            if view.final_state(job_id) is None:
                covered += 1
        return covered


def run_callable(fn: Callable[..., Any]) -> str:
    """The ``module:callable`` path of a module-level function.

    Convenience for building :class:`JobSpec` values without hand-typing
    import paths (and a guard: the callable must actually be resolvable
    in a fresh process).
    """
    path = f"{fn.__module__}:{fn.__qualname__}"
    resolve_fn(path)
    return path
