"""Job model: specs, lifecycle states, and per-sweep records.

A job is a named call of a module-level function — ``fn`` is a
``"package.module:callable"`` string so specs are picklable, journalable,
and resolvable inside spawn workers without shipping code objects.  The
job's content digest (see :mod:`.digest`) is its cache key.
"""

from __future__ import annotations

import enum
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .digest import content_digest

__all__ = [
    "FINAL_STATES",
    "JobRecord",
    "JobSpec",
    "JobState",
    "resolve_fn",
]


class JobState(enum.Enum):
    """Lifecycle of one job inside a sweep.

    ``CACHED`` is a success served from the content-hash store without
    running anything; ``TIMEOUT`` is a failure whose *last* attempt
    exceeded the job's wall-clock budget (earlier attempts may have
    crashed instead).
    """

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    CACHED = "cached"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


FINAL_STATES = frozenset(
    {
        JobState.SUCCEEDED,
        JobState.CACHED,
        JobState.FAILED,
        JobState.TIMEOUT,
        JobState.CANCELLED,
    }
)
"""States a job never leaves; everything else is re-runnable on resume."""


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work.

    ``params`` must be JSON-safe (they travel through the journal and
    the digest).  ``priority`` is higher-runs-first; ties dispatch in
    submission order.  ``timeout_s`` is a per-attempt wall-clock budget
    enforced by the pool (``None`` means unbounded).  ``max_retries``
    counts *re*-tries: a job runs at most ``max_retries + 1`` times.
    """

    id: str
    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)
    priority: int = 0
    timeout_s: float | None = None
    max_retries: int = 2
    backoff_s: float = 0.25

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("job id must be non-empty")
        if ":" not in self.fn:
            raise ValueError(
                f"job {self.id!r}: fn must be 'module:callable', got {self.fn!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"job {self.id!r}: timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError(f"job {self.id!r}: max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError(f"job {self.id!r}: backoff_s must be >= 0")

    @property
    def digest(self) -> str:
        """Content-hash cache key of this job (independent of id)."""
        return content_digest(self.fn, self.params)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe encoding (journal ``job`` records)."""
        return {
            "id": self.id,
            "fn": self.fn,
            "params": dict(self.params),
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_dict`."""
        timeout = data.get("timeout_s")
        return cls(
            id=str(data["id"]),
            fn=str(data["fn"]),
            params=dict(data.get("params", {})),
            priority=int(data.get("priority", 0)),
            timeout_s=float(timeout) if timeout is not None else None,
            max_retries=int(data.get("max_retries", 2)),
            backoff_s=float(data.get("backoff_s", 0.25)),
        )


@dataclass
class JobRecord:
    """Mutable per-sweep view of one job's progress."""

    spec: JobSpec
    state: JobState = JobState.PENDING
    attempts: int = 0
    error: str | None = None
    result: Any = None

    @property
    def final(self) -> bool:
        """True once the job can never run again in this sweep."""
        return self.state in FINAL_STATES

    @property
    def ok(self) -> bool:
        """True when the job produced a result (fresh or cached)."""
        return self.state in (JobState.SUCCEEDED, JobState.CACHED)

    def summary(self) -> dict[str, Any]:
        """JSON-safe status row (no result payload)."""
        return {
            "id": self.spec.id,
            "state": self.state.value,
            "attempts": self.attempts,
            "digest": self.spec.digest,
            "error": self.error,
        }


def resolve_fn(fn: str) -> Callable[..., Any]:
    """Import and return the callable named by a ``module:callable`` path."""
    mod_name, sep, attr = fn.partition(":")
    if not sep or not mod_name or not attr:
        raise ValueError(f"fn must be 'module:callable', got {fn!r}")
    target: Any = importlib.import_module(mod_name)
    for part in attr.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"{fn!r} resolved to non-callable {target!r}")
    return target  # type: ignore[no-any-return]
