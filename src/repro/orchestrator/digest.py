"""Content-hash digests for job identity and result caching.

The cache key of a job is a SHA-256 over a *canonical* JSON encoding of
``(fn, params)``: keys sorted, compact separators, no NaN/Infinity.
Canonicalization makes the digest independent of dict insertion order,
process identity, and ``PYTHONHASHSEED`` — two processes that build the
same job spec always agree on the key, which is what lets a resumed
sweep (and any later sweep) serve completed cells from the store for
free.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

__all__ = ["DIGEST_SCHEMA", "canonical_json", "content_digest"]

DIGEST_SCHEMA = "repro-orch-digest/1"
"""Version tag mixed into every digest; bump to invalidate old caches."""


def _jsonable(value: Any) -> Any:
    """Reject values that would not survive a JSON round-trip intact."""
    if isinstance(value, float) and (value != value or value in (
        float("inf"), float("-inf")
    )):
        raise ValueError(f"non-finite float {value!r} is not digestable")
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(f"non-string mapping key {key!r} is not digestable")
            out[key] = _jsonable(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    raise ValueError(
        f"value of type {type(value).__name__} is not digestable; "
        "job params must be JSON-safe"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, compact, ASCII-only."""
    return json.dumps(
        _jsonable(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_digest(fn: str, params: Mapping[str, Any]) -> str:
    """SHA-256 hex digest identifying one job's content.

    Stable across processes and ``PYTHONHASHSEED`` values (pinned by a
    property test in ``tests/orchestrator/test_digest.py``).
    """
    text = canonical_json({"schema": DIGEST_SCHEMA, "fn": fn, "params": params})
    return hashlib.sha256(text.encode("ascii")).hexdigest()
