"""``repro orchestrate`` — operate journaled sweeps from the shell.

Subcommands::

    repro orchestrate run JOBS.json --state-dir DIR [--workers N]
    repro orchestrate status --state-dir DIR [--json]
    repro orchestrate resume --state-dir DIR [--workers N]
    repro orchestrate cancel --state-dir DIR [JOB_ID ...]
    repro orchestrate gc --state-dir DIR [--max-age-s S] [--max-entries N]

``JOBS.json`` is a list of job objects in :meth:`JobSpec.to_dict` shape
(``id``/``fn`` required; ``params``, ``priority``, ``timeout_s``,
``max_retries``, ``backoff_s`` optional).  ``run`` and ``resume`` exit 0
when every job succeeded (fresh or cached), 1 when any job ended
``failed``/``timeout``/``cancelled``, and 2 on operator error or
interruption — mirroring the ``repro bench`` exit scheme.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from ..faults.selfchaos import SelfChaos
from .core import SweepResult, cancel_sweep, resume_sweep, submit_sweep, sweep_status
from .jobs import JobSpec
from .store import gc_state_dir

__all__ = ["main"]


def _load_jobs(path: str) -> list[JobSpec]:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of job objects")
    return [JobSpec.from_dict(item) for item in data]


def _parse_chaos(text: str | None) -> SelfChaos | None:
    if text is None:
        return None
    chaos = SelfChaos.parse(text)
    return None if chaos.empty else chaos


def _print_outcome(result: SweepResult, json_out: str | None) -> int:
    doc = result.merged_doc()
    if json_out:
        Path(json_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    counts: dict[str, int] = {}
    for record in result.records:
        counts[record.state.value] = counts.get(record.state.value, 0) + 1
    summary = "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"sweep {result.sweep_id}: {len(result.records)} jobs  {summary}")
    for record in result.failed_records():
        first_line = (record.error or "").strip().splitlines()
        detail = first_line[-1] if first_line else ""
        print(f"  {record.state.value:>9}  {record.spec.id}  {detail}")
    if result.interrupted:
        print("interrupted: partial results persisted; resume with "
              "`repro orchestrate resume`")
        return 2
    return 0 if result.ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    jobs = _load_jobs(args.jobs)
    result = submit_sweep(
        jobs,
        state_dir=args.state_dir,
        workers=args.workers,
        chaos=_parse_chaos(args.self_chaos),
        mode=args.mode,
    )
    return _print_outcome(result, args.json)


def _cmd_resume(args: argparse.Namespace) -> int:
    result = resume_sweep(
        args.state_dir,
        workers=args.workers,
        chaos=_parse_chaos(args.self_chaos),
        mode=args.mode,
    )
    return _print_outcome(result, args.json)


def _cmd_status(args: argparse.Namespace) -> int:
    status = sweep_status(args.state_dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counts = status["counts"]
    summary = "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"sweep {status['sweep_id']}: {len(status['jobs'])} jobs  {summary}")
    if status["torn_records"]:
        print(f"  journal: {status['torn_records']} torn record(s) dropped")
    for job in status["jobs"]:
        cached = "  [cached]" if job["cached"] else ""
        print(f"  {job['state']:>9}  {job['id']}  attempts={job['attempts']}{cached}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    covered = cancel_sweep(args.state_dir, args.job_ids or None)
    scope = "all pending jobs" if not args.job_ids else f"{covered} job(s)"
    print(f"cancel recorded for {scope}; takes effect on next run/resume")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    stats = gc_state_dir(
        args.state_dir,
        max_age_s=args.max_age_s,
        max_entries=args.max_entries,
        keep_referenced=not args.drop_referenced,
    )
    print(
        f"gc: removed {stats['results_removed']} result(s), "
        f"compacted {stats['journal_dropped']} journal record(s)"
    )
    return 0


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, help="warm pool width (default 1)"
    )
    parser.add_argument(
        "--self-chaos",
        default=None,
        metavar="SPEC",
        help="inject orchestrator faults, e.g. 'kill-worker:2' or "
        "'kill-orchestrator:3'",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "inline", "pool"),
        default="auto",
        help="executor selection (default auto: inline iff workers=1)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the merged sweep document to PATH",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro orchestrate`` (and ``python -m`` use)."""
    parser = argparse.ArgumentParser(
        prog="repro orchestrate",
        description="operate crash-safe experiment sweeps",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="run a sweep from a jobs JSON file")
    p_run.add_argument("jobs", help="JSON list of job specs")
    p_run.add_argument("--state-dir", default=None, help="journal + cache dir")
    _add_exec_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_res = sub.add_parser("resume", help="resume a journaled sweep")
    p_res.add_argument("--state-dir", required=True)
    _add_exec_flags(p_res)
    p_res.set_defaults(fn=_cmd_resume)

    p_stat = sub.add_parser("status", help="show a journaled sweep's state")
    p_stat.add_argument("--state-dir", required=True)
    p_stat.add_argument("--json", action="store_true", help="machine output")
    p_stat.set_defaults(fn=_cmd_status)

    p_cxl = sub.add_parser("cancel", help="cancel pending jobs")
    p_cxl.add_argument("--state-dir", required=True)
    p_cxl.add_argument("job_ids", nargs="*", help="default: every pending job")
    p_cxl.set_defaults(fn=_cmd_cancel)

    p_gc = sub.add_parser("gc", help="prune cached results, compact journal")
    p_gc.add_argument("--state-dir", required=True)
    p_gc.add_argument(
        "--max-age-s", type=float, default=None, help="evict results older than this"
    )
    p_gc.add_argument(
        "--max-entries", type=int, default=None, help="keep at most this many results"
    )
    p_gc.add_argument(
        "--drop-referenced",
        action="store_true",
        help="also evict results the journal still references",
    )
    p_gc.set_defaults(fn=_cmd_gc)

    args = parser.parse_args(list(argv) if argv is not None else sys.argv[1:])
    try:
        return int(args.fn(args))
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"repro orchestrate: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
