"""Deterministic demo jobs for orchestrator tests and the CI sweep.

Every function here is module-level (importable in spawn workers) and
deterministic in its inputs, so sweeps built on them produce
byte-identical merged documents across crash/resume cycles — the
property the CI ``orchestrator`` job asserts.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Any

__all__ = ["flaky", "probe"]


def probe(
    x: int,
    sleep_s: float = 0.0,
    hang_s: float = 0.0,
    fail: bool = False,
) -> dict[str, Any]:
    """A deterministic unit of 'work': hash the input, optionally misbehave.

    ``sleep_s`` models real computation time, ``hang_s`` models a stuck
    job (used with a per-job ``timeout_s`` budget), ``fail`` raises —
    none of them change the returned value for a given ``x``.
    """
    if sleep_s > 0:
        time.sleep(sleep_s)
    if hang_s > 0:
        time.sleep(hang_s)
    if fail:
        raise RuntimeError(f"probe({x}) asked to fail")
    digest = hashlib.sha256(f"probe:{x}".encode()).hexdigest()
    return {"x": x, "digest": digest[:16], "square": x * x}


def flaky(x: int, fail_times: int, marker_dir: str) -> dict[str, Any]:
    """Fail the first ``fail_times`` calls (per marker file), then succeed.

    The attempt count is tracked in a file under ``marker_dir`` so it
    survives worker restarts — this is how retry/backoff paths are
    exercised end-to-end with real process boundaries.  The successful
    return value depends only on ``x``.
    """
    os.makedirs(marker_dir, exist_ok=True)
    marker = os.path.join(marker_dir, f"flaky-{x}.count")
    try:
        with open(marker, encoding="utf-8") as fh:
            seen = int(fh.read().strip() or "0")
    except (OSError, ValueError):
        seen = 0
    with open(marker, "w", encoding="utf-8") as fh:
        fh.write(str(seen + 1))
    if seen < fail_times:
        raise RuntimeError(f"flaky({x}) failing attempt {seen + 1}/{fail_times}")
    return probe(x)
