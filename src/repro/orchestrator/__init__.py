"""Crash-safe experiment orchestration for every sweep in the repo.

``repro.orchestrator`` is the substrate that ``repro bench``, the chaos
matrix, and the scaling-crossover study submit their cells to:

- a **warm process pool** (:mod:`.pool`) keyed by config digest —
  workers are spawned once, health-checked via heartbeats, and restarted
  on crash without losing the sweep (the modelops ``WarmProcessManager``
  pattern);
- a **job queue** (:mod:`.core`) with priorities, cancellation, per-job
  wall-clock timeouts, and retry with exponential backoff + jitter; a
  job that exhausts its retries is recorded ``failed`` instead of
  aborting the sweep;
- a **crash-safe provenance store**: an append-only write-ahead journal
  (:mod:`.journal`) of job state transitions plus a content-hash cache
  (:mod:`.store`) of ``digest(fn, params) -> result``, so a killed
  orchestrator resumes exactly where it left off and repeated cells are
  free.

See ``docs/orchestration.md`` for the architecture and the journal
format, and ``repro orchestrate --help`` for the operational CLI.
"""

from .core import (
    SweepResult,
    cancel_sweep,
    resume_sweep,
    run_callable,
    submit_sweep,
    sweep_status,
)
from .digest import canonical_json, content_digest
from .jobs import FINAL_STATES, JobRecord, JobSpec, JobState, resolve_fn
from .journal import Journal, JournalView, compact_journal, replay_journal
from .pool import WarmPool, get_pool, shutdown_pools
from .store import ResultStore, gc_state_dir

__all__ = [
    "FINAL_STATES",
    "Journal",
    "JournalView",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ResultStore",
    "SweepResult",
    "WarmPool",
    "cancel_sweep",
    "canonical_json",
    "compact_journal",
    "content_digest",
    "gc_state_dir",
    "get_pool",
    "replay_journal",
    "resolve_fn",
    "resume_sweep",
    "run_callable",
    "shutdown_pools",
    "submit_sweep",
    "sweep_status",
]
