"""Append-only write-ahead journal of sweep state transitions.

The journal is a JSONL file (``<state_dir>/journal.jsonl``) that fully
describes a sweep: a header record, one ``job`` record per submitted
spec, and one ``transition`` record per state change.  Every append is
flushed and fsynced *before* the transition takes effect in memory, so
a SIGKILLed orchestrator can always be resumed from disk.  A torn final
line (the crash happened mid-write) is tolerated on replay and simply
dropped — the transition it described had not happened yet.

Record shapes (``type`` discriminates)::

    {"type": "sweep", "schema": "repro-orch-journal/1",
     "sweep_id": "...", "created_unix": 1700000000.0, "meta": {...}}
    {"type": "job", "spec": {...JobSpec.to_dict()...}}
    {"type": "transition", "job": "id", "state": "running",
     "attempt": 1, "wall_unix": ..., "detail": null, "digest": null}
    {"type": "cancel", "job": "id" | "*"}

``repro orchestrate gc`` compacts the journal down to the header, the
job records, and one final transition per finished job.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Mapping

from .jobs import FINAL_STATES, JobSpec, JobState

__all__ = [
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalView",
    "compact_journal",
    "replay_journal",
]

JOURNAL_SCHEMA = "repro-orch-journal/1"
JOURNAL_NAME = "journal.jsonl"


def journal_path(state_dir: str | Path) -> Path:
    """Location of the journal inside a sweep state directory."""
    return Path(state_dir) / JOURNAL_NAME


class Journal:
    """Writer half: append records durably, in order.

    With ``state_dir=None`` the journal is a no-op sink (in-memory
    sweeps still get retry/timeout/caching semantics, just no
    crash-safety).
    """

    def __init__(self, state_dir: str | Path | None) -> None:
        self.path: Path | None = None
        self._fh: IO[str] | None = None
        if state_dir is not None:
            Path(state_dir).mkdir(parents=True, exist_ok=True)
            self.path = journal_path(state_dir)
            self._fh = open(self.path, "a", encoding="utf-8")

    @property
    def persistent(self) -> bool:
        """True when records actually reach disk."""
        return self._fh is not None

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record (write + flush + fsync)."""
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.flush()

    def flush(self) -> None:
        """Force buffered records to disk."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- record constructors --------------------------------------------

    def sweep_header(
        self, sweep_id: str, meta: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Write (and return) the sweep header record."""
        record = {
            "type": "sweep",
            "schema": JOURNAL_SCHEMA,
            "sweep_id": sweep_id,
            "created_unix": time.time(),
            "meta": dict(meta or {}),
        }
        self.append(record)
        return record

    def job(self, spec: JobSpec) -> None:
        """Record one submitted job spec."""
        self.append({"type": "job", "spec": spec.to_dict()})

    def transition(
        self,
        job_id: str,
        state: JobState,
        attempt: int,
        detail: str | None = None,
        digest: str | None = None,
    ) -> None:
        """Record one job state change (the WAL write)."""
        self.append(
            {
                "type": "transition",
                "job": job_id,
                "state": state.value,
                "attempt": attempt,
                "wall_unix": time.time(),
                "detail": detail,
                "digest": digest,
            }
        )

    def cancel(self, job_id: str) -> None:
        """Record a cancellation request (``"*"`` = every non-final job)."""
        self.append({"type": "cancel", "job": job_id})


@dataclass
class JournalView:
    """Reader half: the replayed state of a journal."""

    sweep_id: str = ""
    created_unix: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
    specs: list[JobSpec] = field(default_factory=list)
    states: dict[str, JobState] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    details: dict[str, str | None] = field(default_factory=dict)
    digests: dict[str, str] = field(default_factory=dict)
    cancelled: set[str] = field(default_factory=set)
    cancel_all: bool = False
    torn_records: int = 0

    @property
    def empty(self) -> bool:
        """True when no sweep header was ever written."""
        return not self.sweep_id and not self.specs

    def is_cancelled(self, job_id: str) -> bool:
        """Whether a cancel record covers this job."""
        return self.cancel_all or job_id in self.cancelled

    def final_state(self, job_id: str) -> JobState | None:
        """The job's recorded state if it is final, else ``None``."""
        state = self.states.get(job_id)
        return state if state is not None and state in FINAL_STATES else None

    def pending_specs(self) -> list[JobSpec]:
        """Specs that still need running (non-final and not cancelled)."""
        return [
            spec
            for spec in self.specs
            if self.final_state(spec.id) is None and not self.is_cancelled(spec.id)
        ]


def replay_journal(state_dir: str | Path) -> JournalView:
    """Rebuild sweep state from the journal (tolerates a torn tail).

    Lines that fail to parse are counted in ``torn_records`` — only a
    crash mid-append produces them, and only as the final line; any
    mid-file garbage also lands there rather than aborting the replay,
    because a partial view still names every job that durably reached a
    final state.
    """
    view = JournalView()
    path = journal_path(state_dir)
    if not path.exists():
        return view
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                view.torn_records += 1
                continue
            if not isinstance(record, dict):
                view.torn_records += 1
                continue
            kind = record.get("type")
            try:
                if kind == "sweep":
                    view.sweep_id = str(record["sweep_id"])
                    view.created_unix = float(record["created_unix"])
                    meta = record.get("meta", {})
                    view.meta = dict(meta) if isinstance(meta, dict) else {}
                elif kind == "job":
                    spec = JobSpec.from_dict(record["spec"])
                    if all(existing.id != spec.id for existing in view.specs):
                        view.specs.append(spec)
                elif kind == "transition":
                    job_id = str(record["job"])
                    view.states[job_id] = JobState(record["state"])
                    view.attempts[job_id] = int(record.get("attempt", 0))
                    detail = record.get("detail")
                    view.details[job_id] = (
                        str(detail) if detail is not None else None
                    )
                    digest = record.get("digest")
                    if digest is not None:
                        view.digests[job_id] = str(digest)
                elif kind == "cancel":
                    target = str(record["job"])
                    if target == "*":
                        view.cancel_all = True
                    else:
                        view.cancelled.add(target)
                else:
                    view.torn_records += 1
            except (KeyError, TypeError, ValueError):
                view.torn_records += 1
    return view


def compact_journal(state_dir: str | Path) -> int:
    """Rewrite the journal keeping only what resume needs.

    Keeps the header, every job spec, the latest transition per job, and
    collapses cancel records.  Returns the number of records dropped.
    The rewrite lands via atomic rename so a crash mid-compaction leaves
    the old journal intact.
    """
    path = journal_path(state_dir)
    if not path.exists():
        return 0
    with open(path, encoding="utf-8") as fh:
        before = sum(1 for line in fh if line.strip())
    view = replay_journal(state_dir)
    tmp = path.with_suffix(".jsonl.tmp")
    kept = 0
    with open(tmp, "w", encoding="utf-8") as fh:
        def emit(record: Mapping[str, Any]) -> None:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

        if view.sweep_id or view.specs:
            emit(
                {
                    "type": "sweep",
                    "schema": JOURNAL_SCHEMA,
                    "sweep_id": view.sweep_id,
                    "created_unix": view.created_unix,
                    "meta": view.meta,
                }
            )
            kept += 1
        for spec in view.specs:
            emit({"type": "job", "spec": spec.to_dict()})
            kept += 1
        for spec in view.specs:
            state = view.states.get(spec.id)
            if state is None:
                continue
            emit(
                {
                    "type": "transition",
                    "job": spec.id,
                    "state": state.value,
                    "attempt": view.attempts.get(spec.id, 0),
                    "wall_unix": view.created_unix,
                    "detail": view.details.get(spec.id),
                    "digest": view.digests.get(spec.id),
                }
            )
            kept += 1
        if view.cancel_all:
            emit({"type": "cancel", "job": "*"})
            kept += 1
        else:
            for job_id in sorted(view.cancelled):
                emit({"type": "cancel", "job": job_id})
                kept += 1
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return max(0, before - kept)
