"""Content-hash provenance store: ``digest -> result`` documents.

Results live one JSON file per digest under
``<state_dir>/results/<aa>/<digest>.json`` (two-level fan-out keeps
directories small on big sweeps).  Writes land via temp-file +
atomic rename, so a crash can never leave a half-written result that a
resume would then trust.  With ``state_dir=None`` the store is a plain
in-process dict (dedup within one sweep, no persistence).

Retention (``repro orchestrate gc``): :func:`ResultStore.gc` prunes by
age and count; :func:`gc_state_dir` bundles that with journal
compaction.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from .journal import compact_journal, replay_journal

__all__ = ["ResultStore", "gc_state_dir"]

RESULTS_DIR = "results"


class ResultStore:
    """Crash-safe cache of job results keyed by content digest."""

    def __init__(self, state_dir: str | Path | None) -> None:
        self.root: Path | None = None
        self._mem: dict[str, Any] = {}
        if state_dir is not None:
            self.root = Path(state_dir) / RESULTS_DIR
            self.root.mkdir(parents=True, exist_ok=True)

    @property
    def persistent(self) -> bool:
        """True when results survive this process."""
        return self.root is not None

    def path(self, digest: str) -> Path:
        """On-disk location for one digest (persistent stores only)."""
        if self.root is None:
            raise ValueError("in-memory store has no paths")
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Any:
        """The stored result, or ``None`` when absent or unreadable."""
        if self.root is None:
            return self._mem.get(digest)
        path = self.path(digest)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or "result" not in doc:
            return None
        return doc["result"]

    def put(self, digest: str, result: Any) -> None:
        """Persist one result atomically (write temp, fsync, rename)."""
        if self.root is None:
            self._mem[digest] = result
            return
        path = self.path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"digest": digest, "stored_unix": time.time(), "result": result}
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None

    def entries(self) -> list[tuple[str, float, Path]]:
        """(digest, mtime, path) for every stored result, oldest first."""
        if self.root is None:
            return []
        out: list[tuple[str, float, Path]] = []
        for path in self.root.glob("*/*.json"):
            try:
                out.append((path.stem, path.stat().st_mtime, path))
            except OSError:
                continue
        out.sort(key=lambda entry: (entry[1], entry[0]))
        return out

    def gc(
        self,
        max_age_s: float | None = None,
        max_entries: int | None = None,
        keep: set[str] | None = None,
    ) -> int:
        """Prune stored results by age and count; returns removals.

        ``keep`` digests are never pruned (the live sweep's results).
        Age is checked first; the count cap then evicts oldest-first.
        Leftover temp files from crashed writers are always removed.
        """
        if self.root is None:
            return 0
        removed = 0
        for tmp in self.root.glob("*/*.tmp-*"):
            try:
                tmp.unlink()
            except OSError:
                continue
        protected = keep or set()
        now = time.time()
        survivors: list[tuple[str, float, Path]] = []
        for digest, mtime, path in self.entries():
            if digest in protected:
                continue
            if max_age_s is not None and now - mtime > max_age_s:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
                continue
            survivors.append((digest, mtime, path))
        if max_entries is not None:
            budget = max(0, max_entries - len(protected))
            excess = len(survivors) - budget
            for _, _, path in survivors[:max(0, excess)]:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def gc_state_dir(
    state_dir: str | Path,
    max_age_s: float | None = None,
    max_entries: int | None = None,
    keep_referenced: bool = True,
) -> dict[str, int]:
    """Retention pass over one sweep state directory.

    Prunes the result store (age + count policy, keeping results the
    journal still references when ``keep_referenced``) and compacts the
    journal.  Returns ``{"results_removed": n, "journal_dropped": m}``.
    """
    view = replay_journal(state_dir)
    keep: set[str] = set()
    if keep_referenced:
        keep = set(view.digests.values())
        keep.update(spec.digest for spec in view.specs)
    store = ResultStore(state_dir)
    removed = store.gc(max_age_s=max_age_s, max_entries=max_entries, keep=keep)
    dropped = compact_journal(state_dir)
    return {"results_removed": removed, "journal_dropped": dropped}
