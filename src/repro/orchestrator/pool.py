"""Warm process-pool manager with heartbeats and crash restart.

Workers are ``spawn`` processes running a tiny message loop over a
duplex :class:`~multiprocessing.connection.Connection`: they receive
``("job", id, fn, params, kill)`` tuples, resolve ``fn`` by import
path, run it, and send ``("ok", id, result)`` or
``("error", id, traceback)`` back.  They import workload modules once
and stay resident, so repeated sweeps pay the interpreter + import cost
exactly once (the modelops ``WarmProcessManager`` pattern — they
measured 16.45x over cold starts).

Pools are keyed by a *config digest* in a module-level registry:
``get_pool(key, size)`` returns the live pool for that key, growing it
when a bigger sweep arrives, so any number of ``submit_sweep`` calls in
one process share warm workers.  Dead workers (crash, self-chaos kill,
timeout kill) are detected via pipe EOF / ``is_alive`` / ping
heartbeats and respawned in place without losing the sweep.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
import traceback
from multiprocessing.process import BaseProcess
from typing import Any, Mapping

from ..faults.selfchaos import SelfChaos
from .jobs import resolve_fn

__all__ = ["WarmPool", "WorkerHandle", "get_pool", "shutdown_pools"]

_EXIT_GRACE_S = 2.0
_PING_GRACE_S = 5.0


def _worker_main(
    conn: multiprocessing.connection.Connection, worker_id: int
) -> None:
    """Resident worker loop (runs in a spawn child)."""
    # The orchestrator owns shutdown: a Ctrl-C in the parent's terminal
    # is delivered to the whole process group, and workers must not die
    # out from under the drain logic — they exit on pipe EOF instead.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "job":
            _, job_id, fn, params, kill = msg
            if kill:
                # Self-chaos: die exactly like a hard crash would.
                os.kill(os.getpid(), signal.SIGKILL)
            try:
                result = resolve_fn(fn)(**dict(params))
            except BaseException:
                conn.send(("error", job_id, traceback.format_exc()))
                continue
            try:
                conn.send(("ok", job_id, result))
            except Exception:
                conn.send(("error", job_id, traceback.format_exc()))
        elif kind == "ping":
            conn.send(("pong", msg[1]))
        elif kind == "exit":
            break
    conn.close()


class WorkerHandle:
    """One warm worker: process + pipe + dispatch bookkeeping."""

    __slots__ = (
        "busy_job",
        "conn",
        "deadline",
        "dispatched_at",
        "jobs_done",
        "pending_ping",
        "proc",
        "worker_id",
    )

    def __init__(
        self,
        worker_id: int,
        proc: BaseProcess,
        conn: multiprocessing.connection.Connection,
    ) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.busy_job: str | None = None
        self.deadline: float | None = None
        self.dispatched_at = 0.0
        self.jobs_done = 0
        self.pending_ping: tuple[int, float] | None = None

    @property
    def idle(self) -> bool:
        """True when no job is in flight on this worker."""
        return self.busy_job is None

    def alive(self) -> bool:
        """Best-effort liveness (process still running)."""
        return self.proc.is_alive()

    def send_job(
        self,
        job_id: str,
        fn: str,
        params: Mapping[str, Any],
        timeout_s: float | None,
        kill: bool = False,
    ) -> None:
        """Dispatch one job; records the wall-clock deadline."""
        self.conn.send(("job", job_id, fn, dict(params), kill))
        self.busy_job = job_id
        self.dispatched_at = time.monotonic()
        self.deadline = (
            self.dispatched_at + timeout_s if timeout_s is not None else None
        )

    def finish(self) -> None:
        """Mark the in-flight job done."""
        self.busy_job = None
        self.deadline = None
        self.jobs_done += 1

    def stop(self, kill: bool = False) -> None:
        """Tear the worker down (graceful exit, then terminate, then kill)."""
        if kill:
            if self.proc.is_alive():
                self.proc.kill()
        else:
            try:
                self.conn.send(("exit",))
            except (OSError, ValueError, BrokenPipeError):
                pass
            self.proc.join(timeout=_EXIT_GRACE_S)
            if self.proc.is_alive():
                self.proc.terminate()
        self.proc.join(timeout=_EXIT_GRACE_S)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=_EXIT_GRACE_S)
        try:
            self.conn.close()
        except OSError:
            pass


class WarmPool:
    """A fixed-width set of warm workers behind one config-digest key."""

    def __init__(self, key: str, size: int) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.key = key
        self.size = size
        self._ctx = multiprocessing.get_context("spawn")
        self._next_worker_id = 0
        self._next_ping = 0
        self.workers: list[WorkerHandle] = []
        self.chaos: SelfChaos | None = None
        self._chaos_armed = False
        self.dispatches = 0
        self.spawned = 0
        self.restarted = 0

    # -- lifecycle -------------------------------------------------------

    def arm_chaos(self, chaos: SelfChaos | None) -> None:
        """Arm (or clear) the worker-kill trigger for the next sweep."""
        self.chaos = chaos
        self._chaos_armed = bool(
            chaos is not None and chaos.kill_worker_dispatch is not None
        )

    def _spawn(self) -> WorkerHandle:
        parent, child = self._ctx.Pipe(duplex=True)
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child, worker_id),
            name=f"repro-orch-{self.key[:8]}-{worker_id}",
            daemon=True,
        )
        proc.start()
        child.close()
        self.spawned += 1
        return WorkerHandle(worker_id, proc, parent)

    def start(self) -> None:
        """Bring the pool up to size (idempotent; reuses live workers)."""
        self.workers = [w for w in self.workers if w.alive()]
        while len(self.workers) < self.size:
            self.workers.append(self._spawn())

    def grow(self, size: int) -> None:
        """Raise the pool width (never shrinks live workers)."""
        if size > self.size:
            self.size = size
        self.start()

    def restart_worker(self, worker: WorkerHandle) -> WorkerHandle:
        """Replace a dead/hung worker in place; returns the replacement.

        When the spawn itself fails the pool degrades gracefully: the
        slot is dropped (down to a single worker) rather than aborting
        the sweep, and the caller sees the shrunken width.
        """
        worker.stop(kill=True)
        try:
            replacement = self._spawn()
        except OSError:
            self.workers = [w for w in self.workers if w is not worker]
            if not self.workers:
                raise
            self.size = len(self.workers)
            self.restarted += 1
            return self.workers[0]
        self.restarted += 1
        self.workers = [
            replacement if w is worker else w for w in self.workers
        ]
        return replacement

    def shutdown(self) -> None:
        """Stop every worker (graceful first, hard after)."""
        for worker in self.workers:
            worker.stop()
        self.workers = []

    # -- dispatch + health ----------------------------------------------

    def idle_workers(self) -> list[WorkerHandle]:
        """Workers with no job in flight."""
        return [w for w in self.workers if w.idle]

    def busy_workers(self) -> list[WorkerHandle]:
        """Workers with a job in flight."""
        return [w for w in self.workers if not w.idle]

    def dispatch(
        self,
        worker: WorkerHandle,
        job_id: str,
        fn: str,
        params: Mapping[str, Any],
        timeout_s: float | None,
    ) -> bool:
        """Send one job to a worker; returns the self-chaos kill flag."""
        self.dispatches += 1
        kill = bool(
            self._chaos_armed
            and self.chaos is not None
            and self.dispatches == self.chaos.kill_worker_dispatch
        )
        if kill:
            self._chaos_armed = False
        worker.send_job(job_id, fn, params, timeout_s, kill=kill)
        return kill

    def heartbeat(self, deep: bool = False) -> list[WorkerHandle]:
        """Health-check idle workers; returns the ones found dead.

        ``is_alive`` catches silently exited processes.  ``deep`` also
        round-trips a ping through each idle worker's pipe — a worker
        that stays silent past the grace window is declared hung (and
        counted dead) even though its process still exists.
        """
        now = time.monotonic()
        dead: list[WorkerHandle] = []
        for worker in self.workers:
            if not worker.idle:
                continue
            if not worker.alive():
                dead.append(worker)
                continue
            if worker.pending_ping is not None:
                nonce, sent_at = worker.pending_ping
                answered = False
                while worker.conn.poll(0):
                    reply = worker.conn.recv()
                    if reply[0] == "pong" and reply[1] == nonce:
                        worker.pending_ping = None
                        answered = True
                        break
                if not answered and now - sent_at > _PING_GRACE_S:
                    dead.append(worker)
                continue
            if deep:
                self._next_ping += 1
                try:
                    worker.conn.send(("ping", self._next_ping))
                    worker.pending_ping = (self._next_ping, now)
                except (OSError, BrokenPipeError):
                    dead.append(worker)
        return dead


_POOLS: dict[str, WarmPool] = {}


def get_pool(key: str, size: int) -> WarmPool:
    """The live warm pool for a config digest (created/grown on demand)."""
    pool = _POOLS.get(key)
    if pool is None:
        pool = WarmPool(key, size)
        _POOLS[key] = pool
    pool.grow(size)
    return pool


def shutdown_pools() -> None:
    """Stop every registered pool (atexit hook; also used by tests)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)
