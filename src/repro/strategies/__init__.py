"""Pluggable DLB strategy layer.

One shared entry point — :func:`run_strategy` — runs a PARALLEL_MAP plan
under any registered dynamic-load-balancing strategy and returns a
normalized :class:`StrategyOutcome`, so the paper's rate-filtered
redistribution can be raced head-to-head against the robust
alternatives:

- ``rate`` — the paper's design: rate-filtered proportional
  redistribution (the flat tree of :mod:`repro.scale.hierarchy`);
- ``hier`` — the same protocol over a sub-master tree;
- ``diffusion`` — decentralised neighbour exchange;
- ``stealing`` — decentralised work stealing (steal-half, randomized
  victim selection, steal/deny/abort with termination detection);
- ``rdlb`` — robust self-scheduling (central chunk queue with resilient
  chunk reassignment, no rate filtering);
- ``fsc`` / ``gss`` / ``factoring`` / ``trapezoid`` — the classic
  self-scheduling chunking variants from :mod:`repro.baselines.self_sched`.

Selection is wired through ``RunConfig.strategy`` and
``repro run --strategy``.  The perturbation-robustness bench suite
(:mod:`repro.strategies.robustness`) races the strategies over irregular
workloads and recorded load traces and reports degradation versus an
idealized oracle makespan.
"""

from .rdlb import RdlbConfig, RdlbResult, run_rdlb
from .registry import (
    STRATEGIES,
    StrategyOutcome,
    available_strategies,
    run_strategy,
)
from .protocol import RobustTags, StealTags
from .stealing import StealingConfig, StealingResult, run_stealing

__all__ = [
    "STRATEGIES",
    "RdlbConfig",
    "RdlbResult",
    "RobustTags",
    "StealTags",
    "StealingConfig",
    "StealingResult",
    "StrategyOutcome",
    "available_strategies",
    "run_rdlb",
    "run_stealing",
    "run_strategy",
]
