"""Shared strategy interface: one entry point over every DLB plane.

:func:`run_strategy` normalizes the per-plane entry functions (their
configs, result types, and fault support differ) into a single callable
returning a :class:`StrategyOutcome`, which is what the CLI
(``repro run --strategy``), the perturbation-robustness bench, and the
chaos harness consume.  The registry also *promotes* the classic
self-scheduling chunking variants (FSC/GSS/factoring/trapezoid) from
:mod:`repro.baselines.self_sched` to first-class strategies by routing
them through the robust self-scheduling master with reassignment
disabled while the holder is alive (``dup_max=1``) — identical schedule
to the baseline, plus crash recovery and recorder support for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..config import RunConfig
from ..errors import ConfigError
from ..faults import FaultPlan
from ..obs import Recorder
from ..sim import LoadGenerator
from .rdlb import RdlbConfig, run_rdlb
from .stealing import StealingConfig, run_stealing

__all__ = [
    "STRATEGIES",
    "StrategyOutcome",
    "available_strategies",
    "run_strategy",
]

#: strategy name -> one-line description (shown by ``repro run --help``
#: and used for the matrix in docs/strategies.md).
STRATEGIES: dict[str, str] = {
    "rate": (
        "the paper's plane: centralized rate-filtered proportional "
        "redistribution (flat tree)"
    ),
    "hier": "the same protocol over a sub-master tree (fanout 8)",
    "diffusion": "decentralized near-neighbour exchange",
    "stealing": (
        "decentralized work stealing: steal-half, randomized victims, "
        "steal/deny/abort, coordinator-side termination detection"
    ),
    "rdlb": (
        "robust self-scheduling: central chunk queue with resilient "
        "chunk reassignment (factoring chunks, no rate filtering)"
    ),
    "fsc": "fixed-size chunk self-scheduling (CSS), promoted baseline",
    "gss": "guided self-scheduling, promoted baseline",
    "factoring": "factoring self-scheduling, promoted baseline",
    "trapezoid": "trapezoid self-scheduling, promoted baseline",
}

_CHUNKING_STRATEGIES = ("fsc", "gss", "factoring", "trapezoid")


def available_strategies() -> tuple[str, ...]:
    """Names accepted by :func:`run_strategy` and ``--strategy``."""
    return tuple(STRATEGIES)


@dataclass
class StrategyOutcome:
    """Normalized outcome of one strategy run.

    ``raw`` keeps the plane-specific result object
    (:class:`~repro.scale.hierarchy.HierarchyResult`,
    :class:`~repro.strategies.stealing.StealingResult`, ...) for callers
    that need plane-specific counters.
    """

    strategy: str
    name: str
    n_slaves: int
    elapsed: float
    sequential_time: float
    message_count: int
    bytes_sent: int
    lost_units: int
    deaths: int
    dead_pids: tuple[int, ...]
    result: Any
    raw: Any

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        lost = f" lost={self.lost_units}" if self.lost_units else ""
        deaths = f" deaths={self.deaths}" if self.deaths else ""
        return (
            f"{self.name} [{self.strategy}]: P={self.n_slaves} "
            f"elapsed={self.elapsed:.2f}s speedup={self.speedup:.2f} "
            f"msgs={self.message_count}{deaths}{lost}"
        )


def _wrap(strategy: str, plan, n_slaves: int, res: Any) -> StrategyOutcome:
    return StrategyOutcome(
        strategy=strategy,
        name=plan.name,
        n_slaves=n_slaves,
        elapsed=res.elapsed,
        sequential_time=res.sequential_time,
        message_count=res.message_count,
        bytes_sent=res.bytes_sent,
        lost_units=getattr(res, "lost_units", 0),
        deaths=getattr(res, "deaths", 0),
        dead_pids=tuple(getattr(res, "dead_pids", ())),
        result=getattr(res, "result", None),
        raw=res,
    )


def run_strategy(
    strategy: str,
    plan,
    run_cfg: RunConfig | None = None,
    loads: Mapping[int, LoadGenerator] | None = None,
    *,
    seed: int = 0,
    recorder: Recorder | None = None,
    faults: FaultPlan | None = None,
    stealing: StealingConfig | None = None,
    rdlb: RdlbConfig | None = None,
) -> StrategyOutcome:
    """Run ``plan`` under the named strategy and normalize the outcome.

    ``diffusion`` has no fault hooks, so passing a non-empty ``faults``
    plan with it is a :class:`ConfigError` (its recorder is likewise
    not wired and is ignored).
    """
    if strategy not in STRATEGIES:
        raise ConfigError(
            f"unknown strategy {strategy!r}; "
            f"choose from {', '.join(available_strategies())}"
        )
    run_cfg = run_cfg or RunConfig()
    n = run_cfg.cluster.n_slaves
    if strategy in ("rate", "hier"):
        from ..scale.hierarchy import run_hierarchical

        res = run_hierarchical(
            plan,
            run_cfg,
            loads,
            fanout=None if strategy == "rate" else 8,
            seed=seed,
            recorder=recorder,
            faults=faults,
        )
        return _wrap(strategy, plan, n, res)
    if strategy == "diffusion":
        from ..baselines.diffusion import run_diffusion

        if faults is not None and not faults.empty:
            raise ConfigError(
                "the diffusion strategy has no fault hooks; "
                "run it without --faults"
            )
        res = run_diffusion(plan, run_cfg, loads, seed=seed)
        return _wrap(strategy, plan, n, res)
    if strategy == "stealing":
        res = run_stealing(
            plan,
            run_cfg,
            loads,
            stealing=stealing,
            seed=seed,
            recorder=recorder,
            faults=faults,
        )
        return _wrap(strategy, plan, n, res)
    # rdlb and the promoted chunking variants share the robust master;
    # the classics just disable alive-holder reassignment.
    if strategy == "rdlb":
        rc = rdlb or RdlbConfig()
    else:
        base = rdlb or RdlbConfig()
        chunking = {"fsc": "fsc", "gss": "gss", "trapezoid": "trapezoid"}.get(
            strategy, "factoring"
        )
        rc = RdlbConfig(
            chunking=chunking,
            chunk=base.chunk,
            dup_max=1,
            reassign_after=base.reassign_after,
            dead_after=base.dead_after,
            tick=base.tick,
            hard_stall=base.hard_stall,
        )
    res = run_rdlb(
        plan,
        run_cfg,
        loads,
        rdlb=rc,
        seed=seed,
        recorder=recorder,
        faults=faults,
    )
    return _wrap(strategy, plan, n, res)
