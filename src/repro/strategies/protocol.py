"""Message tags of the robust strategy control planes.

Tags are prefixed (``st.`` for stealing, ``rb.`` for robust
self-scheduling) so metrics classify them separately (see
``repro.sim.machine._tag_class``) and ``repro check --steal`` can derive
the tag families from these classes exactly as it does for the central
runtime's :class:`repro.runtime.protocol.Tags` and the hierarchy's
:class:`repro.scale.protocol.ScaleTags`.
"""

from __future__ import annotations

__all__ = ["RobustTags", "StealTags"]


class StealTags:
    """Tag constants for the decentralized work-stealing protocol.

    Custody rule: units travel **worker to worker** (``WORK``); the
    coordinator only counts progress and detects termination, so its
    messages never carry work and a late coordinator cannot lose units.

    Response completeness: every ``STEAL`` a live victim receives is
    answered by exactly one ``WORK`` or ``DENY``.  A thief that stops
    waiting (victim silent past the steal timeout) sends ``ABORT`` so a
    reordered late ``STEAL`` is denied rather than served — but a thief
    must still *accept* a late ``WORK`` whose request it aborted,
    otherwise the shipped units would be lost in flight.
    """

    # Thief -> victim: {"thief", "req"} — request roughly half the
    # victim's pending units.
    STEAL = "st.steal"
    # Victim -> thief: {"req", "units", "data"?} — the stolen units (and
    # their packed state when numerics execute).
    WORK = "st.work"
    # Victim -> thief: {"req"} — nothing to spare (or the request was
    # aborted before it arrived).
    DENY = "st.deny"
    # Thief -> victim: {"req"} — the thief timed out on this request;
    # if it has not been served yet, deny it instead of serving it.
    ABORT = "st.abort"
    # Worker -> coordinator: periodic {"done" (cumulative), "remaining"}.
    # Doubles as the heartbeat the coordinator's failure detector watches.
    REPORT = "st.report"
    # Coordinator -> worker: computation complete (or declared lost);
    # workers answer with RESULT.
    TERM = "st.term"
    # Worker -> coordinator: final {"units", "data"?}.
    RESULT = "st.result"


class RobustTags:
    """Tag constants for rDLB-style robust self-scheduling.

    The master owns the chunk queue; a worker's ``REQUEST`` piggybacks
    the previous chunk's results, and the master answers every request
    with exactly one ``WORK`` (an empty unit tuple means "stop").  A
    chunk held by a worker that goes silent is *reassigned* to the next
    idle requester (bounded duplication, first result wins), which is
    the rDLB robustness mechanism: no rates are estimated and no
    movement decisions are made — resilience comes from reissuing work.
    """

    # Worker -> master: {"chunk", "units", "data"?} report of the
    # previous chunk (None on the first request).  Also the heartbeat.
    REQUEST = "rb.request"
    # Master -> worker: {"chunk", "units", "data"?}.  units == () with
    # "retry" set means "nothing to hand out yet, poll again" (the
    # master never parks a request, so an idle worker keeps
    # heartbeating); units == () without "retry" stops the worker.
    WORK = "rb.work"
