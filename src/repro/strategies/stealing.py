"""Decentralized work stealing with termination detection.

Placement decisions are made by the *idle* processors: a worker that
runs out of units picks a random victim (seeded per-worker RNG, so runs
are deterministic) and asks for half of its pending units.  The paper's
design inverts this — a central master measures rates and pushes work —
so stealing is the adversarial baseline for workloads where rates are
meaningless: heavy-tailed per-unit cost, abrupt load spikes, anything
where the past does not predict the next unit.

Protocol (see :class:`~repro.strategies.protocol.StealTags`): STEAL is
answered by WORK (steal-half) or DENY; a thief whose victim stays silent
past ``steal_timeout`` sends ABORT and moves on, but still accepts a
late WORK so no units are lost in flight.  A passive coordinator counts
cumulative ``done`` from periodic reports (which double as heartbeats),
declares silent workers dead after ``dead_after``, and terminates when
every unit is accounted for — or, after a death, when all live workers
have been idle for ``stall_grace`` (the dead worker's units are then
reported as lost, never hung).

Supports PARALLEL_MAP plans: the bag-of-units custody model has no
meaning for dependence-carrying shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..compiler.plan import ExecutionPlan, LoopShape
from ..config import RunConfig
from ..errors import ConfigError
from ..faults import FaultInjector, FaultPlan
from ..obs import Recorder
from ..runtime.partition import proportional_counts
from ..sim import Cluster, Compute, LoadGenerator, Poll, Recv, Send, Sleep
from ..sim.rusage import RusageReport
from .protocol import StealTags

# Module-level alias named `Tags` so the protocol lint's AST resolver
# (which pairs `Tags.X` send/receive sites) sees this control plane's
# message sites exactly as it sees the central runtime's.
Tags = StealTags

__all__ = ["StealingConfig", "StealingResult", "run_stealing"]


@dataclass(frozen=True)
class StealingConfig:
    """Control-plane parameters of the work-stealing plane.

    Attributes:
        report_period: worker progress-report cadence (also the
            heartbeat the coordinator's failure detector watches).
        idle_tick: idle worker poll-loop sleep.
        tick: coordinator poll-loop sleep.
        steal_fraction: fraction of the victim's pending units a
            successful steal ships (0.5 = steal-half).
        steal_timeout: how long a thief waits for WORK/DENY before
            aborting the request and trying elsewhere.
        deny_backoff: how long a denied thief avoids the same victim.
        suspect_backoff: how long a timed-out thief avoids the victim
            (it is probably dead; much longer than deny_backoff).
        dead_after: worker silence before the coordinator declares it
            dead (must comfortably exceed report_period).
        stall_grace: after a death, how long the system must be globally
            idle (no progress, all live workers empty) before the dead
            worker's units are declared lost and the run terminated.
        hard_stall: unconditional no-progress bound; termination is
            forced even without a detected death so a run can never
            hang (covers unmodeled unit loss, e.g. dropped messages).
    """

    report_period: float = 0.5
    idle_tick: float = 0.02
    tick: float = 0.02
    steal_fraction: float = 0.5
    steal_timeout: float = 0.5
    deny_backoff: float = 0.2
    suspect_backoff: float = 2.0
    dead_after: float = 4.0
    stall_grace: float = 2.0
    hard_stall: float = 60.0

    def __post_init__(self) -> None:
        if self.report_period <= 0:
            raise ConfigError("report_period must be positive")
        if self.idle_tick <= 0 or self.tick <= 0:
            raise ConfigError("poll ticks must be positive")
        if not 0 < self.steal_fraction <= 0.5:
            raise ConfigError("steal_fraction must be in (0, 0.5]")
        if self.steal_timeout <= 0:
            raise ConfigError("steal_timeout must be positive")
        if self.deny_backoff <= 0 or self.suspect_backoff <= 0:
            raise ConfigError("backoffs must be positive")
        if self.dead_after <= 2 * self.report_period:
            raise ConfigError(
                "dead_after must exceed two report periods, got "
                f"{self.dead_after} vs period {self.report_period}"
            )
        if self.stall_grace <= 0 or self.hard_stall <= self.stall_grace:
            raise ConfigError("need 0 < stall_grace < hard_stall")


@dataclass
class StealingResult:
    """Outcome and metrics of one work-stealing run."""

    name: str
    n_slaves: int
    elapsed: float
    sequential_time: float
    rusage: RusageReport
    message_count: int
    bytes_sent: int
    steals: int
    steal_hits: int
    steal_denies: int
    steal_aborts: int
    units_stolen: int
    completed_units: int
    lost_units: int
    deaths: int
    result: Any = None
    dead_pids: tuple[int, ...] = ()
    recorder: Recorder | None = None

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return self.rusage.efficiency(self.sequential_time, list(range(self.n_slaves)))

    def summary(self) -> str:
        lost = f" lost={self.lost_units}" if self.lost_units else ""
        return (
            f"{self.name}: P={self.n_slaves} elapsed={self.elapsed:.2f}s "
            f"speedup={self.speedup:.2f} steals={self.steal_hits}/{self.steals} "
            f"({self.units_stolen} units) deaths={self.deaths}{lost} "
            f"msgs={self.message_count}"
        )


def _worker_task(
    ctx,
    plan: ExecutionPlan,
    exec_num: bool,
    init_units: tuple[int, ...],
    local,
    n_workers: int,
    sc: StealingConfig,
    stats: dict,
    seed: int,
):
    kernels = plan.kernels
    unit_bytes = plan.movement.unit_bytes
    obs = ctx.obs
    pid = ctx.pid
    coord = ctx.master_pid
    rng = np.random.default_rng([seed, pid])
    pending = list(init_units)
    done_units: list[int] = []
    done = 0
    units_since = 0
    last_report = 0.0
    req_seq = 0
    # One outstanding steal request at a time: (victim, req_id, sent_at).
    outstanding: tuple[int, int, float] | None = None
    # Victim -> time before which we will not ask it again.
    avoid_until: dict[int, float] = {}
    # Requests this *victim* saw an ABORT for before the STEAL arrived.
    aborted_reqs: set[tuple[int, int]] = set()
    terminated = False

    def _intake():
        """Drain the mailbox: thief, victim and termination arms."""
        nonlocal outstanding, terminated
        while True:
            msg = yield Poll()
            if msg is None:
                return
            tag = msg.tag
            if tag == Tags.WORK:
                # Accept stolen units unconditionally — even when the
                # request was aborted (late WORK): dropping it would
                # lose the units the victim already gave up.
                units = list(msg.payload["units"])
                if exec_num and msg.payload.get("data") is not None:
                    kernels.unpack_units(
                        local, np.asarray(units), msg.payload["data"], {}
                    )
                pending.extend(units)
                pending.sort()
                stats["units_stolen"] = stats.get("units_stolen", 0) + len(units)
                if obs.enabled:
                    obs.metrics.counter("steal.hits").inc()
                    obs.metrics.counter("steal.units").inc(len(units))
                    obs.emit_counter(
                        "steal", "hit", ctx.now, float(len(units)),
                        pid=pid, meta={"victim": msg.src},
                    )
                if outstanding is not None and outstanding[1] == msg.payload["req"]:
                    outstanding = None
            elif tag == Tags.DENY:
                if outstanding is not None and outstanding[1] == msg.payload["req"]:
                    outstanding = None
                    avoid_until[msg.src] = ctx.now + sc.deny_backoff
                stats["denies"] = stats.get("denies", 0) + 1
                if obs.enabled:
                    obs.metrics.counter("steal.denies").inc()
            elif tag == Tags.STEAL:
                thief = int(msg.payload["thief"])
                req = int(msg.payload["req"])
                if (thief, req) in aborted_reqs:
                    aborted_reqs.discard((thief, req))
                    yield Send(thief, Tags.DENY, {"req": req}, 16)
                    continue
                k = int(len(pending) * sc.steal_fraction)
                if k >= 1 and thief != pid:
                    give = pending[-k:]
                    del pending[-k:]
                    payload: dict[str, Any] = {"req": req, "units": tuple(give)}
                    if exec_num:
                        payload["data"] = kernels.pack_units(
                            local, np.asarray(give), {}
                        )
                    yield Send(thief, Tags.WORK, payload, max(16, k * unit_bytes))
                    stats["serves"] = stats.get("serves", 0) + 1
                else:
                    yield Send(thief, Tags.DENY, {"req": req}, 16)
            elif tag == Tags.ABORT:
                # Remember the abort in case its STEAL arrives late
                # (reordered); a normally-ordered abort refers to an
                # already-served request and is dropped here.
                aborted_reqs.add((int(msg.payload["thief"]), int(msg.payload["req"])))
            elif tag == Tags.TERM:
                terminated = True
                return

    while not terminated:
        yield from _intake()
        if terminated:
            break
        now = ctx.now
        if pending:
            u = pending.pop(0)
            arr = np.array([u])
            # All reps of one unit run back to back: PARALLEL_MAP units
            # are independent, so per-unit rep collapsing is exact
            # (dynamic-reps plans are rejected at entry).
            ops = sum(plan.unit_cost(rep, u) for rep in range(plan.reps))

            def _do(arr=arr):
                for rep in range(plan.reps):
                    kernels.run_units(local, rep, arr)

            yield Compute(ops, fn=_do if exec_num else None)
            done_units.append(u)
            done += 1
            units_since += 1
        else:
            if outstanding is None and n_workers > 1:
                candidates = [
                    v
                    for v in range(n_workers)
                    if v != pid and avoid_until.get(v, 0.0) <= now
                ]
                if candidates:
                    victim = int(rng.choice(candidates))
                    req_seq += 1
                    yield Send(
                        victim,
                        Tags.STEAL,
                        {"thief": pid, "req": req_seq},
                        16,
                    )
                    outstanding = (victim, req_seq, now)
                    stats["steals"] = stats.get("steals", 0) + 1
                    if obs.enabled:
                        obs.metrics.counter("steal.attempts").inc()
            elif outstanding is not None and now - outstanding[2] > sc.steal_timeout:
                victim, req, _ = outstanding
                yield Send(victim, Tags.ABORT, {"thief": pid, "req": req}, 16)
                avoid_until[victim] = now + sc.suspect_backoff
                outstanding = None
                stats["aborts"] = stats.get("aborts", 0) + 1
                if obs.enabled:
                    obs.metrics.counter("steal.aborts").inc()
                    obs.emit_counter(
                        "steal", "abort", now, 1.0,
                        pid=pid, meta={"victim": victim},
                    )
            yield Sleep(sc.idle_tick)
        now = ctx.now
        if (now - last_report >= sc.report_period) or (units_since and not pending):
            yield Send(
                ctx.master_pid,
                Tags.REPORT,
                {"done": done, "remaining": len(pending)},
                32,
            )
            last_report = now
            units_since = 0

    payload = {"units": tuple(done_units)}
    if exec_num:
        payload["data"] = kernels.local_result(local)
    nbytes = kernels.result_bytes(len(done_units)) if exec_num else 64
    yield Send(coord, Tags.RESULT, payload, nbytes)


def _coord_task(
    ctx,
    n_workers: int,
    total_units: int,
    sc: StealingConfig,
    stats: dict,
    sink: dict,
):
    """Passive coordinator: termination detection + gather only."""
    obs = ctx.obs
    now = ctx.now
    done_of = {pid: 0 for pid in range(n_workers)}
    rem_of = {pid: 0 for pid in range(n_workers)}
    last_heard = {pid: now for pid in range(n_workers)}
    dead: set[int] = set()
    last_progress = now

    while True:
        progressed = False
        while True:
            msg = yield Poll(tag=Tags.REPORT)
            if msg is None:
                break
            p = msg.payload
            if p["done"] > done_of[msg.src]:
                progressed = True
            done_of[msg.src] = int(p["done"])
            rem_of[msg.src] = int(p["remaining"])
            last_heard[msg.src] = ctx.now
        now = ctx.now
        if progressed:
            last_progress = now
        done_total = sum(done_of.values())
        if done_total >= total_units:
            break
        for pid in range(n_workers):
            if pid not in dead and now - last_heard[pid] > sc.dead_after:
                dead.add(pid)
                stats["deaths"] = stats.get("deaths", 0) + 1
                if obs.enabled:
                    obs.metrics.counter("steal.deaths").inc()
                    obs.emit_counter(
                        "steal", "death", now, 1.0, pid=ctx.pid,
                        meta={"dead": pid, "last_remaining": rem_of[pid]},
                    )
        live = [pid for pid in range(n_workers) if pid not in dead]
        if not live:
            break
        if (
            dead
            and now - last_progress > sc.stall_grace
            and all(rem_of[pid] == 0 for pid in live)
        ):
            # Globally idle after a death: the missing units died with
            # the crashed worker(s).  Terminate and report them lost.
            break
        if now - last_progress > sc.hard_stall:
            break  # unconditional: a stealing run must never hang
        yield Sleep(sc.tick)

    done_total = sum(done_of.values())
    lost = max(0, total_units - done_total)
    stats["lost_units"] = lost
    if lost and obs.enabled:
        obs.metrics.counter("steal.lost_units").inc(lost)
    for pid in range(n_workers):
        yield Send(pid, Tags.TERM, None, 16)
    # Gather with the silence detector still running: a worker that
    # crashed shortly before TERM may not have been marked dead yet, and
    # a blocking Recv on its RESULT would hang the coordinator forever.
    results = {}
    gather_start = ctx.now
    while len(results) < n_workers - len(dead):
        msg = yield Poll(tag=Tags.RESULT)
        now = ctx.now
        if msg is not None:
            results[msg.src] = msg.payload
            last_heard[msg.src] = now
            continue
        for pid in range(n_workers):
            if (
                pid not in dead
                and pid not in results
                and now - last_heard[pid] > sc.dead_after
            ):
                dead.add(pid)
                stats["deaths"] = stats.get("deaths", 0) + 1
                if obs.enabled:
                    obs.metrics.counter("steal.deaths").inc()
                    obs.emit_counter(
                        "steal", "death", now, 1.0, pid=ctx.pid,
                        meta={"dead": pid, "last_remaining": rem_of[pid]},
                    )
        if now - gather_start > sc.hard_stall:
            break  # unconditional: a stealing run must never hang
        yield Sleep(sc.tick)
    sink["results"] = results
    sink["lost"] = lost


def run_stealing(
    plan: ExecutionPlan,
    run_cfg: RunConfig | None = None,
    loads: Mapping[int, LoadGenerator] | None = None,
    *,
    stealing: StealingConfig | None = None,
    seed: int = 0,
    recorder: Recorder | None = None,
    faults: FaultPlan | None = None,
) -> StealingResult:
    """Run ``plan`` under decentralized work stealing.

    ``run_cfg.cluster.n_slaves`` is the worker count; the termination
    coordinator runs on the master processor.  Worker crashes are
    tolerated: their units are reported lost (the coordinator never
    hangs), everything computed elsewhere is still gathered.
    """
    run_cfg = run_cfg or RunConfig()
    sc = stealing or StealingConfig()
    if plan.shape is not LoopShape.PARALLEL_MAP:
        raise ConfigError(
            "work stealing supports PARALLEL_MAP plans (independent "
            f"iterations) only; plan {plan.name!r} has shape "
            f"{plan.shape.name}. PIPELINE and REDUCTION_FRONT loops need "
            "the central runtime (repro.runtime.run_application)."
        )
    if plan.dynamic_reps:
        raise ConfigError(
            "work stealing cannot run dynamic-reps (WHILE) plans: plan "
            f"{plan.name!r} decides its repetition count from a global "
            "convergence test, which needs the central runtime's sweep "
            "barrier."
        )
    n = run_cfg.cluster.n_slaves
    loads = dict(loads or {})
    for pid in loads:
        if not 0 <= pid < n:
            raise ConfigError(f"competing load assigned to non-worker pid {pid}")
    injector = None
    if faults is not None and not faults.empty:
        faults.validate_for(n)
        injector = FaultInjector(faults, master_pid=run_cfg.cluster.master_pid)
    cluster = Cluster(
        run_cfg.cluster, loads, recorder, injector, engine=run_cfg.engine
    )
    exec_num = run_cfg.execute_numerics
    rng = np.random.default_rng(seed)
    global_state = plan.kernels.make_global(rng) if exec_num else None
    lo, hi = plan.unit_space()
    counts = proportional_counts(hi - lo, [1.0] * n, minimum=1)
    stats: dict[str, int] = {}
    sink: dict[str, Any] = {}
    start = lo
    for pid in range(n):
        units = tuple(range(start, start + counts[pid]))
        start += counts[pid]
        local = (
            plan.kernels.make_local(global_state, np.asarray(units))
            if exec_num
            else None
        )
        cluster.spawn(
            pid, _worker_task, plan, exec_num, units, local, n, sc, stats, seed
        )
    cluster.spawn(
        run_cfg.cluster.master_pid, _coord_task, n, hi - lo, sc, stats, sink
    )
    cluster.run(until=run_cfg.max_virtual_time)
    if "results" not in sink:
        from ..errors import SimulationError

        if cluster.engine.pending():
            raise SimulationError(
                f"stealing run exceeded max_virtual_time={run_cfg.max_virtual_time}"
            )
        cluster.run()  # surfaces DeadlockError diagnostics
        raise SimulationError("coordinator never gathered results")

    elapsed = max(
        cluster.task_finish_time(pid)
        for pid in range(run_cfg.cluster.n_processors)
        if pid not in cluster.dead_pids
    )
    completed = sum(len(res["units"]) for res in sink["results"].values())
    result = None
    if exec_num and sink.get("results"):
        merged = {
            pid: (np.asarray(res["units"]), res.get("data"))
            for pid, res in sink["results"].items()
            if res.get("data") is not None and len(res["units"])
        }
        result = plan.kernels.merge_results(global_state, merged)
    return StealingResult(
        name=plan.name,
        n_slaves=n,
        elapsed=elapsed,
        sequential_time=plan.total_ops() / run_cfg.cluster.processor.speed,
        rusage=cluster.rusage(elapsed),
        message_count=cluster.message_count,
        bytes_sent=cluster.bytes_sent,
        steals=stats.get("steals", 0),
        steal_hits=stats.get("serves", 0),
        steal_denies=stats.get("denies", 0),
        steal_aborts=stats.get("aborts", 0),
        units_stolen=stats.get("units_stolen", 0),
        completed_units=completed,
        # Custody accounting: a unit is lost unless its *result* was
        # gathered — this also covers units a crashed worker computed
        # but never got to hand over (the coordinator's steal.lost_units
        # counter tracks only never-computed units).
        lost_units=(hi - lo) - completed,
        deaths=stats.get("deaths", 0),
        result=result,
        dead_pids=tuple(sorted(cluster.dead_pids)),
        recorder=recorder,
    )
