"""rDLB-style robust self-scheduling: resilient chunk reassignment.

Central-queue self-scheduling (the :mod:`repro.baselines.self_sched`
family) hardened the way rDLB (Mohammed et al.) hardens DLS techniques:
the master never blocks, watches request traffic as a heartbeat, and
when the queue runs dry while chunks are still outstanding it *reissues*
the oldest outstanding chunk to the next idle requester (bounded
duplication, first result wins).  No rate filtering, no trend
estimation, no movement decisions — robustness against both
perturbation (a slowed worker's chunk is simply finished by someone
else) and fail-stop crashes comes entirely from reissuing work the
master still owns.

The cost is the self-scheduling cost the paper's iteration-ownership
design avoids — every chunk ships its input data from the master and
returns its results — plus the duplicated compute of reassigned chunks.
The perturbation-robustness bench makes both visible.

Supports PARALLEL_MAP plans (independent iterations) only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..compiler.plan import ExecutionPlan, LoopShape
from ..config import RunConfig
from ..errors import ConfigError
from ..faults import FaultInjector, FaultPlan
from ..obs import Recorder
from ..sim import Cluster, Compute, LoadGenerator, Poll, Recv, Send, Sleep
from ..sim.rusage import RusageReport
from .protocol import RobustTags

# Module-level alias named `Tags` for the protocol lint's AST resolver.
Tags = RobustTags

__all__ = ["RdlbConfig", "RdlbResult", "run_rdlb"]

_CHUNKINGS = ("fsc", "gss", "factoring", "trapezoid")


@dataclass(frozen=True)
class RdlbConfig:
    """Parameters of the robust self-scheduling plane.

    Attributes:
        chunking: chunk-sizing policy — ``"fsc"`` (fixed-size),
            ``"gss"`` (guided), ``"factoring"``, or ``"trapezoid"``
            (the :mod:`repro.baselines.self_sched` policies).
        chunk: fixed chunk size when ``chunking="fsc"``.
        dup_max: maximum concurrent assignees per chunk (2 = one
            reissue); bounds the duplicated compute.
        reassign_after: how long a chunk may be outstanding before an
            idle requester gets a copy even though the holder still
            looks alive (perturbation robustness: a worker slowed 10x
            by competing load is indistinguishable from a dead one).
        retry_wait: how long a worker with nothing to do waits before
            re-requesting.  Workers are never parked inside the master —
            an idle worker keeps polling, which doubles as its
            heartbeat, so a crash while idle is still detected.
        dead_after: request-traffic silence before a worker is declared
            dead and its assignments freed for reassignment.
        tick: master poll-loop sleep between empty polls.
        hard_stall: unconditional no-progress bound; the master stops
            the run (reporting unfinished units lost) so it never hangs.
    """

    chunking: str = "factoring"
    chunk: int = 8
    dup_max: int = 2
    reassign_after: float = 2.0
    retry_wait: float = 0.2
    dead_after: float = 4.0
    tick: float = 0.02
    hard_stall: float = 60.0

    def __post_init__(self) -> None:
        if self.chunking not in _CHUNKINGS:
            raise ConfigError(
                f"chunking must be one of {', '.join(_CHUNKINGS)}, "
                f"got {self.chunking!r}"
            )
        if self.chunk < 1:
            raise ConfigError(f"chunk must be >= 1, got {self.chunk}")
        if self.dup_max < 1:
            raise ConfigError(f"dup_max must be >= 1, got {self.dup_max}")
        if self.reassign_after <= 0 or self.dead_after <= 0:
            raise ConfigError("reassign_after and dead_after must be positive")
        if self.retry_wait <= 0 or self.retry_wait >= self.dead_after:
            raise ConfigError("retry_wait must be positive and < dead_after")
        if self.tick <= 0:
            raise ConfigError("tick must be positive")
        if self.hard_stall <= self.dead_after:
            raise ConfigError("hard_stall must exceed dead_after")


@dataclass
class RdlbResult:
    """Outcome and metrics of one robust self-scheduling run."""

    name: str
    chunking: str
    n_slaves: int
    elapsed: float
    sequential_time: float
    rusage: RusageReport
    message_count: int
    bytes_sent: int
    chunks_served: int
    reassigns: int
    duplicate_results: int
    completed_units: int
    lost_units: int
    deaths: int
    result: Any = None
    dead_pids: tuple[int, ...] = ()
    recorder: Recorder | None = None

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return self.rusage.efficiency(self.sequential_time, list(range(self.n_slaves)))

    def summary(self) -> str:
        lost = f" lost={self.lost_units}" if self.lost_units else ""
        return (
            f"{self.name}: P={self.n_slaves} ({self.chunking}) "
            f"elapsed={self.elapsed:.2f}s speedup={self.speedup:.2f} "
            f"chunks={self.chunks_served} reassigns={self.reassigns} "
            f"deaths={self.deaths}{lost} msgs={self.message_count}"
        )


def _make_policy(rc: RdlbConfig, total: int, n_slaves: int):
    from ..baselines.self_sched import (
        ChunkPolicy,
        FactoringPolicy,
        GuidedPolicy,
        TrapezoidPolicy,
    )

    if rc.chunking == "fsc":
        return ChunkPolicy(rc.chunk)
    if rc.chunking == "gss":
        return GuidedPolicy()
    if rc.chunking == "trapezoid":
        return TrapezoidPolicy(total, n_slaves)
    return FactoringPolicy()


class _Chunk:
    """Master-side state of one outstanding chunk."""

    __slots__ = ("units", "assignees", "issued_at")

    def __init__(self, units: tuple[int, ...], pid: int, now: float):
        self.units = units
        self.assignees = {pid}
        self.issued_at = now


def _rdlb_worker(ctx, plan: ExecutionPlan, rc: RdlbConfig, exec_num: bool):
    kernels = plan.kernels
    master = ctx.master_pid
    report: dict[str, Any] | None = None
    while True:
        yield Send(master, Tags.REQUEST, report, 32)
        msg = yield Recv(src=master, tag=Tags.WORK)
        report = None
        units = msg.payload["units"]
        if not units:
            if msg.payload.get("retry"):
                # Nothing to hand out right now; keep polling (this is
                # also the idle worker's heartbeat).
                yield Sleep(rc.retry_wait)
                continue
            return
        arr = np.asarray(units)
        local = msg.payload.get("data")
        # All reps of the chunk run back to back: PARALLEL_MAP units are
        # independent, so per-chunk rep collapsing is exact
        # (dynamic-reps plans are rejected at entry).
        ops = sum(plan.units_cost(rep, units) for rep in range(plan.reps))

        def _do(local=local, arr=arr):
            for rep in range(plan.reps):
                kernels.run_units(local, rep, arr)

        yield Compute(ops, fn=_do if exec_num and local is not None else None)
        report = {"chunk": msg.payload["chunk"], "units": units}
        if exec_num and local is not None:
            report["data"] = kernels.local_result(local)


def _rdlb_master(
    ctx,
    plan: ExecutionPlan,
    rc: RdlbConfig,
    exec_num: bool,
    global_state,
    n_workers: int,
    stats: dict,
    sink: dict,
):
    obs = ctx.obs
    kernels = plan.kernels
    lo, hi = plan.unit_space()
    total = hi - lo
    queue = list(range(lo, hi))
    policy = _make_policy(rc, total, n_workers)
    now = ctx.now
    outstanding: dict[int, _Chunk] = {}
    next_chunk = 0
    done_units = 0
    chunks_served = 0
    results: dict[int, list] = {p: [] for p in range(n_workers)}
    last_heard = {pid: now for pid in range(n_workers)}
    dead: set[int] = set()
    stopped: set[int] = set()
    last_progress = now

    def _cut(pid: int, now: float):
        """Issue the next queue chunk, or reissue an outstanding one."""
        nonlocal next_chunk, chunks_served
        if queue:
            size = policy.next_chunk(len(queue), n_workers)
            units, del_ = tuple(queue[:size]), queue[:size]
            del queue[: len(del_)]
            cid = next_chunk
            next_chunk += 1
            outstanding[cid] = _Chunk(units, pid, now)
            chunks_served += 1
            return cid, units
        # Queue dry: reissue the oldest eligible outstanding chunk.
        best: int | None = None
        for cid, ch in outstanding.items():
            if pid in ch.assignees or len(ch.assignees) >= rc.dup_max:
                continue
            live_holders = [a for a in ch.assignees if a not in dead]
            if live_holders and now - ch.issued_at <= rc.reassign_after:
                continue  # holder looks healthy and recent; don't duplicate
            if best is None or ch.issued_at < outstanding[best].issued_at:
                best = cid
        if best is None:
            return None
        ch = outstanding[best]
        ch.assignees.add(pid)
        stats["reassigns"] = stats.get("reassigns", 0) + 1
        if obs.enabled:
            obs.metrics.counter("robust.reassigns").inc()
            obs.emit_counter(
                "robust", "reassign", now, float(len(ch.units)),
                pid=ctx.pid, meta={"chunk": best, "to": pid},
            )
        return best, ch.units

    def _serve(pid: int, now: float):
        """Answer one request: work, a reissue, retry-later, or stop."""
        cut = _cut(pid, now)
        if cut is None:
            if done_units >= total or (queue == [] and not outstanding):
                stopped.add(pid)
                yield Send(pid, Tags.WORK, {"chunk": -1, "units": ()}, 16)
            else:
                # No chunk to give (all outstanding ones are held by
                # live recent workers); tell the worker to poll again.
                yield Send(
                    pid, Tags.WORK, {"chunk": -1, "units": (), "retry": True}, 16
                )
            return
        cid, units = cut
        payload: dict[str, Any] = {"chunk": cid, "units": units}
        if exec_num:
            payload["data"] = kernels.make_local(global_state, np.asarray(units))
        nbytes = (
            kernels.input_bytes(len(units))
            if exec_num
            else len(units) * plan.movement.unit_bytes
        )
        yield Send(pid, Tags.WORK, payload, nbytes)

    while len(stopped | dead) < n_workers:
        msg = yield Poll(tag=Tags.REQUEST)
        now = ctx.now
        if msg is not None:
            pid = msg.src
            last_heard[pid] = now
            dead.discard(pid)  # a false positive resurfaces harmlessly
            p = msg.payload
            if p is not None:
                cid = int(p["chunk"])
                ch = outstanding.pop(cid, None)
                if ch is not None:
                    done_units += len(ch.units)
                    last_progress = now
                    results[pid].append((p["units"], p.get("data")))
                else:
                    # The other assignee finished first: duplicate result.
                    stats["duplicates"] = stats.get("duplicates", 0) + 1
                    if obs.enabled:
                        obs.metrics.counter("robust.duplicates").inc()
            yield from _serve(pid, now)
        else:
            yield Sleep(rc.tick)
        now = ctx.now
        for pid in range(n_workers):
            if (
                pid not in dead
                and pid not in stopped
                and now - last_heard[pid] > rc.dead_after
            ):
                dead.add(pid)
                stats["deaths"] = stats.get("deaths", 0) + 1
                for ch in outstanding.values():
                    ch.assignees.discard(pid)
                if obs.enabled:
                    obs.metrics.counter("robust.deaths").inc()
                    obs.emit_counter(
                        "robust", "death", now, 1.0, pid=ctx.pid,
                        meta={"dead": pid},
                    )
        if now - last_progress > rc.hard_stall and outstanding:
            # Never hang: declare whatever is still outstanding lost.
            stats["lost_units"] = stats.get("lost_units", 0) + sum(
                len(ch.units) for ch in outstanding.values()
            )
            outstanding.clear()
            queue.clear()
            last_progress = now

    # Late stop broadcast: the silence detector cannot distinguish a
    # crashed worker from a live one stuck in a long compute (a
    # heavy-tailed unit under competing load can exceed dead_after).  A
    # falsely-dead worker finishes eventually, sends one more REQUEST,
    # and blocks in Recv — queue a stop reply now so that Recv
    # terminates it.  Sends to genuinely crashed pids are dropped.
    for pid in range(n_workers):
        if pid not in stopped:
            yield Send(pid, Tags.WORK, {"chunk": -1, "units": ()}, 16)

    lost = stats.get("lost_units", 0) + sum(
        len(ch.units) for ch in outstanding.values()
    )
    if queue:
        lost += len(queue)
    stats["lost_units"] = lost
    if lost and obs.enabled:
        obs.metrics.counter("robust.lost_units").inc(lost)
    stats["chunks"] = chunks_served
    stats["done_units"] = done_units
    sink["results"] = results


def run_rdlb(
    plan: ExecutionPlan,
    run_cfg: RunConfig | None = None,
    loads: Mapping[int, LoadGenerator] | None = None,
    *,
    rdlb: RdlbConfig | None = None,
    seed: int = 0,
    recorder: Recorder | None = None,
    faults: FaultPlan | None = None,
) -> RdlbResult:
    """Run ``plan`` under rDLB-style robust self-scheduling."""
    run_cfg = run_cfg or RunConfig()
    rc = rdlb or RdlbConfig()
    if plan.shape is not LoopShape.PARALLEL_MAP:
        raise ConfigError(
            "robust self-scheduling supports PARALLEL_MAP plans "
            f"(independent iterations) only; plan {plan.name!r} has shape "
            f"{plan.shape.name}. PIPELINE and REDUCTION_FRONT loops need "
            "the central runtime (repro.runtime.run_application)."
        )
    if plan.dynamic_reps:
        raise ConfigError(
            "robust self-scheduling cannot run dynamic-reps (WHILE) "
            f"plans: plan {plan.name!r} decides its repetition count "
            "from a global convergence test, which needs the central "
            "runtime's sweep barrier."
        )
    n = run_cfg.cluster.n_slaves
    loads = dict(loads or {})
    for pid in loads:
        if not 0 <= pid < n:
            raise ConfigError(f"competing load assigned to non-worker pid {pid}")
    injector = None
    if faults is not None and not faults.empty:
        faults.validate_for(n)
        injector = FaultInjector(faults, master_pid=run_cfg.cluster.master_pid)
    cluster = Cluster(
        run_cfg.cluster, loads, recorder, injector, engine=run_cfg.engine
    )
    exec_num = run_cfg.execute_numerics
    rng = np.random.default_rng(seed)
    global_state = plan.kernels.make_global(rng) if exec_num else None
    stats: dict[str, int] = {}
    sink: dict[str, Any] = {}
    for pid in range(n):
        cluster.spawn(pid, _rdlb_worker, plan, rc, exec_num)
    cluster.spawn(
        run_cfg.cluster.master_pid,
        _rdlb_master,
        plan,
        rc,
        exec_num,
        global_state,
        n,
        stats,
        sink,
    )
    cluster.run(until=run_cfg.max_virtual_time)
    if "results" not in sink:
        from ..errors import SimulationError

        if cluster.engine.pending():
            raise SimulationError(
                f"rdlb run exceeded max_virtual_time={run_cfg.max_virtual_time}"
            )
        cluster.run()  # surfaces DeadlockError diagnostics
        raise SimulationError("master never finished the schedule")
    elapsed = max(
        cluster.task_finish_time(pid)
        for pid in range(run_cfg.cluster.n_processors)
        if pid not in cluster.dead_pids
    )
    completed = stats.get("done_units", 0)
    result = None
    if exec_num:
        # One part per accepted chunk: merge_results selects each
        # part's rows by its unit list, and accepted chunks are
        # disjoint (duplicates were discarded on receipt), so chunk
        # granularity composes for every app regardless of payload type.
        merged: dict[int, Any] = {}
        for items in sink["results"].values():
            for units, data in items:
                if data is not None:
                    merged[len(merged)] = (np.asarray(units), data)
        result = plan.kernels.merge_results(global_state, merged) if merged else None
    return RdlbResult(
        name=plan.name,
        chunking=rc.chunking,
        n_slaves=n,
        elapsed=elapsed,
        sequential_time=plan.total_ops() / run_cfg.cluster.processor.speed,
        rusage=cluster.rusage(elapsed),
        message_count=cluster.message_count,
        bytes_sent=cluster.bytes_sent,
        chunks_served=stats.get("chunks", 0),
        reassigns=stats.get("reassigns", 0),
        duplicate_results=stats.get("duplicates", 0),
        completed_units=completed,
        lost_units=stats.get("lost_units", 0),
        deaths=stats.get("deaths", 0),
        result=result,
        dead_pids=tuple(sorted(cluster.dead_pids)),
        recorder=recorder,
    )
