"""Perturbation-robustness study: strategy x workload x regime cells.

One *cell* races DLB strategies over the same bag-of-units workload at
one processor count under one perturbation regime, and scores every
strategy by **degradation versus an oracle makespan** — the fluid lower
bound a clairvoyant scheduler achieves when it knows every competing
load ahead of time and splits work continuously:

    degradation = makespan / oracle - 1

Workloads (:mod:`repro.scale.workload`):

- ``uniform``   — every unit costs the same (the paper's assumption);
- ``lognormal`` — mild heavy tail (particle / adaptive-refinement);
- ``pareto``    — severe heavy tail (cost variance diverges).

Perturbation regimes:

- ``flat``  — dedicated machines, no competing load;
- ``spike`` — every ``LOAD_STRIDE``-th worker is hit by a hard
  staggered burst of competing tasks (4x slowdown while it lasts);
- ``trace`` — a recorded real-machine load-average trace
  (:class:`repro.sim.load.LoadTrace`, committed under
  ``repro/sim/traces/``) replayed deterministically, time-scaled to the
  simulation horizon and desynchronized across the loaded workers.

The oracle deliberately ignores unit granularity, messaging, and
scheduling quanta, so *every* strategy degrades; what the bench suite
(``repro bench --suite perturbation_robustness``) exposes is the
*ordering* — where the paper's rate-filtered redistribution (``rate``)
still wins and where the robust strategies (``stealing``, ``rdlb``)
overtake it.  :func:`robustness_analysis` reduces the cells to that
crossover table.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..config import ClusterSpec, ProcessorSpec, RunConfig
from ..errors import ConfigError
from ..sim import LoadGenerator, StepLoad
from ..sim.load import LoadTrace
from ..scale.workload import irregular_bag, synthetic_bag
from .registry import run_strategy

__all__ = [
    "ANALYSIS_SCHEMA",
    "DEFAULT_STRATEGIES",
    "PERTURBATION_REGIMES",
    "TRACE_PATH",
    "WORKLOADS",
    "cell_perturbation",
    "oracle_makespan",
    "perturbation_loads",
    "robustness_analysis",
]

ANALYSIS_SCHEMA = "repro-robustness/1"

PERTURBATION_REGIMES = ("flat", "spike", "trace")
WORKLOADS = ("uniform", "lognormal", "pareto")
DEFAULT_STRATEGIES = ("rate", "stealing", "rdlb")

#: Every LOAD_STRIDE-th worker carries competing load (matches the
#: scaling-crossover convention).
LOAD_STRIDE = 4

#: The recorded host load-average trace shipped with the package.
TRACE_PATH = (
    Path(__file__).resolve().parent.parent / "sim" / "traces" / "host-loadavg.json"
)

#: Simulated horizon the recorded trace is stretched over.
TRACE_HORIZON_S = 10.0


def _trace_replay(trace: LoadTrace, idx: int) -> StepLoad:
    """Deterministic replay of ``trace`` for the ``idx``-th loaded worker.

    The recorded horizon is stretched to ``TRACE_HORIZON_S`` simulated
    seconds; successive loaded workers get slightly different stretches
    (+20% per index class) so the perturbation does not hit the whole
    machine in lock-step.  A trailing zero-load step keeps the
    perturbation from persisting past the recorded window.
    """
    horizon = trace.horizon
    base = TRACE_HORIZON_S / horizon if horizon > 0 else 1.0
    scale = base * (1.0 + 0.2 * (idx % 3))
    steps = [(t * scale, k) for t, k in trace.samples]
    steps.append((steps[-1][0] + 1e-3, 0))
    return StepLoad(steps)


def perturbation_loads(
    regime: str,
    n_workers: int,
    seed: int = 0,
    trace_path: str | Path | None = None,
) -> dict[int, LoadGenerator]:
    """Competing-load map for one perturbation regime.

    Deterministic: ``flat`` and ``spike`` are seed-independent, and the
    ``trace`` regime replays the committed recorded trace (or
    ``trace_path``) rather than sampling anything.
    """
    if regime not in PERTURBATION_REGIMES:
        raise ConfigError(
            f"unknown perturbation regime {regime!r}; "
            f"choices: {', '.join(PERTURBATION_REGIMES)}"
        )
    loads: dict[int, LoadGenerator] = {}
    if regime == "flat":
        return loads
    trace: LoadTrace | None = None
    if regime == "trace":
        trace = LoadTrace.load(trace_path or TRACE_PATH)
    for idx, pid in enumerate(range(0, n_workers, LOAD_STRIDE)):
        if regime == "spike":
            # A hard burst (3 competing tasks = 4x slowdown) that
            # arrives at staggered times and then vanishes.
            on = 0.5 + 0.75 * (idx % 4)
            loads[pid] = StepLoad([(0.0, 0), (on, 3), (on + 2.0, 0)])
        else:
            assert trace is not None
            loads[pid] = _trace_replay(trace, idx)
    return loads


def _dedicated_integral(gen: LoadGenerator, T: float) -> float:
    """``∫0^T dt / (k(t) + 1)`` — the fraction of CPU the app gets."""
    t = 0.0
    acc = 0.0
    while t < T:
        k = gen.k_at(t)
        nxt = min(gen.next_change(t), T)
        if nxt <= t:
            nxt = T
        acc += (nxt - t) / (k + 1)
        t = nxt
    return acc


def oracle_makespan(
    total_ops: float,
    speed: float,
    loads: Mapping[int, LoadGenerator],
    n_workers: int,
) -> float:
    """Fluid lower bound on the makespan under known competing loads.

    Solves ``sum_p speed * ∫0^T dt/(k_p(t)+1) = total_ops`` for ``T`` by
    bisection: a clairvoyant scheduler that can split work continuously
    and move it for free keeps every processor busy until the common
    finish time ``T``.  Real strategies pay granularity, messaging and
    estimation error on top, so ``makespan / oracle - 1 >= 0`` up to
    scheduling-quantum rounding.
    """
    if total_ops <= 0 or speed <= 0 or n_workers < 1:
        raise ConfigError("oracle needs positive work, speed and workers")

    def capacity(T: float) -> float:
        cap = 0.0
        for pid in range(n_workers):
            gen = loads.get(pid)
            frac = T if gen is None else _dedicated_integral(gen, T)
            cap += speed * frac
        return cap

    lo = total_ops / (speed * n_workers)  # all-dedicated bound
    hi = lo
    for _ in range(60):
        if capacity(hi) >= total_ops:
            break
        hi *= 2.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if capacity(mid) < total_ops:
            lo = mid
        else:
            hi = mid
    return hi


def _build_bag(workload: str, n_units: int, mean_ops: float, seed: int):
    if workload == "uniform":
        return synthetic_bag(n_units, mean_ops, name=f"uniform-{n_units}")
    if workload == "lognormal":
        return irregular_bag(
            n_units, mean_ops, tail="lognormal", sigma=1.4, seed=seed,
            name=f"lognormal-{n_units}",
        )
    if workload == "pareto":
        return irregular_bag(
            n_units, mean_ops, tail="pareto", alpha=1.5, seed=seed,
            name=f"pareto-{n_units}",
        )
    raise ConfigError(
        f"unknown workload {workload!r}; choices: {', '.join(WORKLOADS)}"
    )


def cell_perturbation(
    workload: str = "uniform",
    regime: str = "flat",
    P: int = 16,
    units_per_worker: int = 16,
    mean_ops: float = 2.0e5,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    seed: int = 0,
) -> dict[str, Any]:
    """One robustness cell: the named strategies at one point.

    ``wall_s`` (gated) covers every strategy's run; the simulated
    makespans, oracle bound, and per-strategy degradation land in
    ``meta`` for :func:`robustness_analysis` and the docs.
    """
    bag = _build_bag(workload, P * units_per_worker, mean_ops, seed)
    loads = perturbation_loads(regime, P, seed=seed)
    speed = 1.0e6
    cfg = RunConfig(
        cluster=ClusterSpec(n_slaves=P, processor=ProcessorSpec(speed=speed)),
        execute_numerics=False,
    )
    oracle = oracle_makespan(bag.total_ops(), speed, loads, P)
    makespans: dict[str, float] = {}
    messages: dict[str, int] = {}
    degradation: dict[str, float] = {}
    lost: dict[str, int] = {}
    t0 = time.perf_counter()
    for strategy in strategies:
        out = run_strategy(strategy, bag, cfg, dict(loads), seed=seed)
        makespans[strategy] = out.elapsed
        messages[strategy] = out.message_count
        degradation[strategy] = out.elapsed / oracle - 1.0
        lost[strategy] = out.lost_units
    wall = time.perf_counter() - t0
    winner = min(makespans, key=lambda s: makespans[s])
    return {
        "metrics": {"wall_s": wall},
        "meta": {
            "P": P,
            "workload": workload,
            "regime": regime,
            "units": bag.n_units,
            "oracle_makespan": oracle,
            "sim_elapsed": makespans,
            "makespans": makespans,
            "degradation": degradation,
            "messages": messages,
            "lost_units": lost,
            "winner": winner,
        },
    }


def robustness_analysis(
    cells: Sequence[Mapping[str, Any]], margin: float = 0.02
) -> dict[str, Any]:
    """Reduce robustness cells to the strategy-crossover table.

    For every robust strategy present, lists the (workload, regime)
    points where it beats the paper's ``rate`` plane by at least
    ``margin`` and where it loses by at least ``margin`` — the
    acceptance evidence that the robust planes are *complements*, not
    replacements, of rate-filtered redistribution.
    """
    points: list[dict[str, Any]] = []
    challengers: set[str] = set()
    for cell in cells:
        meta = cell.get("meta", {})
        spans = meta.get("makespans")
        if not spans or "rate" not in spans:
            continue
        challengers.update(s for s in spans if s != "rate")
        points.append(
            {
                "workload": meta.get("workload"),
                "regime": meta.get("regime"),
                "P": meta.get("P"),
                "oracle": meta.get("oracle_makespan"),
                "makespans": dict(spans),
                "degradation": dict(meta.get("degradation", {})),
                "winner": meta.get("winner"),
            }
        )
    out: dict[str, Any] = {
        "schema": ANALYSIS_SCHEMA,
        "margin": margin,
        "points": points,
        "strategies": {},
    }
    for strategy in sorted(challengers):
        wins: list[str] = []
        losses: list[str] = []
        for point in points:
            spans = point["makespans"]
            if strategy not in spans:
                continue
            label = f"{point['workload']}/{point['regime']}"
            if spans[strategy] < spans["rate"] * (1.0 - margin):
                wins.append(label)
            elif spans[strategy] > spans["rate"] * (1.0 + margin):
                losses.append(label)
        out["strategies"][strategy] = {
            "beats_rate": wins,
            "loses_to_rate": losses,
            "complementary": bool(wins) and bool(losses),
        }
    return out
