"""Finite-state abstraction of the work-stealing control plane.

Models the steal/deny/abort protocol of ``strategies/stealing.py`` for
exhaustive verification (``repro check --model --model-plane steal``):

- **Workers** compute their own units one at a time, reporting
  ``(done, remaining)`` counts to the passive coordinator after every
  unit.  An idle worker sends ``st.steal`` to a victim and waits; the
  victim answers ``st.work`` (steal-half) or ``st.deny``.  A waiting
  thief may nondeterministically time out — it sends ``st.abort`` and
  resumes; the victim remembers aborted request ids so a late
  (tag-selectively reordered) ``st.steal`` is denied rather than served
  twice, while the thief accepts late ``st.work`` unconditionally
  (stolen units must never be dropped).
- **The coordinator** never touches units: it terminates the run
  (``st.term`` broadcast, then gathers ``st.result``) once the reported
  done counts cover every unit — or, after a crash, once every live
  worker has reported itself idle (the time-free abstraction of the
  runtime's post-death stall grace).
- **Crashes.**  Workers named in ``crashable`` may crash at any
  pre-termination point; an accurate-failure-detector oracle message
  (pseudo-source ``fd``) informs the coordinator, exactly as in the FT
  model.  Units owned by (or in flight to) a crashed worker are
  lost-with-the-dead but never lose *custody* in the model, so the
  conservation invariant stays exact: every unit is always held by
  exactly one worker local or one in-flight ``st.work`` payload.

The steal request counter is bounded by ``max_steals`` (a thief that
exhausts its attempts parks until ``st.work`` or ``st.term`` arrives),
keeping the state space finite; this under-approximates the runtime's
unbounded retry loop but preserves every reordering race around a
single steal transaction, which is where the protocol bugs live —
selective receive lets the victim see the ``st.abort`` *before* the
``st.steal`` it cancels, so the aborted-request dedup arm is reachable
even at ``max_steals=1``.  (``max_steals=2`` multiplies the space
roughly 60x — 225k states at the default size — and was verified clean
during development; the sweep stays at 1 to keep ``repro check
--model`` fast.)

``MUTATIONS`` seeds protocol corruptions the checker must catch:
dropping the termination broadcast (deadlock), forgetting stolen units
on serve (loss), serving units twice (duplication), and a thief
ignoring post-abort work (loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, NamedTuple

from ..analysis.model.core import Invariant, Model, Msg, Step, selective

__all__ = ["COORD", "MUTATIONS", "StealConfig", "build_model"]

COORD = "co"

#: Seeded protocol corruptions for the checker's test suite.
MUTATIONS: dict[str, str] = {
    "drop_term": "the coordinator never broadcasts st.term",
    "lose_stolen_units": "the victim forgets stolen units when serving",
    "double_serve": "the victim serves units it already gave away",
    "ignore_late_work": "a thief drops st.work arriving after its abort",
}


@dataclass(frozen=True)
class StealConfig:
    """One work-stealing model configuration."""

    n_workers: int = 2
    units: int = 3
    max_steals: int = 1
    crashable: tuple[str, ...] = ()

    def worker_names(self) -> tuple[str, ...]:
        return tuple(f"w{i}" for i in range(self.n_workers))


class WLocal(NamedTuple):
    """One worker's local state."""

    remaining: frozenset[int]
    done: frozenset[int]
    drained: frozenset[int]  # late st.work absorbed after termination
    phase: str  # "run" | "wait" | "term" | "crashed"
    next_req: int
    outstanding: tuple[str, int] | None  # (victim, req) awaiting reply
    steals_left: int
    aborted: frozenset[tuple[str, int]]  # victim side: aborted (thief, req)


class CLocal(NamedTuple):
    """The coordinator's local state."""

    done_of: tuple[tuple[str, int], ...]  # sorted worker -> done count
    rem_of: tuple[tuple[str, int], ...]  # sorted worker -> remaining count
    dead: frozenset[str]
    termed: bool
    results: frozenset[str]


def _get(table: tuple[tuple[str, int], ...], name: str) -> int:
    for key, value in table:
        if key == name:
            return value
    return 0


def _put(
    table: tuple[tuple[str, int], ...], name: str, value: int
) -> tuple[tuple[str, int], ...]:
    out = dict(table)
    out[name] = value
    return tuple(sorted(out.items()))


class StealWorker:
    """One worker of the stealing plane."""

    def __init__(self, name: str, cfg: StealConfig, mutation: str | None):
        self.name = name
        self.cfg = cfg
        self.mutation = mutation
        self.crashable = name in cfg.crashable

    def init(self) -> Hashable:
        units = (
            frozenset(range(self.cfg.units))
            if self.name == "w0"
            else frozenset()
        )
        return WLocal(
            remaining=units,
            done=frozenset(),
            drained=frozenset(),
            phase="run",
            next_req=0,
            outstanding=None,
            steals_left=self.cfg.max_steals,
            aborted=frozenset(),
        )

    def _report(self, s: WLocal) -> Msg:
        return Msg(
            self.name,
            COORD,
            "st.report",
            (len(s.done), len(s.remaining)),
        )

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        s = local
        assert isinstance(s, WLocal)
        if s.phase == "crashed":
            return

        # -- intake: st.work ------------------------------------------------
        for msg in selective(pending, lambda m: m.tag == "st.work"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            units = frozenset(int(u) for u in payload)
            if self.mutation == "ignore_late_work" and s.outstanding is None:
                # BUG: the thief already aborted, so it throws the
                # stolen units away instead of accepting them.
                yield Step(
                    actor=self.name,
                    label=f"work({sorted(units)}: ignored after abort)",
                    next_state=s,
                    consumed=msg,
                )
                continue
            if s.phase == "term":
                # Post-termination arrival (only reachable after a
                # crash-triggered give-up): the units' results are lost
                # with the run, but custody is still accounted.
                yield Step(
                    actor=self.name,
                    label=f"work({sorted(units)}: drained after term)",
                    next_state=s._replace(drained=s.drained | units),
                    consumed=msg,
                )
                continue
            yield Step(
                actor=self.name,
                label=f"work({sorted(units)})",
                next_state=s._replace(
                    remaining=s.remaining | units,
                    phase="run" if s.phase == "wait" else s.phase,
                    outstanding=None,
                ),
                consumed=msg,
            )

        # -- intake: st.deny ------------------------------------------------
        for msg in selective(pending, lambda m: m.tag == "st.deny"):
            if s.phase == "wait" and s.outstanding is not None:
                yield Step(
                    actor=self.name,
                    label="deny",
                    next_state=s._replace(phase="run", outstanding=None),
                    consumed=msg,
                )
            else:
                yield Step(
                    actor=self.name,
                    label="deny(stale: dropped)",
                    next_state=s,
                    consumed=msg,
                )

        # -- intake: st.steal (victim side) --------------------------------
        for msg in selective(pending, lambda m: m.tag == "st.steal"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            thief, req = str(payload[0]), int(payload[1])
            k = len(s.remaining) // 2
            if (
                (thief, req) in s.aborted
                or k < 1
                or s.phase == "term"
            ):
                yield Step(
                    actor=self.name,
                    label=f"steal({thief}#{req}: deny)",
                    next_state=s,
                    consumed=msg,
                    sends=(Msg(self.name, thief, "st.deny", (req,)),),
                )
                continue
            booty = tuple(sorted(s.remaining)[:k])
            kept = (
                s.remaining
                if self.mutation == "double_serve"
                else s.remaining - frozenset(booty)
            )
            sent = (
                () if self.mutation == "lose_stolen_units" else booty
            )
            yield Step(
                actor=self.name,
                label=f"steal({thief}#{req}: serve {list(booty)})",
                next_state=s._replace(remaining=kept),
                consumed=msg,
                sends=(Msg(self.name, thief, "st.work", sent),),
            )

        # -- intake: st.abort (victim side) --------------------------------
        for msg in selective(pending, lambda m: m.tag == "st.abort"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            thief, req = str(payload[0]), int(payload[1])
            yield Step(
                actor=self.name,
                label=f"abort({thief}#{req})",
                next_state=s._replace(
                    aborted=s.aborted | {(thief, req)}
                ),
                consumed=msg,
            )

        # -- intake: st.term ------------------------------------------------
        for msg in selective(pending, lambda m: m.tag == "st.term"):
            if s.phase != "term":
                yield Step(
                    actor=self.name,
                    label="term",
                    next_state=s._replace(phase="term", outstanding=None),
                    consumed=msg,
                    sends=(
                        Msg(self.name, COORD, "st.result", (len(s.done),)),
                    ),
                )
            else:
                yield Step(
                    actor=self.name,
                    label="term(dup: dropped)",
                    next_state=s,
                    consumed=msg,
                )

        # -- internal: compute one unit ------------------------------------
        if s.phase == "run" and s.remaining:
            u = min(s.remaining)
            nxt = s._replace(
                remaining=s.remaining - {u}, done=s.done | {u}
            )
            yield Step(
                actor=self.name,
                label=f"compute(u{u})",
                next_state=nxt,
                sends=(self._report(nxt),),
            )

        # -- internal: start a steal ---------------------------------------
        if (
            s.phase == "run"
            and not s.remaining
            and s.steals_left > 0
            and self.cfg.n_workers > 1
        ):
            for victim in self.cfg.worker_names():
                if victim == self.name:
                    continue
                yield Step(
                    actor=self.name,
                    label=f"steal->{victim}#{s.next_req}",
                    next_state=s._replace(
                        phase="wait",
                        outstanding=(victim, s.next_req),
                        next_req=s.next_req + 1,
                        steals_left=s.steals_left - 1,
                    ),
                    sends=(
                        Msg(
                            self.name,
                            victim,
                            "st.steal",
                            (self.name, s.next_req),
                        ),
                    ),
                )

        # -- internal: steal timeout ---------------------------------------
        if s.phase == "wait" and s.outstanding is not None:
            victim, req = s.outstanding
            yield Step(
                actor=self.name,
                label=f"timeout({victim}#{req})",
                next_state=s._replace(phase="run", outstanding=None),
                sends=(
                    Msg(self.name, victim, "st.abort", (self.name, req)),
                ),
            )

        # -- internal: crash -----------------------------------------------
        if self.crashable and s.phase != "term":
            yield Step(
                actor=self.name,
                label="crash",
                next_state=s._replace(phase="crashed", outstanding=None),
                sends=(Msg("fd", COORD, "st.crash", (self.name,)),),
            )


class StealCoordinator:
    """The passive termination coordinator."""

    name = COORD

    def __init__(self, cfg: StealConfig, mutation: str | None):
        self.cfg = cfg
        self.mutation = mutation

    def init(self) -> Hashable:
        zero = tuple(sorted((w, 0) for w in self.cfg.worker_names()))
        return CLocal(
            done_of=zero,
            rem_of=tuple(
                sorted(
                    (w, self.cfg.units if w == "w0" else 0)
                    for w in self.cfg.worker_names()
                )
            ),
            dead=frozenset(),
            termed=False,
            results=frozenset(),
        )

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        s = local
        assert isinstance(s, CLocal)

        for msg in selective(pending, lambda m: m.tag == "st.report"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            done, rem = int(payload[0]), int(payload[1])
            yield Step(
                actor=self.name,
                label=f"report({msg.src}: {done}/{rem})",
                next_state=s._replace(
                    done_of=_put(
                        s.done_of,
                        msg.src,
                        max(_get(s.done_of, msg.src), done),
                    ),
                    rem_of=_put(s.rem_of, msg.src, rem),
                ),
                consumed=msg,
            )

        for msg in selective(pending, lambda m: m.tag == "st.crash"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            victim = str(payload[0])
            yield Step(
                actor=self.name,
                label=f"crash({victim})",
                next_state=s._replace(dead=s.dead | {victim}),
                consumed=msg,
            )

        for msg in selective(pending, lambda m: m.tag == "st.result"):
            yield Step(
                actor=self.name,
                label=f"result({msg.src})",
                next_state=s._replace(results=s.results | {msg.src}),
                consumed=msg,
            )

        if not s.termed and self.mutation != "drop_term":
            done_total = sum(v for _, v in s.done_of)
            live_idle = all(
                v == 0
                for w, v in s.rem_of
                if w not in s.dead
            )
            if done_total >= self.cfg.units or (s.dead and live_idle):
                yield Step(
                    actor=self.name,
                    label="term-broadcast",
                    next_state=s._replace(termed=True),
                    sends=tuple(
                        Msg(self.name, w, "st.term", ())
                        for w in self.cfg.worker_names()
                    ),
                )


def unit_conservation(cfg: StealConfig) -> Invariant:
    """Every unit has exactly one custodian at all times.

    Custodians: any worker's ``remaining``/``done``/``drained`` set
    (crashed workers included — units die *with* them, they do not
    vanish), or an in-flight ``st.work`` payload on any channel
    (including channels to a crashed thief: the message is ghost data
    but it is where the units are).
    """

    def check(
        locals_: Mapping[str, Hashable],
        channels: Mapping[tuple[str, str], tuple[Msg, ...]],
    ) -> tuple[str, str] | None:
        counts = {u: 0 for u in range(cfg.units)}
        for _name, local in locals_.items():
            if not isinstance(local, WLocal):
                continue
            for u in local.remaining | local.done | local.drained:
                counts[u] = counts.get(u, 0) + 1
        for _key, msgs in channels.items():
            for msg in msgs:
                if msg.tag != "st.work":
                    continue
                payload = msg.payload
                assert isinstance(payload, tuple)
                for u in payload:
                    counts[int(u)] = counts.get(int(u), 0) + 1
        dup = sorted(u for u, c in counts.items() if c > 1)
        if dup:
            return (
                "RA702",
                f"unit(s) {dup} have more than one custodian "
                f"(duplicated by stealing)",
            )
        lost = sorted(u for u, c in counts.items() if c == 0)
        if lost:
            return (
                "RA701",
                f"unit(s) {lost} have no custodian (lost by stealing)",
            )
        return None

    return check


def build_model(
    cfg: StealConfig | None = None, mutation: str | None = None
) -> Model:
    """Build the work-stealing model for one configuration."""
    cfg = cfg or StealConfig()
    if mutation is not None and mutation not in MUTATIONS:
        raise ValueError(f"unknown mutation {mutation!r}")

    def terminal(locals_: Mapping[str, Hashable]) -> bool:
        coord = locals_[COORD]
        assert isinstance(coord, CLocal)
        if not coord.termed:
            return False
        for name, local in locals_.items():
            if not isinstance(local, WLocal):
                continue
            if local.phase == "crashed":
                continue
            if local.phase != "term" or name not in coord.results:
                return False
        return True

    def dead_of(locals_: Mapping[str, Hashable]) -> frozenset[str]:
        return frozenset(
            name
            for name, local in locals_.items()
            if isinstance(local, WLocal) and local.phase == "crashed"
        )

    workers = [
        StealWorker(name, cfg, mutation) for name in cfg.worker_names()
    ]
    tag = f"steal-P{cfg.n_workers}-u{cfg.units}"
    if cfg.crashable:
        tag += f"-crash[{','.join(cfg.crashable)}]"
    if mutation:
        tag += f"!{mutation}"
    return Model(
        name=tag,
        plane="steal",
        actors=[*workers, StealCoordinator(cfg, mutation)],
        invariants=[unit_conservation(cfg)],
        terminal=terminal,
        dead_of=dead_of,
        notes=(
            "steal/deny/abort with tag-selective reordering; bounded "
            f"steal attempts ({cfg.max_steals}); accurate-FD crash "
            "oracle; coordinator termination by report counts with "
            "post-death idle give-up"
        ),
    )
