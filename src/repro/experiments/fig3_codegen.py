"""Figure 3 — the generated SOR slave program.

The paper's figure shows the SOR source before/after strip mining with
the candidate hook positions (lbhook2 "overhead too high", lbhook1 "ok",
lbhook1a after strip mining, lbhook0 "not frequent enough").  This
experiment regenerates the listing and the hook-placement diagnosis for
the paper's parameters.
"""

from __future__ import annotations

from ..apps.sor import build_sor
from ..compiler.plan import LoopShape

__all__ = ["run"]


def run(n: int = 2000, maxiter: int = 15, n_slaves_hint: int = 8) -> dict:
    plan = build_sor(n=n, maxiter=maxiter, n_slaves_hint=n_slaves_hint)
    assert plan.shape is LoopShape.PIPELINE
    placement = plan.hooks
    diagnosis = []
    for lv in sorted(
        set(placement.admissible) | set(placement.rejected_too_costly),
        key=lambda lv: -lv.depth,
    ):
        status = "ok" if lv in placement.admissible else "overhead too high"
        if lv.depth == 0:
            status = "not frequent enough" if lv not in (placement.level,) else status
        chosen = "  <== chosen" if lv == placement.level else ""
        diagnosis.append(
            f"{lv.name}: ~{lv.ops_between_hooks:.0f} "
            f"ops between hooks ({status}){chosen}"
        )
    return {
        "plan": plan,
        "source": plan.source,
        "chosen_level": placement.level.name,
        "diagnosis": diagnosis,
        "strip_var": plan.strip.loop_var,
        "restricted": plan.movement.restricted,
    }
