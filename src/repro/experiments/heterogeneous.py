"""Heterogeneous cluster (extension of Section 3.2's claim).

"Slave performance is specified in work units per second ... With this
application-specific measure, there is no need to explicitly measure
the loads on the processors or to give different weights to different
processors in a heterogeneous processing environment."

This experiment runs MM on clusters mixing fast and slow workstations —
with no configuration describing the speeds — and checks that the
balancer discovers the speed ratio from measured rates and assigns work
proportionally.
"""

from __future__ import annotations

from dataclasses import replace

from ..apps.matmul import build_matmul
from ..config import ClusterSpec, ProcessorSpec, RunConfig
from ..runtime.launcher import run_application
from .common import ExperimentSeries, PAPER_QUANTUM, PAPER_SPEED

__all__ = ["run"]


def run(n: int = 500, seed: int = 0) -> ExperimentSeries:
    series = ExperimentSeries(
        name="Heterogeneous cluster: MM on mixed-speed workstations",
        headers=(
            "speeds",
            "t_static",
            "t_dlb",
            "eff_static",
            "eff_dlb",
            "final_counts",
        ),
        expected=(
            "the balancer discovers speed ratios from work-units/sec with "
            "no per-processor weights; final work shares track the speeds"
        ),
    )
    scenarios = [
        (1.0, 1.0, 1.0, 1.0),
        (2.0, 1.0, 1.0, 1.0),
        (3.0, 2.0, 1.0, 1.0),
        (4.0, 1.0, 1.0, 0.5),
    ]
    for speeds in scenarios:
        base = ProcessorSpec(speed=PAPER_SPEED, quantum=PAPER_QUANTUM)
        overrides = tuple(
            (pid, replace(base, speed=PAPER_SPEED * f))
            for pid, f in enumerate(speeds)
            if f != 1.0
        )
        cluster = ClusterSpec(
            n_slaves=len(speeds), processor=base, processor_overrides=overrides
        )
        plan = build_matmul(n=n, n_slaves_hint=len(speeds))
        r_sta = run_application(
            plan,
            RunConfig(cluster=cluster, execute_numerics=False, dlb_enabled=False),
            seed=seed,
        )
        r_dlb = run_application(
            plan, RunConfig(cluster=cluster, execute_numerics=False), seed=seed
        )
        series.add(
            "/".join(f"{f:g}x" for f in speeds),
            r_sta.elapsed,
            r_dlb.elapsed,
            r_sta.efficiency,
            r_dlb.efficiency,
            "/".join(str(c) for c in r_dlb.log.final_partition_counts),
        )
    return series
