"""Figure 5 — 500x500 matrix multiplication, dedicated homogeneous cluster.

Panels: (a) execution time, (b) speedup, (c) efficiency vs number of
processors, for sequential execution, parallel execution, and parallel
execution with dynamic load balancing.  The paper's qualitative result:
DLB overhead is small, so the parallel and parallel-with-DLB curves lie
nearly on top of each other, with near-linear speedup.
"""

from __future__ import annotations

from typing import Sequence

from ..apps.matmul import build_matmul
from .common import ExperimentSeries, run_point

__all__ = ["run"]


def run(
    n: int = 500,
    processors: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    execute_numerics: bool = False,
    seed: int = 0,
) -> ExperimentSeries:
    series = ExperimentSeries(
        name=f"Figure 5: {n}x{n} MM, dedicated homogeneous environment",
        headers=(
            "P",
            "t_seq",
            "t_par",
            "t_dlb",
            "speedup_par",
            "speedup_dlb",
            "eff_par",
            "eff_dlb",
            "dlb_overhead_%",
        ),
        expected=(
            "sequential ~275 s; near-linear speedup; DLB overhead small "
            "(parallel and parallel+DLB curves nearly coincide); "
            "efficiency stays above ~0.9"
        ),
    )
    for P in processors:
        plan = build_matmul(n=n, n_slaves_hint=P)
        r_sta = run_point(
            plan, P, dlb=False, execute_numerics=execute_numerics, seed=seed
        )
        r_dlb = run_point(
            plan, P, dlb=True, execute_numerics=execute_numerics, seed=seed
        )
        t_seq = r_sta.sequential_time
        overhead = 100.0 * (r_dlb.elapsed - r_sta.elapsed) / r_sta.elapsed
        series.add(
            P,
            t_seq,
            r_sta.elapsed,
            r_dlb.elapsed,
            r_sta.speedup,
            r_dlb.speedup,
            r_sta.efficiency,
            r_dlb.efficiency,
            overhead,
        )
    return series
