"""Figure 4 — periods affecting load-balancing frequency selection.

The figure shows three lower bounds on the balancing period: 0.1x the
cost of moving work, 20x the master-slave interaction cost, and 5x the
scheduling quantum (>= 500 ms).  This experiment evaluates the bounds
over a range of measured costs and reports which constraint binds.
"""

from __future__ import annotations

from ..config import BalancerConfig
from ..runtime.frequency import select_period
from .common import ExperimentSeries, PAPER_QUANTUM

__all__ = ["run"]


def run() -> ExperimentSeries:
    cfg = BalancerConfig()
    series = ExperimentSeries(
        name="Figure 4: load-balancing period selection",
        headers=(
            "interaction_cost",
            "movement_cost",
            "bound_interaction",
            "bound_movement",
            "bound_quantum",
            "period",
            "binding",
        ),
        expected=(
            "period = max(20 x interaction, 0.1 x movement, 5 quanta, 0.5 s); "
            "for Nectar-scale costs the quantum/floor bound binds until "
            "movement costs reach seconds"
        ),
    )
    scenarios = [
        (0.002, 0.05),   # cheap interaction, cheap movement -> floor binds
        (0.002, 10.0),   # heavy movement -> movement bound binds
        (0.05, 0.5),     # slow network -> interaction bound binds
        (0.002, 2.0),
        (0.1, 20.0),
    ]
    for inter, move in scenarios:
        bounds = select_period(inter, move, PAPER_QUANTUM, cfg)
        series.add(
            inter,
            move,
            bounds.from_interaction,
            bounds.from_movement,
            max(bounds.from_quantum, bounds.floor),
            bounds.period,
            bounds.binding_constraint(),
        )
    return series
