"""Figure 6 — 2000x2000 SOR, dedicated homogeneous cluster.

Same panels as Figure 5 but for the pipelined application: speedup is
sub-linear because of per-strip boundary communication and pipeline
fill/drain, and DLB overhead stays small.
"""

from __future__ import annotations

from typing import Sequence

from ..apps.sor import build_sor
from .common import ExperimentSeries, run_point

__all__ = ["run"]


def run(
    n: int = 2000,
    maxiter: int = 15,
    processors: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    execute_numerics: bool = False,
    seed: int = 0,
) -> ExperimentSeries:
    series = ExperimentSeries(
        name=(
            f"Figure 6: {n}x{n} SOR ({maxiter} sweeps), "
            "dedicated homogeneous environment"
        ),
        headers=(
            "P",
            "t_seq",
            "t_par",
            "t_dlb",
            "speedup_par",
            "speedup_dlb",
            "eff_par",
            "eff_dlb",
            "dlb_overhead_%",
        ),
        expected=(
            "sequential ~350 s; speedup sub-linear (communication + "
            "pipeline fill/drain), ~6 at 7 processors; DLB overhead small"
        ),
    )
    for P in processors:
        plan = build_sor(n=n, maxiter=maxiter, n_slaves_hint=P)
        r_sta = run_point(
            plan, P, dlb=False, execute_numerics=execute_numerics, seed=seed
        )
        r_dlb = run_point(
            plan, P, dlb=True, execute_numerics=execute_numerics, seed=seed
        )
        overhead = 100.0 * (r_dlb.elapsed - r_sta.elapsed) / r_sta.elapsed
        series.add(
            P,
            r_sta.sequential_time,
            r_sta.elapsed,
            r_dlb.elapsed,
            r_sta.speedup,
            r_dlb.speedup,
            r_sta.efficiency,
            r_dlb.efficiency,
            overhead,
        )
    return series
