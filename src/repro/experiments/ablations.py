"""Ablations for claims the paper makes in prose.

- Section 3.3: pipelined master-slave interaction hides the balancing
  round trip; synchronous interaction puts it on the critical path
  ("experiments comparing the pipelined and synchronous approaches
  confirm that pipelining is important").
- Section 4.4: strip mining the pipelined loop to ~1.5 quanta makes
  execution times predictable and reduces synchronization; too-small
  strips amplify load-imbalance effects.
- Section 3.2: the balancer refinements (trend filter, 10% improvement
  threshold, profitability phase) prevent excessive work movement under
  a fluctuating load.
"""

from __future__ import annotations

from ..apps.matmul import build_matmul
from ..apps.sor import build_sor
from ..config import BalancerConfig, GrainConfig
from ..sim import ConstantLoad, OscillatingLoad
from .common import ExperimentSeries, run_point

__all__ = ["pipelining", "grain", "refinements"]


def pipelining(
    n: int = 500,
    n_slaves: int = 7,
    latencies: tuple[float, ...] = (5e-4, 0.02, 0.1),
    seed: int = 0,
) -> ExperimentSeries:
    """Pipelined vs synchronous master-slave interaction (Section 3.3).

    The paper notes that network delays on their target vary
    significantly, which is why they pipeline; the sweep over latencies
    shows the synchronous penalty growing with the round-trip cost.
    """
    from ..config import NetworkSpec

    series = ExperimentSeries(
        name="Ablation (3.3): pipelined vs synchronous master-slave interaction",
        headers=(
            "latency_s", "t_sync", "t_pipe", "sync_penalty_%", "eff_sync", "eff_pipe"
        ),
        expected=(
            "pipelining removes the balancing round trip from the critical "
            "path; the synchronous penalty grows with network latency"
        ),
    )
    plan = build_matmul(n=n, n_slaves_hint=n_slaves)
    loads = {0: ConstantLoad(k=1)}
    for latency in latencies:
        net = NetworkSpec(latency=latency)
        r_sync = run_point(
            plan, n_slaves, loads=loads, pipelined=False, seed=seed, network=net
        )
        r_pipe = run_point(
            plan, n_slaves, loads=loads, pipelined=True, seed=seed, network=net
        )
        penalty = 100.0 * (r_sync.elapsed - r_pipe.elapsed) / r_pipe.elapsed
        series.add(
            latency,
            r_sync.elapsed,
            r_pipe.elapsed,
            penalty,
            r_sync.efficiency,
            r_pipe.efficiency,
        )
    return series


def grain(
    n: int = 2000,
    maxiter: int = 15,
    n_slaves: int = 4,
    seed: int = 0,
) -> ExperimentSeries:
    """Strip-mining granularity sweep (Section 4.4).

    Block sizes are given as multiples of the startup rule's choice
    (~150 ms per strip = 1.5x the scheduling quantum).
    """
    series = ExperimentSeries(
        name="Ablation (4.4): strip size of the pipelined loop (SOR)",
        headers=("block_rows", "block_time_s", "t_elapsed", "efficiency", "messages"),
        expected=(
            "tiny strips (<< quantum) synchronize too often and are "
            "hardest hit by competing load; ~1.5 quanta strips perform "
            "well; very large strips lose pipeline overlap"
        ),
    )
    loads = {0: ConstantLoad(k=1)}
    # The startup rule's block for these parameters.
    auto_plan = build_sor(n=n, maxiter=maxiter, n_slaves_hint=n_slaves)
    per_row_time = (
        auto_plan.units_cost(0, range(1, n - 1))
        / (n - 2)
        * ((n - 2) / n_slaves)
        / auto_plan.unit_cost(0, n // 2)
    )
    for rows in (2, 8, 24, 75, 300, 999):
        grain_cfg = GrainConfig(block_size_override=rows)
        plan = build_sor(
            n=n, maxiter=maxiter, grain=grain_cfg, n_slaves_hint=n_slaves
        )
        r = run_point(plan, n_slaves, loads=loads, seed=seed, grain=grain_cfg)
        block_time = (
            plan.unit_cost(0, n // 2) * ((n - 2) / n_slaves) * rows / (n - 2)
        ) / 1.0e6
        series.add(rows, block_time, r.elapsed, r.efficiency, r.message_count)
    return series


def refinements(
    n: int = 500,
    reps: int = 4,
    n_slaves: int = 4,
    seed: int = 0,
) -> ExperimentSeries:
    """Balancer refinement toggles under an oscillating load (Section 3.2)."""
    series = ExperimentSeries(
        name="Ablation (3.2): balancer refinements under oscillating load",
        headers=("config", "t_elapsed", "efficiency", "moves", "units_moved"),
        expected=(
            "disabling the filter / threshold / profitability check causes "
            "extra movement (thrash) without improving efficiency"
        ),
    )
    plan = build_matmul(n=n, reps=reps, n_slaves_hint=n_slaves)
    loads = {0: OscillatingLoad(k=1, period=20.0, duration=10.0)}
    configs = {
        "all refinements": BalancerConfig(),
        "no filter": BalancerConfig(filter_enabled=False),
        "no 10% threshold": BalancerConfig(improvement_threshold=0.0),
        "no profitability": BalancerConfig(profitability_enabled=False),
        "none": BalancerConfig(
            filter_enabled=False,
            improvement_threshold=0.0,
            profitability_enabled=False,
        ),
    }
    for label, bal in configs.items():
        r = run_point(plan, n_slaves, loads=loads, balancer=bal, seed=seed)
        series.add(
            label, r.elapsed, r.efficiency, r.log.moves_applied, r.log.units_moved
        )
    return series
