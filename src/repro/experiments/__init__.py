"""Experiment drivers reproducing every table and figure in the paper.

Each module runs one experiment on the simulated cluster and returns a
structured result with a ``format_table()`` paper-style rendering plus
the paper's expected qualitative shape, so EXPERIMENTS.md can record
paper-vs-measured for every artifact:

- :mod:`tab1_features` — Table 1 (application properties).
- :mod:`fig3_codegen` — Figure 3 (generated SOR code, hooks, strip mining).
- :mod:`fig4_frequency` — Figure 4 (load-balancing period selection).
- :mod:`fig5_mm_dedicated` / :mod:`fig6_sor_dedicated` — dedicated
  homogeneous runs: time, speedup, efficiency vs processors.
- :mod:`fig7_mm_loaded` / :mod:`fig8_sor_loaded` — one processor with a
  constant competing load: time + efficiency vs processors.
- :mod:`fig9_oscillating` — rate/work traces under an oscillating load.
- :mod:`ablations` — pipelined vs synchronous interactions (3.3), strip
  granularity (4.4), and balancer refinement toggles (3.2).
"""

from . import (
    ablations,
    adaptive_irregular,
    fig3_codegen,
    fig4_frequency,
    fig5_mm_dedicated,
    fig6_sor_dedicated,
    fig7_mm_loaded,
    fig8_sor_loaded,
    fig9_oscillating,
    heterogeneous,
    quantum_noise,
    tab1_features,
)
from .common import ExperimentSeries, run_point

__all__ = [
    "ExperimentSeries",
    "run_point",
    "tab1_features",
    "fig3_codegen",
    "fig4_frequency",
    "fig5_mm_dedicated",
    "fig6_sor_dedicated",
    "fig7_mm_loaded",
    "fig8_sor_loaded",
    "fig9_oscillating",
    "heterogeneous",
    "adaptive_irregular",
    "quantum_noise",
    "ablations",
]
