"""Table 1 — application properties, derived automatically from the IR.

The paper states the six properties by inspection; here they come out of
dependence analysis and cost-model queries (:mod:`repro.compiler.features`),
which is the point of the compiler reproduction.
"""

from __future__ import annotations

from ..apps.lu import lu_application
from ..apps.matmul import matmul_application
from ..apps.sor import sor_application
from ..compiler.deps import analyze_dependences
from ..compiler.features import FEATURE_NAMES, extract_features, features_table

__all__ = ["run", "PAPER_TABLE1"]

# The paper's Table 1, row-major over FEATURE_NAMES, columns MM/SOR/LU.
PAPER_TABLE1 = {
    "loop_carried_dependences": ("no", "yes", "no"),
    "communication_outside_loop": ("no", "yes", "yes"),
    "repeated_execution_of_loop": ("yes", "yes", "yes"),
    "varying_loop_bounds": ("no", "no", "yes"),
    "index_dependent_iteration_size": ("no", "no", "yes"),
    "data_dependent_iteration_size": ("no", "no", "no"),
}


def run() -> dict:
    """Extract features for MM/SOR/LU and compare against the paper."""
    apps = {
        "MM": matmul_application(),
        "SOR": sor_application(),
        "LU": lu_application(),
    }
    feats = {
        name: extract_features(
            app.program, app.directive, analyze_dependences(app.program, app.directive)
        )
        for name, app in apps.items()
    }
    measured = {
        prop: tuple(
            "yes" if getattr(feats[a], prop) else "no" for a in ("MM", "SOR", "LU")
        )
        for prop in FEATURE_NAMES
    }
    matches = {prop: measured[prop] == PAPER_TABLE1[prop] for prop in FEATURE_NAMES}
    return {
        "features": feats,
        "measured": measured,
        "paper": PAPER_TABLE1,
        "matches": matches,
        "all_match": all(matches.values()),
        "table": features_table(feats),
    }
