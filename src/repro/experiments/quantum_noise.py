"""Section 4.3 — measurement windows vs scheduling-quantum noise.

"If the measurement period is near the time quantum for the system,
context switching between processes will cause dramatic oscillations in
the performance measurements ... the load balancing period must be at
least several times the time quantum so that the context switching
effects average out."

This experiment measures it directly at the processor level: a loaded
workstation executes back-to-back work bursts; each burst's observed
rate (work per wall second) is a rate *sample* of the kind a slave
reports.  The sample spread collapses as the window grows past a few
quanta under the round-robin scheduler, while an idealised fair-share
scheduler shows no window dependence at all — isolating the quantum as
the noise source and justifying the paper's >= 5 quanta rule.
"""

from __future__ import annotations

import numpy as np

from ..config import ProcessorSpec
from ..sim.load import ConstantLoad
from ..sim.processor import Processor
from .common import ExperimentSeries, PAPER_QUANTUM

__all__ = ["run", "rate_samples"]


def rate_samples(
    window_cpu: float,
    scheduler: str,
    k: int = 1,
    quantum: float = PAPER_QUANTUM,
    n_samples: int = 60,
    phase: float = 0.013,
    seed: int = 0,
) -> np.ndarray:
    """Observed rates of ``window_cpu``-sized work bursts on a processor
    with ``k`` competitors (speed 1: rate 1.0 = dedicated).

    Bursts are separated by small random idle gaps (message waits in a
    real slave), so each burst lands at an arbitrary point of the
    scheduler rotation — the realistic sampling situation.
    """
    proc = Processor(
        0,
        ProcessorSpec(speed=1.0, quantum=quantum, phase=phase, scheduler=scheduler),
        ConstantLoad(k=k),
    )
    rng = np.random.default_rng(seed)
    t = 0.0
    rates = []
    for _ in range(n_samples):
        t1 = proc.run_cpu(t, window_cpu)
        rates.append(window_cpu / (t1 - t))
        # Idle gap before the next burst (comm wait), up to ~1.7 cycles.
        t = t1 + rng.uniform(0.0, 1.7 * (k + 1) * quantum)
    return np.asarray(rates)


def run(quantum: float = PAPER_QUANTUM) -> ExperimentSeries:
    series = ExperimentSeries(
        name="Section 4.3: rate-sample noise vs measurement window (1 competitor)",
        headers=(
            "window_quanta",
            "rr_rate_mean",
            "rr_rate_cv",
            "fair_rate_mean",
            "fair_rate_cv",
        ),
        expected=(
            "round-robin sample spread (coefficient of variation) is large "
            "for sub-quantum windows and collapses by ~5 quanta; the fair "
            "scheduler shows none — the quantum is the noise source"
        ),
    )
    for mult in (0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0):
        window = mult * quantum
        rr = rate_samples(window, "round_robin", quantum=quantum)
        fair = rate_samples(window, "fair", quantum=quantum)
        series.add(
            mult,
            float(rr.mean()),
            float(rr.std() / rr.mean()),
            float(fair.mean()),
            float(fair.std() / max(fair.mean(), 1e-12)),
        )
    return series
