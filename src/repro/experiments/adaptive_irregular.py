"""Irregular (data-dependent) iteration sizes — extension experiment.

Table 1's last row is "no" for all three paper applications; the ADAPT
application makes it "yes".  A contiguous hot region of deeply-refined
cells makes the static block distribution intrinsically imbalanced even
on a *dedicated* cluster; the balancer, measuring only work-units/sec,
redistributes the hot cells without ever being told about costs.
"""

from __future__ import annotations

from ..apps.adaptive import build_adaptive
from .common import ExperimentSeries, run_point

__all__ = ["run"]


def run(n: int = 400, reps: int = 6, seed: int = 3) -> ExperimentSeries:
    series = ExperimentSeries(
        name="ADAPT: data-dependent iteration sizes on a dedicated cluster",
        headers=(
            "P", "t_static", "t_dlb", "eff_static", "eff_dlb", "moves", "units_moved"
        ),
        expected=(
            "static block distribution is gated by the hot region's owner; "
            "DLB discovers the imbalance from measured rates and shortens "
            "elapsed time with no cost information"
        ),
    )
    for P in (2, 4, 6):
        plan = build_adaptive(n=n, reps=reps, n_slaves_hint=P)
        r_sta = run_point(
            plan, P, dlb=False, execute_numerics=True, speed=3.0e4, seed=seed
        )
        r_dlb = run_point(
            plan, P, dlb=True, execute_numerics=True, speed=3.0e4, seed=seed
        )
        series.add(
            P,
            r_sta.elapsed,
            r_dlb.elapsed,
            r_sta.efficiency,
            r_dlb.efficiency,
            r_dlb.log.moves_applied,
            r_dlb.log.units_moved,
        )
    return series
