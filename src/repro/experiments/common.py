"""Shared experiment plumbing: run points, sweeps, and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..compiler.plan import ExecutionPlan
from ..config import (
    BalancerConfig,
    ClusterSpec,
    GrainConfig,
    NetworkSpec,
    ProcessorSpec,
    RunConfig,
)
from ..obs import Recorder
from ..runtime.launcher import RunResult, run_application
from ..sim import LoadGenerator

__all__ = ["run_point", "ExperimentSeries", "format_table"]

# Paper testbed calibration: Sun 4/330 ~= 1 Mop/s on these kernels,
# Nectar links at 100 Mbyte/s, 100 ms Unix scheduling quantum.
PAPER_SPEED = 1.0e6
PAPER_QUANTUM = 0.1


def run_point(
    plan: ExecutionPlan,
    n_slaves: int,
    loads: Mapping[int, LoadGenerator] | None = None,
    dlb: bool = True,
    pipelined: bool = True,
    execute_numerics: bool = False,
    trace: bool = False,
    speed: float = PAPER_SPEED,
    seed: int = 0,
    balancer: BalancerConfig | None = None,
    grain: GrainConfig | None = None,
    network: NetworkSpec | None = None,
    recorder: Recorder | None = None,
    engine: str = "auto",
) -> RunResult:
    """One simulated run with paper-calibrated defaults."""
    cfg = RunConfig(
        cluster=ClusterSpec(
            n_slaves=n_slaves,
            processor=ProcessorSpec(speed=speed, quantum=PAPER_QUANTUM),
            network=network if network is not None else NetworkSpec(),
        ),
        balancer=balancer
        if balancer is not None
        else BalancerConfig(pipelined=pipelined),
        grain=grain if grain is not None else GrainConfig(),
        execute_numerics=execute_numerics,
        dlb_enabled=dlb,
        trace_enabled=trace,
        engine=engine,
    )
    return run_application(plan, cfg, loads=loads, seed=seed, recorder=recorder)


@dataclass
class ExperimentSeries:
    """Rows of an experiment, one per processor count / configuration."""

    name: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    expected: str = ""

    def add(self, *row: Any) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row width {len(row)} != headers {len(self.headers)}"
            )
        self.rows.append(tuple(row))

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [r[idx] for r in self.rows]

    def format_table(self) -> str:
        return format_table(
            self.name, self.headers, self.rows, self.notes, self.expected
        )

    def to_dict(self) -> dict:
        """Machine-readable form (JSON-safe) for reports and artifacts."""
        return {
            "name": self.name,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "expected": self.expected,
        }


def format_table(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
    expected: str = "",
) -> str:
    """Fixed-width text table in the paper's reporting style."""

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [name, "=" * len(name)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    for note in notes:
        lines.append(f"  note: {note}")
    if expected:
        lines.append(f"  paper: {expected}")
    return "\n".join(lines)
