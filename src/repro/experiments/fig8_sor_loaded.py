"""Figure 8 — 2000x2000 SOR with a constant competing load on processor 0.

Like Figure 7 but for the pipelined application, where restricted
(adjacent-only) movement and per-strip synchronization make balancing
harder: efficiency with DLB lands slightly below the dedicated case but
clearly above the static distribution.
"""

from __future__ import annotations

from typing import Sequence

from ..apps.sor import build_sor
from ..sim import ConstantLoad
from .common import ExperimentSeries, run_point

__all__ = ["run"]


def run(
    n: int = 2000,
    maxiter: int = 15,
    processors: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    competing_tasks: int = 1,
    execute_numerics: bool = False,
    seed: int = 0,
) -> ExperimentSeries:
    series = ExperimentSeries(
        name=(
            f"Figure 8: {n}x{n} SOR ({maxiter} sweeps), constant load "
            f"({competing_tasks} task) on processor 0"
        ),
        headers=(
            "P",
            "t_par",
            "t_dlb",
            "eff_par",
            "eff_dlb",
            "moves",
            "units_moved",
        ),
        expected=(
            "static efficiency collapses toward ~0.5; DLB efficiency "
            "slightly below the dedicated case but clearly higher than "
            "without load balancing"
        ),
    )
    for P in processors:
        plan = build_sor(n=n, maxiter=maxiter, n_slaves_hint=P)
        loads = {0: ConstantLoad(k=competing_tasks)}
        r_sta = run_point(
            plan,
            P,
            loads=loads,
            dlb=False,
            execute_numerics=execute_numerics,
            seed=seed,
        )
        r_dlb = run_point(
            plan, P, loads=loads, dlb=True, execute_numerics=execute_numerics, seed=seed
        )
        series.add(
            P,
            r_sta.elapsed,
            r_dlb.elapsed,
            r_sta.efficiency,
            r_dlb.efficiency,
            r_dlb.log.moves_applied,
            r_dlb.log.units_moved,
        )
    return series
