"""Figure 7 — 500x500 MM with a constant competing load on processor 0.

Panels: (a) execution time (includes time stolen by the competing task),
(b) resource-usage efficiency.  Paper result: without DLB the whole
application waits on the loaded processor and efficiency collapses; with
DLB the work redistributes and efficiency stays close to the dedicated
case.
"""

from __future__ import annotations

from typing import Sequence

from ..apps.matmul import build_matmul
from ..sim import ConstantLoad
from .common import ExperimentSeries, run_point

__all__ = ["run"]


def run(
    n: int = 500,
    processors: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    competing_tasks: int = 1,
    execute_numerics: bool = False,
    seed: int = 0,
) -> ExperimentSeries:
    series = ExperimentSeries(
        name=(
            f"Figure 7: {n}x{n} MM, constant load ({competing_tasks} task) "
            "on processor 0"
        ),
        headers=(
            "P",
            "t_par",
            "t_dlb",
            "eff_par",
            "eff_dlb",
            "moves",
            "units_moved",
        ),
        expected=(
            "without DLB, efficiency drops toward ~0.5-0.65 (everyone waits "
            "on the loaded node); with DLB, efficiency stays close to the "
            "dedicated case (slightly below)"
        ),
    )
    for P in processors:
        plan = build_matmul(n=n, n_slaves_hint=P)
        loads = {0: ConstantLoad(k=competing_tasks)}
        r_sta = run_point(
            plan,
            P,
            loads=loads,
            dlb=False,
            execute_numerics=execute_numerics,
            seed=seed,
        )
        r_dlb = run_point(
            plan, P, loads=loads, dlb=True, execute_numerics=execute_numerics, seed=seed
        )
        series.add(
            P,
            r_sta.elapsed,
            r_dlb.elapsed,
            r_sta.efficiency,
            r_dlb.efficiency,
            r_dlb.log.moves_applied,
            r_dlb.log.units_moved,
        )
    return series
