"""Figure 9 — work movement in response to an oscillating load.

A 500x500 MM runs on 4 slaves while slave 0 gets a competing task for
10 s out of every 20 s.  The figure plots, for the loaded slave: the raw
measured rate, the filtered ("adjusted") rate, and the work assignment,
all normalised.  Paper result: the work assignment tracks the available
processing power with a lag of about two load-balancing periods (one to
respond, one from pipelined master-slave interaction), with a longer lag
on load onset because hooks stretch as the slave slows down.
"""

from __future__ import annotations

import numpy as np

from ..apps.matmul import build_matmul
from ..obs import Recorder
from ..sim import OscillatingLoad
from .common import run_point

__all__ = ["run", "tracking_lag"]


def run(
    n: int = 500,
    reps: int = 6,
    n_slaves: int = 4,
    period: float = 20.0,
    duration: float = 10.0,
    seed: int = 0,
) -> dict:
    """Run the oscillating-load experiment and extract the three series."""
    plan = build_matmul(n=n, reps=reps, n_slaves_hint=n_slaves)
    loads = {0: OscillatingLoad(k=1, period=period, duration=duration)}
    recorder = Recorder()
    res = run_point(
        plan, n_slaves, loads=loads, trace=True, seed=seed, recorder=recorder
    )
    trace = res.trace
    raw_t, raw_v = trace.series("raw_rate[0]")
    adj_t, adj_v = trace.series("adjusted_rate[0]")
    work_t, work_v = trace.series("work[0]")

    max_rate = float(np.max(adj_v)) if adj_v.size else 1.0
    even_share = plan.unit_count / n_slaves
    return {
        "result": res,
        "elapsed": res.elapsed,
        "raw_rate": (raw_t, raw_v / max_rate if max_rate else raw_v),
        "adjusted_rate": (adj_t, adj_v / max_rate if max_rate else adj_v),
        "work": (work_t, work_v / even_share),
        "period": period,
        "duration": duration,
        "moves": res.log.moves_applied,
        "units_moved": res.log.units_moved,
        "report": res.make_report(),
    }


def tracking_lag(result: dict) -> dict:
    """Measure how the work assignment follows the load square wave.

    Returns the mean work level during loaded and unloaded half-periods
    (loaded halves must carry visibly less work) plus the estimated
    tracking lag: the shift of the work series that best anti-correlates
    it with the load square wave.  The paper reports a lag of about two
    load-balancing periods (one to respond, one from pipelined
    master-slave interaction).
    """
    work_t, work_v = result["work"]
    period, duration = result["period"], result["duration"]
    loaded, unloaded = [], []
    for t, w in zip(work_t, work_v):
        # Skip the first half-period (startup) and classify with a lag
        # allowance of one balancing period (~1 s) after each edge.
        if t < duration / 2:
            continue
        phase = t % period
        if 2.0 < phase < duration:
            loaded.append(w)
        elif phase > duration + 2.0:
            unloaded.append(w)
    mean_loaded = float(np.mean(loaded)) if loaded else float("nan")
    mean_unloaded = float(np.mean(unloaded)) if unloaded else float("nan")

    # Lag estimate: resample work onto a fine grid, correlate with the
    # negated load indicator at candidate shifts.
    lag = float("nan")
    if len(work_t) > 4:
        t_end = float(work_t[-1])
        grid = np.arange(duration, t_end, 0.25)
        idx = np.searchsorted(work_t, grid, side="right") - 1
        series = work_v[np.clip(idx, 0, len(work_v) - 1)]
        series = series - series.mean()
        best = None
        for shift in np.arange(0.0, period / 2, 0.25):
            load_sig = ((grid - shift) % period < duration).astype(float)
            load_sig -= load_sig.mean()
            denom = np.linalg.norm(load_sig) * np.linalg.norm(series)
            if denom <= 0:
                continue
            score = -float(load_sig @ series) / denom  # anti-correlation
            if best is None or score > best[0]:
                best = (score, float(shift))
        if best is not None:
            lag = best[1]
    return {
        "mean_work_loaded": mean_loaded,
        "mean_work_unloaded": mean_unloaded,
        "tracks_load": mean_loaded < mean_unloaded,
        "lag_seconds": lag,
    }
