"""Workstation CPU model with round-robin quantum scheduling.

Each processor hosts exactly one *application* task (a slave or the
master) plus ``K(t)`` CPU-bound competing tasks given by a
:class:`~repro.sim.load.LoadGenerator`.  The OS schedules all runnable
tasks round-robin with time quantum ``q``: within each cycle of length
``(K+1)*q`` the application runs for one quantum.  This staircase is
modelled analytically (no per-quantum events), so simulations stay cheap
while reproducing the paper's quantum-induced measurement noise: a burst
of computation shorter than a cycle observes a rate of either full speed
or zero depending on where it lands in the cycle (Section 4.3).

The model assumes competing tasks are pure CPU hogs: whenever ``K >= 1``
the CPU is fully busy, and every second not consumed by the application
is consumed by competitors.  That assumption makes exact ``getrusage``
style accounting possible (see :mod:`repro.sim.rusage`).
"""

from __future__ import annotations

import math

import numpy as np

from ..config import ProcessorSpec
from ..errors import SimulationError
from ..obs import NULL_RECORDER, Recorder
from .load import LoadGenerator, NoLoad

__all__ = ["Processor"]

_EPS = 1e-12


def _slot_cpu(u: float, q: float, cycle: float) -> float:
    """Application CPU accrued from local time 0 to ``u``.

    The application's slot is ``[0, q)`` of every ``cycle``-long period.
    """
    if u <= 0:
        return 0.0
    m, r = divmod(u, cycle)
    return m * q + min(r, q)


def _slot_advance(u0: float, cpu: float, q: float, cycle: float) -> float:
    """Earliest local time ``u1 >= u0`` at which the application has
    accrued ``cpu`` more CPU seconds than at ``u0``."""
    if cpu <= 0:
        return u0
    target = _slot_cpu(u0, q, cycle) + cpu
    m = math.floor(target / q + _EPS)
    rem = target - m * q
    if rem > _EPS * max(1.0, target):
        u1 = m * cycle + rem
    else:
        u1 = (m - 1) * cycle + q
    return max(u1, u0)


class Processor:
    """One workstation: speed, quantum scheduling, competing load, accounting."""

    __slots__ = (
        "pid",
        "spec",
        "load",
        "_obs",
        "_observe",
        "_unloaded",
        "_speed",
        "_busy_until",
        "app_cpu_total",
        "app_cpu_while_loaded",
    )

    def __init__(
        self,
        pid: int,
        spec: ProcessorSpec,
        load: LoadGenerator | None = None,
        recorder: Recorder | None = None,
    ):
        self.pid = pid
        self.spec = spec
        self.load = load if load is not None else NoLoad()
        self._obs = recorder if recorder is not None else NULL_RECORDER
        # Enabled-flag cached as a plain attribute: run_cpu is the
        # simulator's hottest call site and a bool load keeps the
        # disabled-observability cost at one branch.
        self._observe = self._obs.enabled
        # A generator that reports zero competing tasks forever (NoLoad,
        # ConstantLoad(k=0)) lets run_cpu skip the segment walk entirely:
        # with k == 0 the walk reduces to ``finish = t0 + cpu``.
        self._unloaded = (
            self.load.k_at(0.0) == 0 and math.isinf(self.load.next_change(0.0))
        )
        self._speed = spec.speed  # hot-path binding for run_ops callers
        self._busy_until = 0.0
        # Accounting (exact, accumulated as computation is performed).
        self.app_cpu_total = 0.0
        self.app_cpu_while_loaded = 0.0

    # ------------------------------------------------------------------
    # Pure queries (no accounting side effects)
    # ------------------------------------------------------------------

    def app_cpu_between(self, t0: float, t1: float) -> float:
        """CPU seconds the app task *would* accrue over ``[t0, t1]`` if it
        were runnable throughout."""
        if t1 < t0:
            raise SimulationError(f"interval reversed: [{t0}, {t1}]")
        total = 0.0
        t = t0
        while t < t1 - _EPS:
            seg_end = min(self.load.next_change(t), t1)
            k = self.load.k_at(t)
            total += self._segment_cpu(t, seg_end, k, self.load.segment_start(t))
            t = seg_end
        return total

    def _u(self, t: float, anchor: float) -> float:
        """Local cycle coordinate of absolute time ``t`` for a segment
        anchored at ``anchor``: the app's slot is ``[0, q)`` of every
        cycle, offset by the processor's phase."""
        return (t - anchor) + self.spec.phase

    def _segment_cpu(self, s0: float, s1: float, k: int, anchor: float) -> float:
        """App CPU within ``[s0, s1)`` of a constant-load segment that
        began at ``anchor`` (absolute-time round-robin anchoring: where
        the cycle stands does NOT depend on when the app asks for CPU)."""
        if k <= 0:
            return s1 - s0
        if self.spec.scheduler == "fair":
            return (s1 - s0) / (k + 1)
        q = self.spec.quantum
        cycle = (k + 1) * q
        u0 = self._u(s0, anchor)
        u1 = self._u(s1, anchor)
        return _slot_cpu(u1, q, cycle) - _slot_cpu(u0, q, cycle)

    def _segment_finish(self, s0: float, cpu: float, k: int, anchor: float) -> float:
        """Absolute time at which ``cpu`` app-CPU-seconds complete when
        computation starts at ``s0`` inside a segment anchored at
        ``anchor`` (ignores the segment end; caller bounds the result)."""
        if k <= 0:
            return s0 + cpu
        if self.spec.scheduler == "fair":
            return s0 + cpu * (k + 1)
        q = self.spec.quantum
        cycle = (k + 1) * q
        u0 = self._u(s0, anchor)
        u1 = _slot_advance(u0, cpu, q, cycle)
        return s0 + (u1 - u0)

    # ------------------------------------------------------------------
    # Computation with accounting
    # ------------------------------------------------------------------

    def run_ops(self, t0: float, ops: float) -> float:
        """Execute ``ops`` application operations starting at ``t0``.

        Returns the virtual finish time, accounting for competing load and
        quantum scheduling.  Also accumulates CPU usage for the rusage
        report.
        """
        return self.run_cpu(t0, ops / self.spec.speed)

    def run_cpu(self, t0: float, cpu: float) -> float:
        """Execute ``cpu`` seconds of app CPU starting at ``t0``."""
        if cpu < 0:
            raise SimulationError(f"negative cpu request: {cpu}")
        if t0 < self._busy_until - 1e-9:
            raise SimulationError(
                f"processor {self.pid}: overlapping compute requests "
                f"(t0={t0} < busy_until={self._busy_until})"
            )
        if self._unloaded:
            # Dedicated processor: identical arithmetic to one k=0 pass
            # of the segment walk below, without the generator calls.
            if cpu > _EPS * (cpu if cpu > 1.0 else 1.0):
                self.app_cpu_total += cpu
                t = t0 + cpu
            else:
                t = t0
            self._busy_until = t
            if self._observe and cpu > 0:
                self._obs.emit_span(
                    "cpu", "compute", t0, t, pid=self.pid, value=cpu
                )
                self._obs.metrics.counter("cpu.bursts").inc()
                self._obs.metrics.histogram("cpu.burst_s").observe(cpu)
            return t
        remaining = cpu
        t = t0
        # Walk constant-load segments.  The round-robin cycle is anchored
        # at each segment's absolute start time, so back-to-back short
        # compute requests see the scheduler rotation where it really is.
        while remaining > _EPS * max(1.0, cpu):
            seg_end = self.load.next_change(t)
            k = self.load.k_at(t)
            anchor = self.load.segment_start(t)
            finish = self._segment_finish(t, remaining, k, anchor)
            if finish <= seg_end + _EPS:
                got = remaining
                t_next = min(finish, seg_end)
                self._account(got, k)
                t = t_next
                remaining = 0.0
            else:
                got = self._segment_cpu(t, seg_end, k, anchor)
                self._account(got, k)
                remaining -= got
                t = seg_end
            if math.isinf(t):  # pragma: no cover - defensive
                raise SimulationError("computation never completes")
        self._busy_until = t
        if self._observe and cpu > 0:
            self._obs.emit_span(
                "cpu", "compute", t0, t, pid=self.pid, value=cpu
            )
            self._obs.metrics.counter("cpu.bursts").inc()
            self._obs.metrics.histogram("cpu.burst_s").observe(cpu)
        return t

    def _account(self, cpu: float, k: int) -> None:
        self.app_cpu_total += cpu
        if k >= 1:
            self.app_cpu_while_loaded += cpu

    # ------------------------------------------------------------------
    # Vectorized batch advance (dedicated processors, unobserved)
    # ------------------------------------------------------------------
    #
    # For an unloaded processor, run_cpu degenerates to sequential float
    # addition: each segment with cpu > _EPS advances the clock and the
    # accounting by exactly cpu.  np.cumsum evaluates the same left-to-
    # right addition chain in C, so a whole vector of segments can be
    # advanced in one array pass with bit-identical results (guarded by
    # the engine-equivalence property suite).  Loaded or observed
    # processors fall back to per-segment run_cpu at the call site —
    # span emission and the staircase walk are inherently sequential.

    def batch_eligible(self) -> bool:
        """True when ``run_cpu_batch`` may replace sequential ``run_cpu``."""
        return self._unloaded and not self._observe

    def batch_finish(self, t0: float, cpu: np.ndarray) -> float:
        """Pure query: finish time of running ``cpu`` segments from ``t0``.

        Bit-identical to folding ``run_cpu`` over the segments on an
        unloaded processor (tiny segments below the accounting epsilon
        advance nothing, exactly like run_cpu's dedicated fast path).
        """
        big = cpu[cpu > _EPS]
        if not big.size:
            return t0
        acc = np.empty(big.size + 1)
        acc[0] = t0
        acc[1:] = big
        return float(np.cumsum(acc)[-1])

    def run_cpu_batch(self, t0: float, cpu: np.ndarray) -> float:
        """Execute a vector of compute segments starting at ``t0``.

        Requires :meth:`batch_eligible`; performs the same validation,
        accounting and ``_busy_until`` updates as the equivalent
        sequence of :meth:`run_cpu` calls and returns the final finish
        time.
        """
        if cpu.size and float(cpu.min()) < 0:
            raise SimulationError(
                f"negative cpu request: {float(cpu.min())}"
            )
        if t0 < self._busy_until - 1e-9:
            raise SimulationError(
                f"processor {self.pid}: overlapping compute requests "
                f"(t0={t0} < busy_until={self._busy_until})"
            )
        big = cpu[cpu > _EPS]
        if not big.size:
            self._busy_until = t0
            return t0
        acc = np.empty(big.size + 1)
        acc[1:] = big
        acc[0] = t0
        t = float(np.cumsum(acc)[-1])
        acc[0] = self.app_cpu_total
        self.app_cpu_total = float(np.cumsum(acc)[-1])
        self._busy_until = t
        return t

    # ------------------------------------------------------------------
    # Accounting queries
    # ------------------------------------------------------------------

    def competing_cpu(self, t_end: float, t_start: float = 0.0) -> float:
        """Total CPU consumed by competing tasks over ``[t_start, t_end]``.

        Exact under the CPU-hog assumption: every loaded second not spent
        on the app goes to competitors.  Only valid for the full run
        window that accounting covered (``t_start`` defaults to 0).
        """
        busy = self.load.competing_busy_time(t_start, t_end)
        return max(0.0, busy - self.app_cpu_while_loaded)

    def effective_rate(self, t: float, window: float = 1.0) -> float:
        """Average ops/sec available to the app around time ``t`` (query
        helper for traces; no accounting)."""
        cpu = self.app_cpu_between(t, t + window)
        return cpu / window * self.spec.speed
