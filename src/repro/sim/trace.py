"""Time-series recording for experiment figures.

A :class:`Trace` is a set of named channels, each a list of
``(time, value)`` samples, convertible to NumPy arrays.  Used to produce
the Figure 9 series (raw rate, filtered rate, work assignment vs time).

Since the structured observability layer (:mod:`repro.obs`) became the
emission path, a ``Trace`` is a *derived view*: the launcher builds one
from the run's counter events via :meth:`Trace.from_events`, preserving
the legacy channel names (``raw_rate[p]``, ``adjusted_rate[p]``,
``work[p]``) that the figure drivers consume.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

from ..errors import SimulationError
from ..obs.model import CounterEvent, Event

__all__ = ["Trace"]

# Counter-event names mirrored into legacy per-slave channels.
_CHANNEL_NAMES = ("raw_rate", "adjusted_rate", "work")


class Trace:
    """Named append-only time-series channels."""

    def __init__(self) -> None:
        self._channels: dict[str, list[tuple[float, float]]] = defaultdict(list)

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "Trace":
        """Build the legacy channel view from observability events.

        Counter events named ``raw_rate``/``adjusted_rate``/``work``
        become channels ``name[pid]``; everything else is ignored.
        """
        trace = cls()
        for event in events:
            if isinstance(event, CounterEvent) and event.name in _CHANNEL_NAMES:
                trace.record(f"{event.name}[{event.pid}]", event.t, event.value)
        return trace

    def record(self, channel: str, t: float, value: float) -> None:
        """Append one sample to ``channel``."""
        self._channels[channel].append((t, float(value)))

    def channels(self) -> Iterable[str]:
        """Names of all channels recorded so far."""
        return sorted(self._channels)

    def __contains__(self, channel: str) -> bool:
        return channel in self._channels

    def series(self, channel: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays for ``channel``.

        Raises ``KeyError`` for unknown channels.
        """
        if channel not in self._channels:
            raise KeyError(channel)
        samples = self._channels[channel]
        if not samples:
            return np.empty(0), np.empty(0)
        arr = np.asarray(samples, dtype=float)
        return arr[:, 0], arr[:, 1]

    def last(self, channel: str) -> tuple[float, float]:
        """Most recent ``(time, value)`` sample of ``channel``."""
        samples = self._channels[channel]
        if not samples:
            raise KeyError(f"channel {channel!r} is empty")
        return samples[-1]

    def value_at(self, channel: str, t: float) -> float:
        """Step-interpolated value of ``channel`` at time ``t``."""
        times, values = self.series(channel)
        if times.size == 0:
            raise KeyError(f"channel {channel!r} is empty")
        idx = int(np.searchsorted(times, t, side="right")) - 1
        if idx < 0:
            raise SimulationError(f"time {t} precedes first sample of {channel!r}")
        return float(values[idx])
