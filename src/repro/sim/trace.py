"""Time-series recording for experiment figures.

A :class:`Trace` is a set of named channels, each a list of
``(time, value)`` samples, convertible to NumPy arrays.  Used to produce
the Figure 9 series (raw rate, filtered rate, work assignment vs time).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

__all__ = ["Trace"]


class Trace:
    """Named append-only time-series channels."""

    def __init__(self) -> None:
        self._channels: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def record(self, channel: str, t: float, value: float) -> None:
        """Append one sample to ``channel``."""
        self._channels[channel].append((t, float(value)))

    def channels(self) -> Iterable[str]:
        """Names of all channels recorded so far."""
        return sorted(self._channels)

    def __contains__(self, channel: str) -> bool:
        return channel in self._channels

    def series(self, channel: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays for ``channel``.

        Raises ``KeyError`` for unknown channels.
        """
        if channel not in self._channels:
            raise KeyError(channel)
        samples = self._channels[channel]
        if not samples:
            return np.empty(0), np.empty(0)
        arr = np.asarray(samples, dtype=float)
        return arr[:, 0], arr[:, 1]

    def last(self, channel: str) -> tuple[float, float]:
        """Most recent ``(time, value)`` sample of ``channel``."""
        samples = self._channels[channel]
        if not samples:
            raise KeyError(f"channel {channel!r} is empty")
        return samples[-1]

    def value_at(self, channel: str, t: float) -> float:
        """Step-interpolated value of ``channel`` at time ``t``."""
        times, values = self.series(channel)
        if times.size == 0:
            raise KeyError(f"channel {channel!r} is empty")
        idx = int(np.searchsorted(times, t, side="right")) - 1
        if idx < 0:
            raise ValueError(f"time {t} precedes first sample of {channel!r}")
        return float(values[idx])
