"""Cluster: processors + network + task scheduler on one event engine.

This is the top of the simulator substrate.  It launches application
tasks (generator functions), satisfies their syscalls, and provides
run-level accounting.
"""

from __future__ import annotations

import math
from heapq import heappush
from typing import Any, Callable, Generator, Iterable

import numpy as np

from ..config import ClusterSpec
from ..errors import DeadlockError, SimulationError
from ..fastcopy import PASSTHROUGH, payload_copier
from ..faults.injector import FaultInjector
from ..obs import NULL_RECORDER, Recorder
from .engine import BatchEngine, Engine
from .events import Message
from .load import LoadGenerator, NoLoad
from .network import Fabric, Mailbox, build_topology, snapshot_payload
from .process import Compute, ComputeBatch, Now, Poll, Recv, Send, Sleep
from .processor import Processor
from .rusage import RusageReport, TaskUsage

__all__ = ["Cluster", "TaskContext"]

TaskFn = Callable[..., Generator[Any, Any, Any]]


def _tag_class(tag: str) -> str:
    """Coarse message class for metrics: the paper's overhead categories."""
    if tag == "lb.status":
        return "status"
    if tag in ("lb.instr", "lb.start"):
        return "instr"
    if tag.startswith("lb.move."):
        return "move"
    if tag == "lb.ckpt":
        return "ckpt"
    if tag.startswith("app."):
        return "app"
    if tag.startswith("sc."):
        return "scale"
    if tag.startswith("st."):
        return "steal"
    if tag.startswith("rb."):
        return "robust"
    return "other"


class TaskContext:
    """Handle given to every task; identifies it and exposes the cluster."""

    # ``core`` is attached by the slave runtime (diagnostics hook);
    # ``obs`` stays a property so the recorder has one owner.
    __slots__ = ("cluster", "pid", "core")

    def __init__(self, cluster: "Cluster", pid: int):
        self.cluster = cluster
        self.pid = pid

    @property
    def n_slaves(self) -> int:
        return self.cluster.spec.n_slaves

    @property
    def master_pid(self) -> int:
        return self.cluster.spec.master_pid

    @property
    def now(self) -> float:
        return self.cluster.engine._now

    @property
    def obs(self) -> Recorder:
        """The cluster's observability recorder (never ``None``)."""
        return self.cluster.obs

    def __repr__(self) -> str:
        return f"TaskContext(pid={self.pid})"


class _Task:
    # ``last_msg`` is the batch engine's message-recycle anchor: the
    # shell most recently handed to this task, returned to the pool when
    # the task's next receive completes (see repro.sim.events.Message).
    __slots__ = (
        "pid", "gen", "done", "blocked_on", "finish_time", "name", "last_msg"
    )

    def __init__(self, pid: int, gen: Generator[Any, Any, Any], name: str):
        self.pid = pid
        self.gen = gen
        self.done = False
        self.blocked_on: tuple[int | None, str | None] | None = None
        self.finish_time: float | None = None
        self.name = name
        self.last_msg: Message | None = None


class Cluster:
    """A simulated network of workstations.

    One application task may run per processor.  Processor ids
    ``0..n_slaves-1`` are the slaves; ``n_slaves`` is the master (see
    :class:`repro.config.ClusterSpec`).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        loads: dict[int, LoadGenerator] | None = None,
        recorder: Recorder | None = None,
        injector: FaultInjector | None = None,
        fabric_attach: dict[int, int] | None = None,
        engine: str = "auto",
    ):
        if engine not in ("auto", "reference", "batch"):
            raise SimulationError(
                f"unknown engine mode {engine!r}; "
                "choices: auto, reference, batch"
            )
        self.spec = spec
        self.obs = recorder if recorder is not None else NULL_RECORDER
        # Engine-mode resolution: the batch core runs whenever no fault
        # injector is armed.  Injection always defers to the reference
        # path — stall clamping and per-copy transmission fates must
        # hook every resume and every wire crossing — so an armed
        # injector forces ``reference`` even when ``batch`` was asked
        # for explicitly.
        use_batch = injector is None and engine != "reference"
        self.engine_mode = "batch" if use_batch else "reference"
        self.engine = BatchEngine(self.obs) if use_batch else Engine(self.obs)
        loads = dict(loads or {})
        for pid in loads:
            if not 0 <= pid < spec.n_processors:
                raise SimulationError(f"load assigned to unknown processor {pid}")
        self.processors: list[Processor] = [
            Processor(pid, spec.spec_for(pid), loads.get(pid, NoLoad()), self.obs)
            for pid in range(spec.n_processors)
        ]
        self.mailboxes: list[Mailbox] = [
            Mailbox(pid, self.obs) for pid in range(spec.n_processors)
        ]
        self._tasks: dict[int, _Task] = {}
        # Hot-path bindings: the network spec and its per-message CPU
        # charges are resolved once instead of three attribute hops per
        # send/recv.
        self._net = spec.network
        self._send_cpu = spec.network.send_cpu
        self._recv_cpu = spec.network.recv_cpu
        self._net_latency = spec.network.latency
        self._net_bandwidth = spec.network.bandwidth
        self._n_procs = spec.n_processors  # property resolved once
        # Optional interconnect topology: None keeps the legacy crossbar
        # arithmetic below byte-identical; a fabric reprices arrivals
        # over explicit routed links (see repro.sim.network.Fabric).
        self._fabric = None
        if spec.topology is not None:
            members = spec.topology.n_members or spec.n_slaves
            self._fabric = Fabric(
                build_topology(spec.topology, members, spec.network),
                spec.network,
                fabric_attach,
            )
        # Pre-bound callbacks: scheduling happens once or more per event,
        # so the bound-method allocation and attribute hops add up.
        self._call_at = self.engine.call_at
        self._step_cb = self._step
        self._observe = self.obs.enabled
        # Per-instance copy of the syscall dispatch table (batch variants
        # on the batch engine, fast variants unless fault injection needs
        # stall clamping on every resume); subclassed syscalls get cached
        # into it by _resolve_syscall.
        if use_batch:
            self._handlers = dict(_SYSCALLS_BATCH)
        elif injector is not None:
            self._handlers = dict(_SYSCALLS_SAFE)
        else:
            self._handlers = dict(_SYSCALLS_FAST)
        self._handlers_bases = tuple(self._handlers.items())
        self._deliver_cb = self._batch_deliver if use_batch else self._deliver
        # ComputeBatch chains schedule themselves by mode-specific
        # continuation callbacks; pre-bound like _step_cb.
        self._chain_safe_cb = self._do_batch_chain
        self._chain_fast_cb = self._fast_batch_chain
        self._chain_batch_cb = self._batch_chain
        self._batch_advance_cb = self._batch_advance
        # Message-shell freelist (batch engine only; see Message.fill).
        self._msg_pool: list[Message] = []
        # Delivery can hand a message straight to a blocked receiver and
        # push the resume onto the heap directly only when no injector
        # needs stall clamping and no observer needs true queue depths.
        self._fastpath = injector is None and not self._observe
        self.message_count = 0
        self.bytes_sent = 0
        self.retransmits = 0
        self.messages_lost = 0
        self.injector = injector
        self._dead: set[int] = set()
        self._send_seq: dict[tuple[int, int], int] = {}
        self._seen_seq: dict[int, set[tuple[int, int]]] = {}
        if injector is not None:
            injector.plan.validate_for(spec.n_slaves)
            for pid, t in injector.crash_times():
                self.engine.call_at(t, self._crash, pid)
        if self.obs.enabled:
            # Per-message CPU costs, so reports can price interaction
            # overhead without importing the runtime config.
            self.obs.metrics.gauge("net.send_cpu_per_msg").set(spec.network.send_cpu)
            self.obs.metrics.gauge("net.recv_cpu_per_msg").set(spec.network.recv_cpu)
            self.obs.metrics.gauge("cluster.n_slaves").set(float(spec.n_slaves))

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------

    def spawn(self, pid: int, fn: TaskFn, *args: Any, **kwargs: Any) -> TaskContext:
        """Launch task ``fn(ctx, *args, **kwargs)`` on processor ``pid``."""
        if not 0 <= pid < self.spec.n_processors:
            raise SimulationError(f"no such processor: {pid}")
        if pid in self._tasks:
            raise SimulationError(f"processor {pid} already has a task")
        ctx = TaskContext(self, pid)
        gen = fn(ctx, *args, **kwargs)
        task = _Task(pid, gen, getattr(fn, "__name__", "task"))
        self._tasks[pid] = task
        self._resume_later(self.engine._now, task, None)
        return ctx

    def task_finish_time(self, pid: int) -> float:
        """Virtual time at which the task on ``pid`` completed."""
        task = self._tasks.get(pid)
        if task is None or task.finish_time is None:
            raise SimulationError(f"task on processor {pid} has not finished")
        return task.finish_time

    @property
    def dead_pids(self) -> frozenset[int]:
        """Processors whose hosts crashed under fault injection."""
        return frozenset(self._dead)

    # ------------------------------------------------------------------
    # Scheduler core
    # ------------------------------------------------------------------

    def _resume_later(self, t: float, task: _Task, value: Any) -> None:
        injector = self.injector
        if injector is not None:
            # A stalled host makes no progress: resumes that land inside
            # a stall window slide to the window's end.
            t = injector.stall_clamp(task.pid, t)
        self._call_at(t, self._step_cb, task, value)

    def _step(self, task: _Task, value: Any) -> None:
        if task.pid in self._dead:
            return  # crashed host: the task never runs again
        if task.done:  # pragma: no cover - defensive
            raise SimulationError(f"resuming finished task on {task.pid}")
        try:
            req = task.gen.send(value)
        except StopIteration:
            task.done = True
            task.finish_time = self.engine._now
            return
        handler = self._handlers.get(req.__class__)
        if handler is None:
            handler = self._resolve_syscall(req, task)
        handler(self, task, req)

    def _resolve_syscall(
        self, req: Any, task: _Task
    ) -> "Callable[[Cluster, _Task, Any], None]":
        """Dispatch slow path: subclassed syscalls keep their isinstance
        semantics (and are cached by concrete type); anything else is the
        unknown-syscall error."""
        for base, handler in self._handlers_bases:
            if isinstance(req, base):
                self._handlers[req.__class__] = handler
                return handler
        raise SimulationError(f"unknown syscall from task {task.pid}: {req!r}")

    # Per-syscall handlers, dispatched by concrete request type.  Two
    # variants exist per syscall: the ``_do_*`` handlers route resumes
    # through ``_resume_later`` (fault-injection stall clamping), while
    # the ``_fast_*`` handlers — installed when no injector is present —
    # schedule straight on the engine, skipping a call layer per event.
    # Splitting the isinstance ladder keeps each resume to one dict
    # lookup either way.

    def _do_compute(self, task: _Task, req: Compute) -> None:
        if req.fn is not None:
            req.fn()
        finish = self.processors[task.pid].run_ops(self.engine._now, req.ops)
        self._resume_later(finish, task, None)

    def _do_recv(self, task: _Task, req: Recv) -> None:
        msg = self.mailboxes[task.pid].take(req.src, req.tag)
        if msg is not None:
            finish = self.processors[task.pid].run_cpu(
                self.engine._now, self._recv_cpu
            )
            self._resume_later(finish, task, msg)
        else:
            task.blocked_on = (req.src, req.tag)

    def _do_poll(self, task: _Task, req: Poll) -> None:
        now = self.engine._now
        msg = self.mailboxes[task.pid].take(req.src, req.tag)
        if msg is not None:
            finish = self.processors[task.pid].run_cpu(now, self._recv_cpu)
            self._resume_later(finish, task, msg)
        else:
            self._resume_later(now, task, None)

    def _do_sleep(self, task: _Task, req: Sleep) -> None:
        if req.dt < 0:
            raise SimulationError(f"negative sleep: {req.dt}")
        self._resume_later(self.engine._now + req.dt, task, None)

    def _do_now(self, task: _Task, _req: Now) -> None:
        now = self.engine._now
        self._resume_later(now, task, now)

    # ComputeBatch: semantically a chain of Compute yields without the
    # per-segment generator resume.  Each engine mode runs the chain as
    # a sequence of continuation events so virtual times, accounting,
    # spans, and the per-segment event count are identical to the
    # equivalent Compute chain; the batch engine additionally collapses
    # the chain into one vectorized advance when it provably owns the
    # whole time window (see _batch_advance).

    @staticmethod
    def _check_batch(req: ComputeBatch) -> int:
        n = len(req.ops)
        if req.fns is not None and len(req.fns) != n:
            raise SimulationError(
                f"ComputeBatch: fns length {len(req.fns)} != ops length {n}"
            )
        return n

    def _do_compute_batch(self, task: _Task, req: ComputeBatch) -> None:
        if self._check_batch(req) == 0:
            self._resume_later(self.engine._now, task, None)
            return
        self._do_batch_chain(task, req.ops, req.fns, 0)

    def _do_batch_chain(
        self, task: _Task, ops: Any, fns: Any, idx: int
    ) -> None:
        if task.pid in self._dead:
            return  # crashed host: the chain never continues
        if fns is not None:
            fn = fns[idx]
            if fn is not None:
                fn()
        finish = self.processors[task.pid].run_ops(self.engine._now, ops[idx])
        idx += 1
        if idx == len(ops):
            self._resume_later(finish, task, None)
            return
        injector = self.injector
        if injector is not None:
            finish = injector.stall_clamp(task.pid, finish)
        self._call_at(finish, self._chain_safe_cb, task, ops, fns, idx)

    # The fast handlers push heap entries directly instead of going
    # through Engine.call_at: every scheduled time below is computed
    # from ``now`` plus a non-negative, non-NaN increment (run_cpu
    # validates its inputs), so call_at's past/NaN guards cannot fire.
    # The entry layout must match Engine's ``(t, seq, fn, args)``.

    def _fast_compute(self, task: _Task, req: Compute) -> None:
        if req.fn is not None:
            req.fn()
        proc = self.processors[task.pid]
        eng = self.engine
        finish = proc.run_cpu(eng._now, req.ops / proc._speed)
        heappush(eng._heap, (finish, eng._seq, self._step_cb, (task, None)))
        eng._seq += 1

    def _fast_recv(self, task: _Task, req: Recv) -> None:
        box = self.mailboxes[task.pid]
        # Skip the take() call for an empty queue — the common case when
        # receivers block ahead of arrivals.
        msg = box.take(req.src, req.tag) if box._queue else None
        if msg is not None:
            eng = self.engine
            finish = self.processors[task.pid].run_cpu(eng._now, self._recv_cpu)
            heappush(eng._heap, (finish, eng._seq, self._step_cb, (task, msg)))
            eng._seq += 1
        else:
            task.blocked_on = (req.src, req.tag)

    def _fast_poll(self, task: _Task, req: Poll) -> None:
        eng = self.engine
        now = eng._now
        box = self.mailboxes[task.pid]
        msg = box.take(req.src, req.tag) if box._queue else None
        if msg is not None:
            finish = self.processors[task.pid].run_cpu(now, self._recv_cpu)
            heappush(eng._heap, (finish, eng._seq, self._step_cb, (task, msg)))
        else:
            heappush(eng._heap, (now, eng._seq, self._step_cb, (task, None)))
        eng._seq += 1

    def _fast_sleep(self, task: _Task, req: Sleep) -> None:
        # Sleeps are rare and ``dt`` is caller-supplied: keep call_at's
        # validation.
        dt = req.dt
        if dt < 0:
            raise SimulationError(f"negative sleep: {dt}")
        self._call_at(self.engine._now + dt, self._step_cb, task, None)

    def _fast_now(self, task: _Task, _req: Now) -> None:
        eng = self.engine
        now = eng._now
        heappush(eng._heap, (now, eng._seq, self._step_cb, (task, now)))
        eng._seq += 1

    def _fast_compute_batch(self, task: _Task, req: ComputeBatch) -> None:
        if self._check_batch(req) == 0:
            eng = self.engine
            heappush(
                eng._heap, (eng._now, eng._seq, self._step_cb, (task, None))
            )
            eng._seq += 1
            return
        self._fast_batch_chain(task, req.ops, req.fns, 0)

    def _fast_batch_chain(
        self, task: _Task, ops: Any, fns: Any, idx: int
    ) -> None:
        if fns is not None:
            fn = fns[idx]
            if fn is not None:
                fn()
        proc = self.processors[task.pid]
        eng = self.engine
        finish = proc.run_cpu(eng._now, ops[idx] / proc._speed)
        idx += 1
        if idx == len(ops):
            heappush(eng._heap, (finish, eng._seq, self._step_cb, (task, None)))
        else:
            heappush(
                eng._heap,
                (finish, eng._seq, self._chain_fast_cb, (task, ops, fns, idx)),
            )
        eng._seq += 1

    def _fast_send(self, task: _Task, req: Send) -> None:
        if not 0 <= req.dst < self._n_procs:
            raise SimulationError(f"send to unknown processor {req.dst}")
        nbytes = req.nbytes
        eng = self.engine
        cpu_done = self.processors[task.pid].run_cpu(eng._now, self._send_cpu)
        # Inlined snapshot_payload dispatch: immutable payloads (the
        # common case for control traffic) skip both call layers.
        payload = req.payload
        copier = payload_copier(payload.__class__)
        if copier is not PASSTHROUGH:
            payload = copier(payload)
        msg = Message(task.pid, req.dst, req.tag, payload, nbytes, cpu_done)
        if self._fabric is None:
            # Inlined NetworkSpec.transfer_time; the parentheses keep the
            # float summation order (and thus traces) bit-identical.
            arrival = cpu_done + (self._net_latency + nbytes / self._net_bandwidth)
        else:
            arrival = self._fabric.arrival(task.pid, req.dst, nbytes, cpu_done)
        self.message_count += 1
        self.bytes_sent += nbytes
        if self._observe:
            kind = _tag_class(req.tag)
            self.obs.metrics.counter(f"net.msgs.{kind}").inc()
            self.obs.metrics.counter(f"net.bytes.{kind}").inc(nbytes)
            self.obs.metrics.counter("net.msgs_total").inc()
            self.obs.metrics.counter("net.bytes_total").inc(nbytes)
        seq = eng._seq
        heap = eng._heap
        heappush(heap, (arrival, seq, self._deliver_cb, (msg,)))
        heappush(heap, (cpu_done, seq + 1, self._step_cb, (task, None)))
        eng._seq = seq + 2

    # ------------------------------------------------------------------
    # Batch-engine syscall handlers
    # ------------------------------------------------------------------
    #
    # Installed when the cluster runs on a BatchEngine (no injector).
    # Three changes over the fast handlers, none observable:
    #
    # - heap entries come from the engine's freelist (mutable 4-slot
    #   lists; the drain loop recycles them), so the steady-state event
    #   path allocates no entry objects;
    # - Message shells are recycled through ``_msg_pool`` under the
    #   contract documented on :class:`repro.sim.events.Message`;
    # - consecutive compute segments are advanced without a heap round
    #   trip (``_batch_compute`` trampoline) or in one numpy pass
    #   (``_batch_advance``) when the segment finish is *strictly*
    #   earlier than every pending event and inside the run window —
    #   exactly the condition under which the reference engine would
    #   pop the segment's resume next, alone, so event order (and with
    #   it every trace byte) is preserved by construction.

    def _batch_compute(self, task: _Task, req: Compute) -> None:
        proc = self.processors[task.pid]
        eng = self.engine
        heap = eng._heap
        until = eng._until
        step_cb = self._step_cb
        inline = 0
        while True:
            if req.fn is not None:
                req.fn()
            finish = proc.run_cpu(eng._now, req.ops / proc._speed)
            if finish > until or (heap and heap[0][0] <= finish):
                # Not provably next: take the heap round trip.
                pool = eng._pool
                if pool:
                    entry = pool.pop()
                    entry[0] = finish
                    entry[1] = eng._seq
                    entry[2] = step_cb
                    entry[3] = (task, None)
                else:
                    entry = [finish, eng._seq, step_cb, (task, None)]
                heappush(heap, entry)
                eng._seq += 1
                break
            # This resume is strictly the earliest pending event in the
            # run window: fire it inline (identical to push + pop).
            eng._now = finish
            inline += 1
            try:
                req = task.gen.send(None)
            except StopIteration:
                task.done = True
                task.finish_time = finish
                break
            if req.__class__ is Compute:
                continue
            eng._inline += inline
            handler = self._handlers.get(req.__class__)
            if handler is None:
                handler = self._resolve_syscall(req, task)
            handler(self, task, req)
            return
        eng._inline += inline

    def _batch_compute_batch(self, task: _Task, req: ComputeBatch) -> None:
        if self._check_batch(req) == 0:
            eng = self.engine
            self._batch_push(eng, eng._now, self._step_cb, (task, None))
            return
        self._batch_advance(task, req.ops, req.fns, 0)

    def _batch_advance(
        self, task: _Task, ops: Any, fns: Any, idx: int
    ) -> None:
        """Run ComputeBatch segments ``idx..n-1``; vectorize when safe.

        The one-shot numpy advance fires only when the remaining
        segments carry no eager kernels, the processor is dedicated and
        unobserved, and the whole tail finishes strictly before every
        pending event (and inside the run window) — the window in which
        the reference engine would fire the tail's resumes next, with
        nothing interleaved.  Otherwise one segment runs and the tail
        re-enters through a continuation event, retrying the vectorized
        path at every link (the contended window may have drained).
        """
        eng = self.engine
        proc = self.processors[task.pid]
        heap = eng._heap
        if fns is None and proc._unloaded and not self._observe:
            cpu = np.asarray(ops[idx:], dtype=np.float64) / proc._speed
            finish = proc.batch_finish(eng._now, cpu)
            if finish <= eng._until and (not heap or heap[0][0] > finish):
                proc.run_cpu_batch(eng._now, cpu)
                # n-idx segment events: (n-idx-1) advanced analytically
                # plus the final resume, which stays a real heap event.
                eng._inline += len(cpu) - 1
                self._batch_push(eng, finish, self._step_cb, (task, None))
                return
        self._batch_chain(task, ops, fns, idx)

    def _batch_chain(self, task: _Task, ops: Any, fns: Any, idx: int) -> None:
        if fns is not None:
            fn = fns[idx]
            if fn is not None:
                fn()
        eng = self.engine
        proc = self.processors[task.pid]
        finish = proc.run_cpu(eng._now, ops[idx] / proc._speed)
        idx += 1
        if idx == len(ops):
            self._batch_push(eng, finish, self._step_cb, (task, None))
        elif fns is None:
            # Re-try the vectorized tail once the clock reaches finish.
            self._batch_push(
                eng, finish, self._batch_advance_cb, (task, ops, fns, idx)
            )
        else:
            self._batch_push(
                eng, finish, self._chain_batch_cb, (task, ops, fns, idx)
            )

    @staticmethod
    def _batch_push(
        eng: Engine, t: float, fn: Callable[..., None], args: tuple[Any, ...]
    ) -> None:
        """Push a pooled heap entry (batch engine; ``t`` is >= now)."""
        pool = eng._pool
        if pool:
            entry = pool.pop()
            entry[0] = t
            entry[1] = eng._seq
            entry[2] = fn
            entry[3] = args
        else:
            entry = [t, eng._seq, fn, args]
        heappush(eng._heap, entry)
        eng._seq += 1

    def _batch_recv(self, task: _Task, req: Recv) -> None:
        box = self.mailboxes[task.pid]
        msg = box.take(req.src, req.tag) if box._size else None
        if msg is not None:
            eng = self.engine
            finish = self.processors[task.pid].run_cpu(eng._now, self._recv_cpu)
            prev = task.last_msg
            if prev is not None:
                prev.payload = None
                self._msg_pool.append(prev)
            task.last_msg = msg
            pool = eng._pool
            seq = eng._seq
            if pool:
                entry = pool.pop()
                entry[0] = finish
                entry[1] = seq
                entry[2] = self._step_cb
                entry[3] = (task, msg)
            else:
                entry = [finish, seq, self._step_cb, (task, msg)]
            heappush(eng._heap, entry)
            eng._seq = seq + 1
        else:
            task.blocked_on = (req.src, req.tag)

    def _batch_poll(self, task: _Task, req: Poll) -> None:
        eng = self.engine
        now = eng._now
        box = self.mailboxes[task.pid]
        msg = box.take(req.src, req.tag) if box._size else None
        if msg is not None:
            finish = self.processors[task.pid].run_cpu(now, self._recv_cpu)
            prev = task.last_msg
            if prev is not None:
                prev.payload = None
                self._msg_pool.append(prev)
            task.last_msg = msg
            self._batch_push(eng, finish, self._step_cb, (task, msg))
        else:
            self._batch_push(eng, now, self._step_cb, (task, None))

    def _batch_sleep(self, task: _Task, req: Sleep) -> None:
        dt = req.dt
        if dt < 0:
            raise SimulationError(f"negative sleep: {dt}")
        self._call_at(self.engine._now + dt, self._step_cb, task, None)

    def _batch_now(self, task: _Task, _req: Now) -> None:
        eng = self.engine
        now = eng._now
        pool = eng._pool
        seq = eng._seq
        if pool:
            entry = pool.pop()
            entry[0] = now
            entry[1] = seq
            entry[2] = self._step_cb
            entry[3] = (task, now)
        else:
            entry = [now, seq, self._step_cb, (task, now)]
        heappush(eng._heap, entry)
        eng._seq = seq + 1

    def _batch_send(self, task: _Task, req: Send) -> None:
        if not 0 <= req.dst < self._n_procs:
            raise SimulationError(f"send to unknown processor {req.dst}")
        nbytes = req.nbytes
        eng = self.engine
        cpu_done = self.processors[task.pid].run_cpu(eng._now, self._send_cpu)
        payload = req.payload
        copier = payload_copier(payload.__class__)
        if copier is not PASSTHROUGH:
            payload = copier(payload)
        mpool = self._msg_pool
        if mpool:
            msg = mpool.pop().fill(
                task.pid, req.dst, req.tag, payload, nbytes, cpu_done
            )
        else:
            msg = Message(task.pid, req.dst, req.tag, payload, nbytes, cpu_done)
        if self._fabric is None:
            # Inlined NetworkSpec.transfer_time; the parentheses keep the
            # float summation order (and thus traces) bit-identical.
            arrival = cpu_done + (self._net_latency + nbytes / self._net_bandwidth)
        else:
            arrival = self._fabric.arrival(task.pid, req.dst, nbytes, cpu_done)
        self.message_count += 1
        self.bytes_sent += nbytes
        if self._observe:
            kind = _tag_class(req.tag)
            self.obs.metrics.counter(f"net.msgs.{kind}").inc()
            self.obs.metrics.counter(f"net.bytes.{kind}").inc(nbytes)
            self.obs.metrics.counter("net.msgs_total").inc()
            self.obs.metrics.counter("net.bytes_total").inc(nbytes)
        heap = eng._heap
        pool = eng._pool
        seq = eng._seq
        if pool:
            entry = pool.pop()
            entry[0] = arrival
            entry[1] = seq
            entry[2] = self._deliver_cb
            entry[3] = (msg,)
        else:
            entry = [arrival, seq, self._deliver_cb, (msg,)]
        heappush(heap, entry)
        if pool:
            entry = pool.pop()
            entry[0] = cpu_done
            entry[1] = seq + 1
            entry[2] = self._step_cb
            entry[3] = (task, None)
        else:
            entry = [cpu_done, seq + 1, self._step_cb, (task, None)]
        heappush(heap, entry)
        eng._seq = seq + 2

    def _batch_deliver(self, msg: Message) -> None:
        # No seq-dedupe branch: the batch engine never runs with a fault
        # injector, so messages are always unsequenced (seq == -1).
        eng = self.engine
        now = eng._now
        msg.t_arrived = now
        dst_task = self._tasks.get(msg.dst)
        if dst_task is not None and dst_task.blocked_on is not None:
            if not self._observe:
                src, tag = dst_task.blocked_on
                if (src is None or msg.src == src) and (
                    tag is None or msg.tag == tag
                ):
                    # Direct handoff (see _deliver for the argument);
                    # skipped when observing so net/msg spans report
                    # true queue depths.
                    dst_task.blocked_on = None
                    finish = self.processors[msg.dst].run_cpu(
                        now, self._recv_cpu
                    )
                    prev = dst_task.last_msg
                    if prev is not None:
                        prev.payload = None
                        self._msg_pool.append(prev)
                    dst_task.last_msg = msg
                    pool = eng._pool
                    seq = eng._seq
                    if pool:
                        entry = pool.pop()
                        entry[0] = finish
                        entry[1] = seq
                        entry[2] = self._step_cb
                        entry[3] = (dst_task, msg)
                    else:
                        entry = [finish, seq, self._step_cb, (dst_task, msg)]
                    heappush(eng._heap, entry)
                    eng._seq = seq + 1
                    return
            box = self.mailboxes[msg.dst]
            box.deliver(msg)
            src, tag = dst_task.blocked_on
            matched = box.take(src, tag)
            if matched is not None:
                dst_task.blocked_on = None
                finish = self.processors[msg.dst].run_cpu(
                    eng._now, self._recv_cpu
                )
                prev = dst_task.last_msg
                if prev is not None:
                    prev.payload = None
                    self._msg_pool.append(prev)
                dst_task.last_msg = matched
                self._batch_push(
                    eng, finish, self._step_cb, (dst_task, matched)
                )
            return
        self.mailboxes[msg.dst].deliver(msg)

    def _do_send(self, task: _Task, req: Send) -> None:
        if not 0 <= req.dst < self.spec.n_processors:
            raise SimulationError(f"send to unknown processor {req.dst}")
        nbytes = req.nbytes
        cpu_done = self.processors[task.pid].run_cpu(
            self.engine._now, self._send_cpu
        )
        msg = Message(
            task.pid, req.dst, req.tag, snapshot_payload(req.payload), nbytes, cpu_done
        )
        if self._fabric is None:
            # Inlined NetworkSpec.transfer_time; the parentheses keep the
            # float summation order (and thus traces) bit-identical.
            arrival = cpu_done + (self._net_latency + nbytes / self._net_bandwidth)
        else:
            arrival = self._fabric.arrival(task.pid, req.dst, nbytes, cpu_done)
        self.message_count += 1
        self.bytes_sent += nbytes
        if self._observe:
            kind = _tag_class(req.tag)
            self.obs.metrics.counter(f"net.msgs.{kind}").inc()
            self.obs.metrics.counter(f"net.bytes.{kind}").inc(nbytes)
            self.obs.metrics.counter("net.msgs_total").inc()
            self.obs.metrics.counter("net.bytes_total").inc(nbytes)
        if self.injector is None:
            self._call_at(arrival, self._deliver_cb, msg)
        else:
            key = (task.pid, req.dst)
            msg.seq = self._send_seq.get(key, 0)
            self._send_seq[key] = msg.seq + 1
            self._transmit(msg, cpu_done, attempt=0)
        self._resume_later(cpu_done, task, None)

    def _transmit(self, msg: Message, t_send: float, attempt: int) -> None:
        """One wire transmission attempt under fault injection.

        Dropped copies are retried with exponential backoff per the
        plan's transport policy.  A sender that has crashed since the
        original send cannot retransmit, and a copy that exhausts its
        retries is lost for good — from there, recovery is the
        runtime's job (heartbeat timeouts and work reassignment).
        """
        injector = self.injector
        assert injector is not None
        if attempt > 0 and msg.src in self._dead:
            return
        fate = injector.on_message(msg.src, msg.dst, msg.tag, t_send)
        if self.obs.enabled and fate.faulted:
            self.obs.emit_counter(
                "fault",
                "injected",
                t_send,
                1.0,
                pid=msg.src,
                meta={
                    "kinds": list(fate.kinds),
                    "tag": msg.tag,
                    "dst": msg.dst,
                    "seq": msg.seq,
                    "attempt": attempt,
                },
            )
            self.obs.metrics.counter("faults.injected").inc()
        if fate.dropped:
            policy = injector.transport
            if attempt >= policy.max_retries:
                self.messages_lost += 1
                if self.obs.enabled:
                    self.obs.emit_counter(
                        "msg",
                        "lost",
                        t_send,
                        1.0,
                        pid=msg.src,
                        meta={"tag": msg.tag, "dst": msg.dst, "seq": msg.seq},
                    )
                    self.obs.metrics.counter("net.msgs_lost").inc()
                return
            retry_at = t_send + policy.delay_for(attempt + 1)
            self.retransmits += 1
            if self.obs.enabled:
                self.obs.emit_counter(
                    "msg",
                    "retransmit",
                    retry_at,
                    1.0,
                    pid=msg.src,
                    meta={
                        "tag": msg.tag,
                        "dst": msg.dst,
                        "seq": msg.seq,
                        "attempt": attempt + 1,
                    },
                )
                self.obs.metrics.counter("net.retransmits").inc()
            self.engine.call_at(retry_at, self._transmit, msg, retry_at, attempt + 1)
            return
        if self._fabric is None:
            wire = self._net.transfer_time(msg.nbytes)
        else:
            wire = (
                self._fabric.arrival(msg.src, msg.dst, msg.nbytes, t_send) - t_send
            )
        for extra in fate.extra_delays:
            self.engine.call_at(t_send + wire + extra, self._deliver, msg)

    def _crash(self, pid: int) -> None:
        """Permanently kill the host of ``pid`` (fault injection)."""
        if pid in self._dead:
            return
        self._dead.add(pid)
        if self.obs.enabled:
            self.obs.emit_counter(
                "fault",
                "injected",
                self.engine.now,
                1.0,
                pid=pid,
                meta={"kinds": ["crash"]},
            )
            self.obs.metrics.counter("faults.crashes").inc()

    def _deliver(self, msg: Message) -> None:
        if msg.seq >= 0:
            # Reliable-transport dedupe: retransmissions and injected
            # duplicates of an already-delivered copy stop here, before
            # the mailbox (so the replay checker sees exactly-once).
            seen = self._seen_seq.setdefault(msg.dst, set())
            dedupe_key = (msg.src, msg.seq)
            if dedupe_key in seen:
                if self.obs.enabled:
                    self.obs.metrics.counter("net.duplicates_dropped").inc()
                return
            seen.add(dedupe_key)
        now = self.engine._now
        msg.t_arrived = now
        dst_task = self._tasks.get(msg.dst)
        if (
            self._fastpath
            and dst_task is not None
            and dst_task.blocked_on is not None
        ):
            src, tag = dst_task.blocked_on
            if (src is None or msg.src == src) and (tag is None or msg.tag == tag):
                # While a task is blocked, no queued message matches its
                # filter (delivery would have resumed it already), so
                # this message is exactly what take() would return: hand
                # it over without the enqueue/scan/dequeue round trip.
                # Not taken when observing, so net/msg spans report true
                # queue depths; not taken under fault injection, so
                # stall clamping sees every resume.
                dst_task.blocked_on = None
                eng = self.engine
                finish = self.processors[msg.dst].run_cpu(now, self._recv_cpu)
                heappush(eng._heap, (finish, eng._seq, self._step_cb, (dst_task, msg)))
                eng._seq += 1
                return
        box = self.mailboxes[msg.dst]
        box.deliver(msg)
        if dst_task is not None and dst_task.blocked_on is not None:
            src, tag = dst_task.blocked_on
            matched = box.take(src, tag)
            if matched is not None:
                dst_task.blocked_on = None
                proc = self.processors[msg.dst]
                finish = proc.run_cpu(self.engine._now, self._recv_cpu)
                self._resume_later(finish, dst_task, matched)

    # ------------------------------------------------------------------
    # Running and accounting
    # ------------------------------------------------------------------

    def run(self, until: float = math.inf) -> float:
        """Run the simulation; returns the final virtual time.

        When run to completion (``until`` is inf), raises
        :class:`DeadlockError` if any task is still blocked or unfinished
        after the event queue drains.  Tasks on crashed hosts are
        excused: their unfinished state is the injected fault.
        """
        t = self.engine.run(until)
        if math.isinf(until):
            stuck = [
                f"pid {tk.pid} ({tk.name}): "
                + (f"blocked on recv{tk.blocked_on}" if tk.blocked_on else "unfinished")
                for tk in self._tasks.values()
                if not tk.done and tk.pid not in self._dead
            ]
            if stuck:
                raise DeadlockError(
                    "simulation drained with live tasks: " + "; ".join(stuck)
                )
        return t

    def rusage(self, t_end: float | None = None) -> RusageReport:
        """Per-processor CPU accounting (getrusage equivalent)."""
        if t_end is None:
            t_end = self.engine.now
        usages = []
        for proc in self.processors:
            usages.append(
                TaskUsage(
                    pid=proc.pid,
                    elapsed=t_end,
                    app_cpu=proc.app_cpu_total,
                    competing_cpu=proc.competing_cpu(t_end),
                )
            )
        return RusageReport(usages=usages, t_end=t_end)

    def slave_pids(self) -> Iterable[int]:
        """Processor ids hosting slaves (excludes the master)."""
        return range(self.spec.n_slaves)


# Concrete-type dispatch tables for task syscalls; filled after the
# class body so the unbound handlers can be referenced directly.
_SYSCALLS_SAFE: dict[type, Callable[[Cluster, _Task, Any], None]] = {
    Compute: Cluster._do_compute,
    ComputeBatch: Cluster._do_compute_batch,
    Send: Cluster._do_send,
    Recv: Cluster._do_recv,
    Poll: Cluster._do_poll,
    Sleep: Cluster._do_sleep,
    Now: Cluster._do_now,
}

_SYSCALLS_FAST: dict[type, Callable[[Cluster, _Task, Any], None]] = {
    Compute: Cluster._fast_compute,
    ComputeBatch: Cluster._fast_compute_batch,
    Send: Cluster._fast_send,
    Recv: Cluster._fast_recv,
    Poll: Cluster._fast_poll,
    Sleep: Cluster._fast_sleep,
    Now: Cluster._fast_now,
}

_SYSCALLS_BATCH: dict[type, Callable[[Cluster, _Task, Any], None]] = {
    Compute: Cluster._batch_compute,
    ComputeBatch: Cluster._batch_compute_batch,
    Send: Cluster._batch_send,
    Recv: Cluster._batch_recv,
    Poll: Cluster._batch_poll,
    Sleep: Cluster._batch_sleep,
    Now: Cluster._batch_now,
}
