"""Cluster: processors + network + task scheduler on one event engine.

This is the top of the simulator substrate.  It launches application
tasks (generator functions), satisfies their syscalls, and provides
run-level accounting.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Iterable

from ..config import ClusterSpec
from ..errors import DeadlockError, SimulationError
from ..faults.injector import FaultInjector
from ..obs import NULL_RECORDER, Recorder
from .engine import Engine
from .events import Message
from .load import LoadGenerator, NoLoad
from .network import Mailbox, snapshot_payload
from .process import Compute, Now, Poll, Recv, Send, Sleep
from .processor import Processor
from .rusage import RusageReport, TaskUsage

__all__ = ["Cluster", "TaskContext"]

TaskFn = Callable[..., Generator[Any, Any, Any]]


def _tag_class(tag: str) -> str:
    """Coarse message class for metrics: the paper's overhead categories."""
    if tag == "lb.status":
        return "status"
    if tag in ("lb.instr", "lb.start"):
        return "instr"
    if tag.startswith("lb.move."):
        return "move"
    if tag == "lb.ckpt":
        return "ckpt"
    if tag.startswith("app."):
        return "app"
    return "other"


class TaskContext:
    """Handle given to every task; identifies it and exposes the cluster."""

    def __init__(self, cluster: "Cluster", pid: int):
        self.cluster = cluster
        self.pid = pid

    @property
    def n_slaves(self) -> int:
        return self.cluster.spec.n_slaves

    @property
    def master_pid(self) -> int:
        return self.cluster.spec.master_pid

    @property
    def now(self) -> float:
        return self.cluster.engine.now

    @property
    def obs(self) -> Recorder:
        """The cluster's observability recorder (never ``None``)."""
        return self.cluster.obs

    def __repr__(self) -> str:
        return f"TaskContext(pid={self.pid})"


class _Task:
    __slots__ = ("pid", "gen", "done", "blocked_on", "finish_time", "name")

    def __init__(self, pid: int, gen: Generator[Any, Any, Any], name: str):
        self.pid = pid
        self.gen = gen
        self.done = False
        self.blocked_on: tuple[int | None, str | None] | None = None
        self.finish_time: float | None = None
        self.name = name


class Cluster:
    """A simulated network of workstations.

    One application task may run per processor.  Processor ids
    ``0..n_slaves-1`` are the slaves; ``n_slaves`` is the master (see
    :class:`repro.config.ClusterSpec`).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        loads: dict[int, LoadGenerator] | None = None,
        recorder: Recorder | None = None,
        injector: FaultInjector | None = None,
    ):
        self.spec = spec
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.engine = Engine(self.obs)
        loads = dict(loads or {})
        for pid in loads:
            if not 0 <= pid < spec.n_processors:
                raise SimulationError(f"load assigned to unknown processor {pid}")
        self.processors: list[Processor] = [
            Processor(pid, spec.spec_for(pid), loads.get(pid, NoLoad()), self.obs)
            for pid in range(spec.n_processors)
        ]
        self.mailboxes: list[Mailbox] = [
            Mailbox(pid, self.obs) for pid in range(spec.n_processors)
        ]
        self._tasks: dict[int, _Task] = {}
        self.message_count = 0
        self.bytes_sent = 0
        self.retransmits = 0
        self.messages_lost = 0
        self.injector = injector
        self._dead: set[int] = set()
        self._send_seq: dict[tuple[int, int], int] = {}
        self._seen_seq: dict[int, set[tuple[int, int]]] = {}
        if injector is not None:
            injector.plan.validate_for(spec.n_slaves)
            for pid, t in injector.crash_times():
                self.engine.call_at(t, lambda pid=pid: self._crash(pid))
        if self.obs.enabled:
            # Per-message CPU costs, so reports can price interaction
            # overhead without importing the runtime config.
            self.obs.metrics.gauge("net.send_cpu_per_msg").set(spec.network.send_cpu)
            self.obs.metrics.gauge("net.recv_cpu_per_msg").set(spec.network.recv_cpu)
            self.obs.metrics.gauge("cluster.n_slaves").set(float(spec.n_slaves))

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------

    def spawn(self, pid: int, fn: TaskFn, *args: Any, **kwargs: Any) -> TaskContext:
        """Launch task ``fn(ctx, *args, **kwargs)`` on processor ``pid``."""
        if not 0 <= pid < self.spec.n_processors:
            raise SimulationError(f"no such processor: {pid}")
        if pid in self._tasks:
            raise SimulationError(f"processor {pid} already has a task")
        ctx = TaskContext(self, pid)
        gen = fn(ctx, *args, **kwargs)
        task = _Task(pid, gen, getattr(fn, "__name__", "task"))
        self._tasks[pid] = task
        self._resume_later(self.engine.now, task, None)
        return ctx

    def task_finish_time(self, pid: int) -> float:
        """Virtual time at which the task on ``pid`` completed."""
        task = self._tasks.get(pid)
        if task is None or task.finish_time is None:
            raise SimulationError(f"task on processor {pid} has not finished")
        return task.finish_time

    @property
    def dead_pids(self) -> frozenset[int]:
        """Processors whose hosts crashed under fault injection."""
        return frozenset(self._dead)

    # ------------------------------------------------------------------
    # Scheduler core
    # ------------------------------------------------------------------

    def _resume_later(self, t: float, task: _Task, value: Any) -> None:
        if self.injector is not None:
            # A stalled host makes no progress: resumes that land inside
            # a stall window slide to the window's end.
            t = self.injector.stall_clamp(task.pid, t)
        self.engine.call_at(t, lambda: self._step(task, value))

    def _step(self, task: _Task, value: Any) -> None:
        if task.pid in self._dead:
            return  # crashed host: the task never runs again
        if task.done:  # pragma: no cover - defensive
            raise SimulationError(f"resuming finished task on {task.pid}")
        try:
            req = task.gen.send(value)
        except StopIteration:
            task.done = True
            task.finish_time = self.engine.now
            return
        self._dispatch(task, req)

    def _dispatch(self, task: _Task, req: Any) -> None:
        now = self.engine.now
        proc = self.processors[task.pid]
        if isinstance(req, Compute):
            if req.fn is not None:
                req.fn()
            finish = proc.run_ops(now, req.ops)
            self._resume_later(finish, task, None)
        elif isinstance(req, Send):
            self._do_send(task, req)
        elif isinstance(req, Recv):
            msg = self.mailboxes[task.pid].take(req.src, req.tag)
            if msg is not None:
                finish = proc.run_cpu(now, self.spec.network.recv_cpu)
                self._resume_later(finish, task, msg)
            else:
                task.blocked_on = (req.src, req.tag)
        elif isinstance(req, Poll):
            msg = self.mailboxes[task.pid].take(req.src, req.tag)
            if msg is not None:
                finish = proc.run_cpu(now, self.spec.network.recv_cpu)
                self._resume_later(finish, task, msg)
            else:
                self._resume_later(now, task, None)
        elif isinstance(req, Sleep):
            if req.dt < 0:
                raise SimulationError(f"negative sleep: {req.dt}")
            self._resume_later(now + req.dt, task, None)
        elif isinstance(req, Now):
            self._resume_later(now, task, now)
        else:
            raise SimulationError(f"unknown syscall from task {task.pid}: {req!r}")

    def _do_send(self, task: _Task, req: Send) -> None:
        if not 0 <= req.dst < self.spec.n_processors:
            raise SimulationError(f"send to unknown processor {req.dst}")
        now = self.engine.now
        net = self.spec.network
        proc = self.processors[task.pid]
        cpu_done = proc.run_cpu(now, net.send_cpu)
        msg = Message(
            src=task.pid,
            dst=req.dst,
            tag=req.tag,
            payload=snapshot_payload(req.payload),
            nbytes=req.nbytes,
            t_sent=cpu_done,
        )
        arrival = cpu_done + net.transfer_time(req.nbytes)
        self.message_count += 1
        self.bytes_sent += req.nbytes
        if self.obs.enabled:
            kind = _tag_class(req.tag)
            self.obs.metrics.counter(f"net.msgs.{kind}").inc()
            self.obs.metrics.counter(f"net.bytes.{kind}").inc(req.nbytes)
            self.obs.metrics.counter("net.msgs_total").inc()
            self.obs.metrics.counter("net.bytes_total").inc(req.nbytes)
        if self.injector is None:
            self.engine.call_at(arrival, lambda: self._deliver(msg))
        else:
            key = (task.pid, req.dst)
            msg.seq = self._send_seq.get(key, 0)
            self._send_seq[key] = msg.seq + 1
            self._transmit(msg, cpu_done, attempt=0)
        self._resume_later(cpu_done, task, None)

    def _transmit(self, msg: Message, t_send: float, attempt: int) -> None:
        """One wire transmission attempt under fault injection.

        Dropped copies are retried with exponential backoff per the
        plan's transport policy.  A sender that has crashed since the
        original send cannot retransmit, and a copy that exhausts its
        retries is lost for good — from there, recovery is the
        runtime's job (heartbeat timeouts and work reassignment).
        """
        injector = self.injector
        assert injector is not None
        if attempt > 0 and msg.src in self._dead:
            return
        fate = injector.on_message(msg.src, msg.dst, msg.tag, t_send)
        if self.obs.enabled and fate.faulted:
            self.obs.emit_counter(
                "fault",
                "injected",
                t_send,
                1.0,
                pid=msg.src,
                meta={
                    "kinds": list(fate.kinds),
                    "tag": msg.tag,
                    "dst": msg.dst,
                    "seq": msg.seq,
                    "attempt": attempt,
                },
            )
            self.obs.metrics.counter("faults.injected").inc()
        if fate.dropped:
            policy = injector.transport
            if attempt >= policy.max_retries:
                self.messages_lost += 1
                if self.obs.enabled:
                    self.obs.emit_counter(
                        "msg",
                        "lost",
                        t_send,
                        1.0,
                        pid=msg.src,
                        meta={"tag": msg.tag, "dst": msg.dst, "seq": msg.seq},
                    )
                    self.obs.metrics.counter("net.msgs_lost").inc()
                return
            retry_at = t_send + policy.delay_for(attempt + 1)
            self.retransmits += 1
            if self.obs.enabled:
                self.obs.emit_counter(
                    "msg",
                    "retransmit",
                    retry_at,
                    1.0,
                    pid=msg.src,
                    meta={
                        "tag": msg.tag,
                        "dst": msg.dst,
                        "seq": msg.seq,
                        "attempt": attempt + 1,
                    },
                )
                self.obs.metrics.counter("net.retransmits").inc()
            self.engine.call_at(
                retry_at, lambda: self._transmit(msg, retry_at, attempt + 1)
            )
            return
        wire = self.spec.network.transfer_time(msg.nbytes)
        for extra in fate.extra_delays:
            self.engine.call_at(t_send + wire + extra, lambda: self._deliver(msg))

    def _crash(self, pid: int) -> None:
        """Permanently kill the host of ``pid`` (fault injection)."""
        if pid in self._dead:
            return
        self._dead.add(pid)
        if self.obs.enabled:
            self.obs.emit_counter(
                "fault",
                "injected",
                self.engine.now,
                1.0,
                pid=pid,
                meta={"kinds": ["crash"]},
            )
            self.obs.metrics.counter("faults.crashes").inc()

    def _deliver(self, msg: Message) -> None:
        if msg.seq >= 0:
            # Reliable-transport dedupe: retransmissions and injected
            # duplicates of an already-delivered copy stop here, before
            # the mailbox (so the replay checker sees exactly-once).
            seen = self._seen_seq.setdefault(msg.dst, set())
            dedupe_key = (msg.src, msg.seq)
            if dedupe_key in seen:
                if self.obs.enabled:
                    self.obs.metrics.counter("net.duplicates_dropped").inc()
                return
            seen.add(dedupe_key)
        msg.t_arrived = self.engine.now
        dst_task = self._tasks.get(msg.dst)
        box = self.mailboxes[msg.dst]
        box.deliver(msg)
        if dst_task is not None and dst_task.blocked_on is not None:
            src, tag = dst_task.blocked_on
            matched = box.take(src, tag)
            if matched is not None:
                dst_task.blocked_on = None
                proc = self.processors[msg.dst]
                finish = proc.run_cpu(self.engine.now, self.spec.network.recv_cpu)
                self._resume_later(finish, dst_task, matched)

    # ------------------------------------------------------------------
    # Running and accounting
    # ------------------------------------------------------------------

    def run(self, until: float = math.inf) -> float:
        """Run the simulation; returns the final virtual time.

        When run to completion (``until`` is inf), raises
        :class:`DeadlockError` if any task is still blocked or unfinished
        after the event queue drains.  Tasks on crashed hosts are
        excused: their unfinished state is the injected fault.
        """
        t = self.engine.run(until)
        if math.isinf(until):
            stuck = [
                f"pid {tk.pid} ({tk.name}): "
                + (f"blocked on recv{tk.blocked_on}" if tk.blocked_on else "unfinished")
                for tk in self._tasks.values()
                if not tk.done and tk.pid not in self._dead
            ]
            if stuck:
                raise DeadlockError(
                    "simulation drained with live tasks: " + "; ".join(stuck)
                )
        return t

    def rusage(self, t_end: float | None = None) -> RusageReport:
        """Per-processor CPU accounting (getrusage equivalent)."""
        if t_end is None:
            t_end = self.engine.now
        usages = []
        for proc in self.processors:
            usages.append(
                TaskUsage(
                    pid=proc.pid,
                    elapsed=t_end,
                    app_cpu=proc.app_cpu_total,
                    competing_cpu=proc.competing_cpu(t_end),
                )
            )
        return RusageReport(usages=usages, t_end=t_end)

    def slave_pids(self) -> Iterable[int]:
        """Processor ids hosting slaves (excludes the master)."""
        return range(self.spec.n_slaves)
