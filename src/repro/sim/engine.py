"""Deterministic discrete-event engine.

A minimal heap-based event loop.  Events scheduled for the same virtual
time fire in scheduling order (FIFO), which makes whole simulations
deterministic and therefore testable.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from ..errors import SimulationError
from ..obs import NULL_RECORDER, Recorder

__all__ = ["Engine"]


class Engine:
    """Event queue with a virtual clock.

    The engine knows nothing about processors or tasks; it only orders
    callbacks in virtual time.  Higher layers (the :mod:`repro.sim.machine`
    module) build message passing and CPU scheduling on top of it.

    When given an enabled :class:`~repro.obs.Recorder`, each ``run``
    call emits an ``engine/run`` span and counts fired events; with the
    default disabled recorder the event loop is the uninstrumented fast
    path.
    """

    def __init__(self, recorder: Recorder | None = None) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._running = False
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, t: float, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` to run at virtual time ``t`` (>= now)."""
        if math.isnan(t):
            raise SimulationError("cannot schedule event at NaN time")
        if t < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event in the past: t={t} < now={self._now}"
            )
        heapq.heappush(self._heap, (max(t, self._now), self._seq, fn))
        self._seq += 1

    def call_after(self, dt: float, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` to run ``dt`` seconds from now."""
        if dt < 0:
            raise SimulationError(f"negative delay: {dt}")
        self.call_at(self._now + dt, fn)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def run(self, until: float = math.inf) -> float:
        """Drain the event queue up to virtual time ``until``.

        Returns the final virtual time.  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        if self._obs.enabled:
            return self._run_instrumented(until)
        self._running = True
        try:
            while self._heap:
                t, _seq, fn = self._heap[0]
                if t > until:
                    break
                heapq.heappop(self._heap)
                self._now = t
                fn()
            if not math.isinf(until) and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False

    def _run_instrumented(self, until: float) -> float:
        """``run`` with event counting and an ``engine/run`` span.

        Kept separate so the disabled path stays the bare loop above.
        """
        self._running = True
        t_start = self._now
        fired = 0
        try:
            while self._heap:
                t, _seq, fn = self._heap[0]
                if t > until:
                    break
                heapq.heappop(self._heap)
                self._now = t
                fired += 1
                fn()
            if not math.isinf(until) and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False
            self.events_processed += fired
            self._obs.metrics.counter("engine.events").inc(fired)
            self._obs.emit_span(
                "engine",
                "run",
                t_start,
                self._now,
                value=float(fired),
                meta={"pending": len(self._heap)},
            )
