"""Deterministic discrete-event engine.

A minimal heap-based event loop.  Events scheduled for the same virtual
time fire in scheduling order (FIFO), which makes whole simulations
deterministic and therefore testable.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Engine"]


class Engine:
    """Event queue with a virtual clock.

    The engine knows nothing about processors or tasks; it only orders
    callbacks in virtual time.  Higher layers (the :mod:`repro.sim.machine`
    module) build message passing and CPU scheduling on top of it.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, t: float, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` to run at virtual time ``t`` (>= now)."""
        if math.isnan(t):
            raise SimulationError("cannot schedule event at NaN time")
        if t < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event in the past: t={t} < now={self._now}"
            )
        heapq.heappush(self._heap, (max(t, self._now), self._seq, fn))
        self._seq += 1

    def call_after(self, dt: float, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` to run ``dt`` seconds from now."""
        if dt < 0:
            raise SimulationError(f"negative delay: {dt}")
        self.call_at(self._now + dt, fn)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def run(self, until: float = math.inf) -> float:
        """Drain the event queue up to virtual time ``until``.

        Returns the final virtual time.  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        self._running = True
        try:
            while self._heap:
                t, _seq, fn = self._heap[0]
                if t > until:
                    break
                heapq.heappop(self._heap)
                self._now = t
                fn()
            if not math.isinf(until) and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False
