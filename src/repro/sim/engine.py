"""Deterministic discrete-event engine.

A minimal heap-based event loop.  Events scheduled for the same virtual
time fire in scheduling order (FIFO), which makes whole simulations
deterministic and therefore testable.

The event loop is the hottest code in the repository (every message,
compute segment and timer passes through it), so it is written for
throughput: heap entries are ``(t, seq, fn, args)`` tuples — callbacks
take their arguments through the entry instead of a per-event closure —
and the drain loop pops all events sharing one timestamp in an inner
batch so the clock and the ``until`` bound are touched once per
distinct time, not once per event.  Ordering is unchanged: a callback
that schedules new work at the current time appends behind the batch by
sequence number, exactly as the one-at-a-time loop would.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable

from ..errors import SimulationError
from ..obs import NULL_RECORDER, Recorder

__all__ = ["Engine"]


class Engine:
    """Event queue with a virtual clock.

    The engine knows nothing about processors or tasks; it only orders
    callbacks in virtual time.  Higher layers (the :mod:`repro.sim.machine`
    module) build message passing and CPU scheduling on top of it.

    When given an enabled :class:`~repro.obs.Recorder`, each ``run``
    call emits an ``engine/run`` span; with the default disabled
    recorder the event loop is the uninstrumented fast path.  Either
    way ``events_processed`` counts every event fired.
    """

    __slots__ = ("_now", "_seq", "_heap", "_running", "_obs", "events_processed")

    def __init__(self, recorder: Recorder | None = None) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[..., Any], tuple[Any, ...]]] = []
        self._running = False
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, t: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at virtual time ``t`` (>= now)."""
        now = self._now
        if t < now:
            if t != t:  # NaN: the only float for which this holds
                raise SimulationError("cannot schedule event at NaN time")
            if t < now - 1e-12:
                raise SimulationError(
                    f"cannot schedule event in the past: t={t} < now={now}"
                )
            t = now
        elif t != t:
            raise SimulationError("cannot schedule event at NaN time")
        heappush(self._heap, (t, self._seq, fn, args))
        self._seq += 1

    def call_after(self, dt: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``dt`` seconds from now."""
        if dt < 0:
            raise SimulationError(f"negative delay: {dt}")
        self.call_at(self._now + dt, fn, *args)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def run(self, until: float = math.inf) -> float:
        """Drain the event queue up to virtual time ``until``.

        Returns the final virtual time.  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        if self._obs.enabled:
            return self._run_instrumented(until)
        self._running = True
        heap = self._heap
        fired = 0
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                self._now = t
                # Batch-pop everything at this timestamp; same-time
                # events a callback schedules join the batch in seq
                # order, preserving the one-at-a-time FIFO semantics.
                while heap and heap[0][0] == t:
                    _, _, fn, args = heappop(heap)
                    fired += 1
                    fn(*args)
            if until > self._now and not math.isinf(until):
                self._now = until
            return self._now
        finally:
            self._running = False
            self.events_processed += fired

    def _run_instrumented(self, until: float) -> float:
        """``run`` with an ``engine/run`` span and event-count metrics.

        Kept separate so the disabled path stays the bare loop above.
        """
        self._running = True
        heap = self._heap
        t_start = self._now
        fired = 0
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                self._now = t
                while heap and heap[0][0] == t:
                    _, _, fn, args = heappop(heap)
                    fired += 1
                    fn(*args)
            if until > self._now and not math.isinf(until):
                self._now = until
            return self._now
        finally:
            self._running = False
            self.events_processed += fired
            self._obs.metrics.counter("engine.events").inc(fired)
            self._obs.emit_span(
                "engine",
                "run",
                t_start,
                self._now,
                value=float(fired),
                meta={"pending": len(self._heap)},
            )
