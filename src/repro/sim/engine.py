"""Deterministic discrete-event engine.

A minimal heap-based event loop.  Events scheduled for the same virtual
time fire in scheduling order (FIFO), which makes whole simulations
deterministic and therefore testable.

The event loop is the hottest code in the repository (every message,
compute segment and timer passes through it), so it is written for
throughput: heap entries are ``(t, seq, fn, args)`` tuples — callbacks
take their arguments through the entry instead of a per-event closure —
and the drain loop pops all events sharing one timestamp in an inner
batch so the clock and the ``until`` bound are touched once per
distinct time, not once per event.  Ordering is unchanged: a callback
that schedules new work at the current time appends behind the batch by
sequence number, exactly as the one-at-a-time loop would.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable

from ..errors import SimulationError
from ..obs import NULL_RECORDER, Recorder

__all__ = ["Engine", "BatchEngine"]


class Engine:
    """Event queue with a virtual clock.

    The engine knows nothing about processors or tasks; it only orders
    callbacks in virtual time.  Higher layers (the :mod:`repro.sim.machine`
    module) build message passing and CPU scheduling on top of it.

    When given an enabled :class:`~repro.obs.Recorder`, each ``run``
    call emits an ``engine/run`` span; with the default disabled
    recorder the event loop is the uninstrumented fast path.  Either
    way ``events_processed`` counts every event fired.
    """

    __slots__ = ("_now", "_seq", "_heap", "_running", "_obs", "events_processed")

    def __init__(self, recorder: Recorder | None = None) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[..., Any], tuple[Any, ...]]] = []
        self._running = False
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, t: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at virtual time ``t`` (>= now)."""
        now = self._now
        if t < now:
            if t != t:  # NaN: the only float for which this holds
                raise SimulationError("cannot schedule event at NaN time")
            if t < now - 1e-12:
                raise SimulationError(
                    f"cannot schedule event in the past: t={t} < now={now}"
                )
            t = now
        elif t != t:
            raise SimulationError("cannot schedule event at NaN time")
        heappush(self._heap, (t, self._seq, fn, args))
        self._seq += 1

    def call_after(self, dt: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``dt`` seconds from now."""
        if dt < 0:
            raise SimulationError(f"negative delay: {dt}")
        self.call_at(self._now + dt, fn, *args)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def run(self, until: float = math.inf) -> float:
        """Drain the event queue up to virtual time ``until``.

        Returns the final virtual time.  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        if self._obs.enabled:
            return self._run_instrumented(until)
        self._running = True
        heap = self._heap
        fired = 0
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                self._now = t
                # Batch-pop everything at this timestamp; same-time
                # events a callback schedules join the batch in seq
                # order, preserving the one-at-a-time FIFO semantics.
                while heap and heap[0][0] == t:
                    _, _, fn, args = heappop(heap)
                    fired += 1
                    fn(*args)
            if until > self._now and not math.isinf(until):
                self._now = until
            return self._now
        finally:
            self._running = False
            self.events_processed += fired

    def _run_instrumented(self, until: float) -> float:
        """``run`` with an ``engine/run`` span and event-count metrics.

        Kept separate so the disabled path stays the bare loop above.
        """
        self._running = True
        heap = self._heap
        t_start = self._now
        fired = 0
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                self._now = t
                while heap and heap[0][0] == t:
                    _, _, fn, args = heappop(heap)
                    fired += 1
                    fn(*args)
            if until > self._now and not math.isinf(until):
                self._now = until
            return self._now
        finally:
            self._running = False
            self.events_processed += fired
            self._obs.metrics.counter("engine.events").inc(fired)
            self._obs.emit_span(
                "engine",
                "run",
                t_start,
                self._now,
                value=float(fired),
                meta={"pending": len(self._heap)},
            )


class BatchEngine(Engine):
    """Engine variant with pooled heap entries and inline batch advance.

    Drop-in replacement for :class:`Engine` with two throughput changes
    and identical observable behaviour:

    - **Allocation-free heap path.**  Entries are mutable 4-slot lists
      recycled through a freelist (``_pool``) instead of fresh
      ``(t, seq, fn, args)`` tuples; the drain loop returns each popped
      entry to the pool before firing its callback.  Entry comparison
      never reaches the callback slots because ``seq`` is unique, so
      heap ordering is unchanged — but lists and tuples do not compare,
      so *every* producer pushing directly onto ``_heap`` must push
      pooled lists (the machine layer's batch syscall table does).

    - **Inline advance bookkeeping.**  The machine layer may advance a
      task through consecutive compute segments without a heap round
      trip when the segment finish is strictly earlier than every
      pending event and inside the active ``run`` window (``_until``).
      Each analytically-advanced event increments ``_inline``; the run
      loop folds that into ``events_processed`` and the ``engine/run``
      span so counts stay byte-identical to the reference engine.
    """

    __slots__ = ("_pool", "_until", "_inline")

    def __init__(self, recorder: Recorder | None = None) -> None:
        super().__init__(recorder)
        self._pool: list[list[Any]] = []
        self._until = math.inf
        self._inline = 0

    def call_at(self, t: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``t`` on a pooled heap entry."""
        now = self._now
        if t < now:
            if t != t:  # NaN: the only float for which this holds
                raise SimulationError("cannot schedule event at NaN time")
            if t < now - 1e-12:
                raise SimulationError(
                    f"cannot schedule event in the past: t={t} < now={now}"
                )
            t = now
        elif t != t:
            raise SimulationError("cannot schedule event at NaN time")
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = t
            entry[1] = self._seq
            entry[2] = fn
            entry[3] = args
        else:
            entry = [t, self._seq, fn, args]
        heappush(self._heap, entry)
        self._seq += 1

    def run(self, until: float = math.inf) -> float:
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        if self._obs.enabled:
            return self._run_instrumented(until)
        self._running = True
        self._until = until
        heap = self._heap
        pool = self._pool
        fired = 0
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                self._now = t
                while heap and heap[0][0] == t:
                    entry = heappop(heap)
                    fn = entry[2]
                    args = entry[3]
                    # Recycle before firing: fn may push (and reuse) it.
                    # Only args is cleared: fn slots hold shared bound
                    # methods, so retaining them pins nothing transient.
                    entry[3] = None
                    pool.append(entry)
                    fired += 1
                    fn(*args)
        finally:
            self._running = False
            self._until = math.inf
            self.events_processed += fired + self._inline
            self._inline = 0
        if until > self._now and not math.isinf(until):
            self._now = until
        return self._now

    def _run_instrumented(self, until: float) -> float:
        self._running = True
        self._until = until
        heap = self._heap
        pool = self._pool
        t_start = self._now
        fired = 0
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                self._now = t
                while heap and heap[0][0] == t:
                    entry = heappop(heap)
                    fn = entry[2]
                    args = entry[3]
                    entry[3] = None
                    pool.append(entry)
                    fired += 1
                    fn(*args)
            if until > self._now and not math.isinf(until):
                self._now = until
            return self._now
        finally:
            self._running = False
            self._until = math.inf
            total = fired + self._inline
            self._inline = 0
            self.events_processed += total
            self._obs.metrics.counter("engine.events").inc(total)
            self._obs.emit_span(
                "engine",
                "run",
                t_start,
                self._now,
                value=float(total),
                meta={"pending": len(self._heap)},
            )
