"""Competing-load generators.

A load generator describes, as a piecewise-constant function of virtual
time, how many CPU-bound *competing* tasks are runnable on a processor.
The paper's experiments use a dedicated environment (no load), a constant
load on one processor (Figures 7/8), and an oscillating load with a 20 s
period and 10 s duration (Figure 9); all three are provided, plus step and
composite generators for richer scenarios.
"""

from __future__ import annotations

import json
import math
import os
import time as _time
from bisect import bisect_right
from pathlib import Path
from typing import Any, Sequence

from ..errors import ConfigError

__all__ = [
    "LoadGenerator",
    "LoadTrace",
    "NoLoad",
    "ConstantLoad",
    "OscillatingLoad",
    "StepLoad",
    "CompositeLoad",
]

TRACE_SCHEMA = "repro-loadtrace/1"


def _check_time(value: float, what: str) -> float:
    """Validate one time-like constructor argument (finite, not NaN)."""
    try:
        f = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{what} must be a number, got {value!r}") from exc
    if math.isnan(f):
        raise ConfigError(f"{what} must not be NaN")
    return f


def _check_count(value: int, what: str) -> int:
    """Validate one competing-task count (finite integer >= 0).

    Floats are accepted only when integral — a NaN/inf count used to
    slip through ``k < 0`` and poison every downstream comparison.
    """
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ConfigError(f"{what} must be finite, got {value!r}")
        if value != int(value):
            raise ConfigError(f"{what} must be an integer, got {value!r}")
    try:
        k = int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{what} must be an integer, got {value!r}") from exc
    if k < 0:
        raise ConfigError(f"{what} must be >= 0, got {k}")
    return k


class LoadGenerator:
    """Interface: piecewise-constant competing-task count over time."""

    def k_at(self, t: float) -> int:
        """Number of competing CPU-bound tasks at time ``t``."""
        raise NotImplementedError

    def next_change(self, t: float) -> float:
        """The first time strictly greater than ``t`` at which ``k_at``
        may change.  Returns ``math.inf`` if the load is constant forever
        after ``t``."""
        raise NotImplementedError

    def segment_start(self, t: float) -> float:
        """Start time of the constant-load segment containing ``t`` (the
        last change at or before ``t``; 0.0 if none).  Used to anchor the
        round-robin scheduling cycle in absolute time."""
        raise NotImplementedError

    def competing_busy_time(self, t0: float, t1: float) -> float:
        """Total time within ``[t0, t1]`` during which at least one
        competing task is runnable (used for CPU accounting)."""
        if t1 < t0:
            raise ConfigError(f"interval reversed: [{t0}, {t1}]")
        busy = 0.0
        t = t0
        while t < t1:
            nxt = min(self.next_change(t), t1)
            if self.k_at(t) >= 1:
                busy += nxt - t
            if nxt <= t:  # pragma: no cover - defensive
                break
            t = nxt
        return busy


class NoLoad(LoadGenerator):
    """A dedicated processor: never any competing task."""

    def k_at(self, t: float) -> int:
        return 0

    def next_change(self, t: float) -> float:
        return math.inf

    def segment_start(self, t: float) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoLoad()"


class ConstantLoad(LoadGenerator):
    """``k`` competing tasks between ``start`` and ``stop``."""

    def __init__(self, k: int = 1, start: float = 0.0, stop: float = math.inf):
        self.k = _check_count(k, "competing task count")
        self.start = _check_time(start, "start")
        # inf is a legal stop (load forever); NaN is not.
        self.stop = _check_time(stop, "stop")
        if not math.isfinite(self.start):
            raise ConfigError(f"start must be finite, got {start}")
        if self.stop < self.start:
            raise ConfigError(f"stop {stop} before start {start}")

    def k_at(self, t: float) -> int:
        return self.k if self.start <= t < self.stop else 0

    def next_change(self, t: float) -> float:
        if t < self.start:
            return self.start
        if t < self.stop:
            return self.stop
        return math.inf

    def segment_start(self, t: float) -> float:
        if t < self.start:
            return 0.0
        if t < self.stop:
            return self.start
        return self.stop if math.isfinite(self.stop) else self.start

    def __repr__(self) -> str:
        return f"ConstantLoad(k={self.k}, start={self.start}, stop={self.stop})"


class OscillatingLoad(LoadGenerator):
    """``k`` competing tasks for ``duration`` out of every ``period`` seconds.

    Matches the Figure 9 experiment: period 20 s, duration 10 s.
    """

    def __init__(
        self,
        k: int = 1,
        period: float = 20.0,
        duration: float = 10.0,
        start: float = 0.0,
    ):
        self.k = _check_count(k, "competing task count")
        self.period = _check_time(period, "period")
        self.duration = _check_time(duration, "duration")
        self.start = _check_time(start, "start")
        if not math.isfinite(self.start):
            raise ConfigError(f"start must be finite, got {start}")
        if (
            not math.isfinite(self.period)
            or self.period <= 0
            or not 0 < self.duration <= self.period
        ):
            raise ConfigError(
                f"need 0 < duration <= period, got duration={duration} period={period}"
            )

    def k_at(self, t: float) -> int:
        if t < self.start:
            return 0
        phase = (t - self.start) % self.period
        return self.k if phase < self.duration else 0

    def next_change(self, t: float) -> float:
        if t < self.start:
            return self.start
        elapsed = t - self.start
        cycle = math.floor(elapsed / self.period)
        phase = elapsed - cycle * self.period
        if phase < self.duration:
            return self.start + cycle * self.period + self.duration
        return self.start + (cycle + 1) * self.period

    def segment_start(self, t: float) -> float:
        if t < self.start:
            return 0.0
        elapsed = t - self.start
        cycle = math.floor(elapsed / self.period)
        phase = elapsed - cycle * self.period
        if phase < self.duration:
            return self.start + cycle * self.period
        return self.start + cycle * self.period + self.duration

    def __repr__(self) -> str:
        return (
            f"OscillatingLoad(k={self.k}, period={self.period}, "
            f"duration={self.duration}, start={self.start})"
        )


class StepLoad(LoadGenerator):
    """Arbitrary piecewise-constant load given as ``[(time, k), ...]``.

    ``k`` holds from each listed time until the next one; before the first
    entry the load is zero.
    """

    def __init__(self, steps: Sequence[tuple[float, int]]):
        if not steps:
            raise ConfigError("StepLoad needs at least one step")
        times = [_check_time(t, "StepLoad time") for t, _ in steps]
        if any(not math.isfinite(t) for t in times):
            raise ConfigError("StepLoad times must be finite")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigError("StepLoad times must be strictly increasing")
        self._times = list(times)
        self._ks = [_check_count(k, "StepLoad count") for _, k in steps]

    def k_at(self, t: float) -> int:
        i = bisect_right(self._times, t) - 1
        return self._ks[i] if i >= 0 else 0

    def next_change(self, t: float) -> float:
        i = bisect_right(self._times, t)
        return self._times[i] if i < len(self._times) else math.inf

    def segment_start(self, t: float) -> float:
        i = bisect_right(self._times, t) - 1
        return self._times[i] if i >= 0 else 0.0

    def __repr__(self) -> str:
        return f"StepLoad({list(zip(self._times, self._ks))!r})"


class LoadTrace(StepLoad):
    """A recorded piecewise-constant load, replayed deterministically.

    The trace is a list of ``(time, k)`` samples — the same shape
    :class:`StepLoad` consumes — plus provenance (name, source, free-form
    metadata) and a JSON schema (``repro-loadtrace/1``) so real-machine
    captures can be committed to the repository and replayed bit-exactly
    in benchmarks.  Two capture paths:

    - :meth:`capture` samples another generator at its exact change
      points (lossless: replay is identical to the source generator over
      the captured horizon);
    - :meth:`capture_host` records the local machine's run-queue length
      (``os.getloadavg``) in real time.

    ``clamp=True`` repairs dirty recorded samples (negative or
    non-finite readings become the nearest legal value) instead of
    raising; programmatic constructors get the strict :class:`StepLoad`
    validation.
    """

    def __init__(
        self,
        samples: Sequence[tuple[float, int]],
        *,
        name: str = "trace",
        source: str = "synthetic",
        meta: dict[str, Any] | None = None,
        clamp: bool = False,
    ):
        if clamp:
            samples = self._clamped(samples)
        if not samples:
            samples = [(0.0, 0)]
        super().__init__(samples)
        self.name = str(name)
        self.source = str(source)
        self.meta = dict(meta or {})

    @staticmethod
    def _clamped(samples: Sequence[tuple[float, int]]) -> list[tuple[float, int]]:
        """Repair recorded samples: drop unusable times, clamp counts."""
        out: list[tuple[float, int]] = []
        for t, k in samples:
            tf = float(t)
            if not math.isfinite(tf) or tf < 0:
                continue
            kf = float(k)
            kc = 0 if not math.isfinite(kf) or kf < 0 else int(round(kf))
            if out and tf <= out[-1][0]:
                out[-1] = (out[-1][0], kc)
            else:
                out.append((tf, kc))
        return out

    @property
    def samples(self) -> tuple[tuple[float, int], ...]:
        return tuple(zip(self._times, self._ks))

    @property
    def horizon(self) -> float:
        """Time of the last recorded sample."""
        return self._times[-1]

    def scaled(self, time_scale: float) -> LoadTrace:
        """A copy with every sample time multiplied by ``time_scale``
        (replay a wall-clock capture on the virtual clock at any tempo)."""
        if not math.isfinite(time_scale) or time_scale <= 0:
            raise ConfigError(f"time_scale must be positive, got {time_scale}")
        return LoadTrace(
            [(t * time_scale, k) for t, k in self.samples],
            name=self.name,
            source=self.source,
            meta={**self.meta, "time_scale": time_scale},
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "source": self.source,
            "samples": [[t, k] for t, k in self.samples],
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> LoadTrace:
        if not isinstance(doc, dict) or doc.get("schema") != TRACE_SCHEMA:
            raise ConfigError(
                f"not a load-trace document (want schema {TRACE_SCHEMA!r}, "
                f"got {doc.get('schema') if isinstance(doc, dict) else doc!r})"
            )
        samples = [(float(t), int(k)) for t, k in doc.get("samples", [])]
        return cls(
            samples,
            name=doc.get("name", "trace"),
            source=doc.get("source", "unknown"),
            meta=doc.get("meta") or {},
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> LoadTrace:
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read load trace {path}: {exc}") from exc
        return cls.from_dict(doc)

    @classmethod
    def capture(
        cls,
        gen: LoadGenerator,
        horizon: float,
        *,
        t0: float = 0.0,
        name: str = "capture",
    ) -> LoadTrace:
        """Record ``gen`` over ``[t0, t0 + horizon]`` at its exact change
        points, so replaying the trace reproduces the generator."""
        if not math.isfinite(horizon) or horizon <= 0:
            raise ConfigError(f"capture horizon must be positive, got {horizon}")
        samples: list[tuple[float, int]] = [(0.0, gen.k_at(t0))]
        t = t0
        while True:
            t = gen.next_change(t)
            if t >= t0 + horizon or not math.isfinite(t):
                break
            k = gen.k_at(t)
            if k != samples[-1][1]:
                samples.append((t - t0, k))
        return cls(
            samples,
            name=name,
            source=f"capture:{gen!r}",
            meta={"horizon": horizon, "t0": t0},
        )

    @classmethod
    def capture_host(
        cls,
        duration_s: float = 10.0,
        interval_s: float = 0.5,
        *,
        name: str = "host",
    ) -> LoadTrace:
        """Record this machine's 1-minute run-queue length in real time.

        Dirty readings (negative or non-finite, seen on some platforms)
        are clamped rather than fatal — a capture should never crash
        halfway through a recording session.
        """
        if duration_s <= 0 or interval_s <= 0:
            raise ConfigError("capture duration and interval must be positive")
        raw: list[tuple[float, float]] = []
        t_start = _time.monotonic()
        while True:
            elapsed = _time.monotonic() - t_start
            raw.append((elapsed, os.getloadavg()[0]))
            if elapsed >= duration_s:
                break
            _time.sleep(min(interval_s, duration_s - elapsed + 1e-3))
        return cls(
            raw,  # type: ignore[arg-type]  # floats; clamp converts
            name=name,
            source="getloadavg",
            meta={"duration_s": duration_s, "interval_s": interval_s},
            clamp=True,
        )

    def __repr__(self) -> str:
        return (
            f"LoadTrace(name={self.name!r}, source={self.source!r}, "
            f"samples={len(self._times)}, horizon={self.horizon})"
        )


class CompositeLoad(LoadGenerator):
    """Sum of several load generators (independent competing users)."""

    def __init__(self, generators: Sequence[LoadGenerator]):
        if not generators:
            raise ConfigError("CompositeLoad needs at least one generator")
        self._gens = list(generators)

    def k_at(self, t: float) -> int:
        return sum(g.k_at(t) for g in self._gens)

    def next_change(self, t: float) -> float:
        return min(g.next_change(t) for g in self._gens)

    def segment_start(self, t: float) -> float:
        return max(g.segment_start(t) for g in self._gens)

    def __repr__(self) -> str:
        return f"CompositeLoad({self._gens!r})"
