"""Competing-load generators.

A load generator describes, as a piecewise-constant function of virtual
time, how many CPU-bound *competing* tasks are runnable on a processor.
The paper's experiments use a dedicated environment (no load), a constant
load on one processor (Figures 7/8), and an oscillating load with a 20 s
period and 10 s duration (Figure 9); all three are provided, plus step and
composite generators for richer scenarios.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

from ..errors import ConfigError

__all__ = [
    "LoadGenerator",
    "NoLoad",
    "ConstantLoad",
    "OscillatingLoad",
    "StepLoad",
    "CompositeLoad",
]


class LoadGenerator:
    """Interface: piecewise-constant competing-task count over time."""

    def k_at(self, t: float) -> int:
        """Number of competing CPU-bound tasks at time ``t``."""
        raise NotImplementedError

    def next_change(self, t: float) -> float:
        """The first time strictly greater than ``t`` at which ``k_at``
        may change.  Returns ``math.inf`` if the load is constant forever
        after ``t``."""
        raise NotImplementedError

    def segment_start(self, t: float) -> float:
        """Start time of the constant-load segment containing ``t`` (the
        last change at or before ``t``; 0.0 if none).  Used to anchor the
        round-robin scheduling cycle in absolute time."""
        raise NotImplementedError

    def competing_busy_time(self, t0: float, t1: float) -> float:
        """Total time within ``[t0, t1]`` during which at least one
        competing task is runnable (used for CPU accounting)."""
        if t1 < t0:
            raise ConfigError(f"interval reversed: [{t0}, {t1}]")
        busy = 0.0
        t = t0
        while t < t1:
            nxt = min(self.next_change(t), t1)
            if self.k_at(t) >= 1:
                busy += nxt - t
            if nxt <= t:  # pragma: no cover - defensive
                break
            t = nxt
        return busy


class NoLoad(LoadGenerator):
    """A dedicated processor: never any competing task."""

    def k_at(self, t: float) -> int:
        return 0

    def next_change(self, t: float) -> float:
        return math.inf

    def segment_start(self, t: float) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoLoad()"


class ConstantLoad(LoadGenerator):
    """``k`` competing tasks between ``start`` and ``stop``."""

    def __init__(self, k: int = 1, start: float = 0.0, stop: float = math.inf):
        if k < 0:
            raise ConfigError(f"competing task count must be >= 0, got {k}")
        if stop < start:
            raise ConfigError(f"stop {stop} before start {start}")
        self.k = k
        self.start = start
        self.stop = stop

    def k_at(self, t: float) -> int:
        return self.k if self.start <= t < self.stop else 0

    def next_change(self, t: float) -> float:
        if t < self.start:
            return self.start
        if t < self.stop:
            return self.stop
        return math.inf

    def segment_start(self, t: float) -> float:
        if t < self.start:
            return 0.0
        if t < self.stop:
            return self.start
        return self.stop if math.isfinite(self.stop) else self.start

    def __repr__(self) -> str:
        return f"ConstantLoad(k={self.k}, start={self.start}, stop={self.stop})"


class OscillatingLoad(LoadGenerator):
    """``k`` competing tasks for ``duration`` out of every ``period`` seconds.

    Matches the Figure 9 experiment: period 20 s, duration 10 s.
    """

    def __init__(
        self,
        k: int = 1,
        period: float = 20.0,
        duration: float = 10.0,
        start: float = 0.0,
    ):
        if k < 0:
            raise ConfigError(f"competing task count must be >= 0, got {k}")
        if period <= 0 or not 0 < duration <= period:
            raise ConfigError(
                f"need 0 < duration <= period, got duration={duration} period={period}"
            )
        self.k = k
        self.period = period
        self.duration = duration
        self.start = start

    def k_at(self, t: float) -> int:
        if t < self.start:
            return 0
        phase = (t - self.start) % self.period
        return self.k if phase < self.duration else 0

    def next_change(self, t: float) -> float:
        if t < self.start:
            return self.start
        elapsed = t - self.start
        cycle = math.floor(elapsed / self.period)
        phase = elapsed - cycle * self.period
        if phase < self.duration:
            return self.start + cycle * self.period + self.duration
        return self.start + (cycle + 1) * self.period

    def segment_start(self, t: float) -> float:
        if t < self.start:
            return 0.0
        elapsed = t - self.start
        cycle = math.floor(elapsed / self.period)
        phase = elapsed - cycle * self.period
        if phase < self.duration:
            return self.start + cycle * self.period
        return self.start + cycle * self.period + self.duration

    def __repr__(self) -> str:
        return (
            f"OscillatingLoad(k={self.k}, period={self.period}, "
            f"duration={self.duration}, start={self.start})"
        )


class StepLoad(LoadGenerator):
    """Arbitrary piecewise-constant load given as ``[(time, k), ...]``.

    ``k`` holds from each listed time until the next one; before the first
    entry the load is zero.
    """

    def __init__(self, steps: Sequence[tuple[float, int]]):
        if not steps:
            raise ConfigError("StepLoad needs at least one step")
        times = [t for t, _ in steps]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigError("StepLoad times must be strictly increasing")
        if any(k < 0 for _, k in steps):
            raise ConfigError("StepLoad counts must be >= 0")
        self._times = list(times)
        self._ks = [k for _, k in steps]

    def k_at(self, t: float) -> int:
        i = bisect_right(self._times, t) - 1
        return self._ks[i] if i >= 0 else 0

    def next_change(self, t: float) -> float:
        i = bisect_right(self._times, t)
        return self._times[i] if i < len(self._times) else math.inf

    def segment_start(self, t: float) -> float:
        i = bisect_right(self._times, t) - 1
        return self._times[i] if i >= 0 else 0.0

    def __repr__(self) -> str:
        return f"StepLoad({list(zip(self._times, self._ks))!r})"


class CompositeLoad(LoadGenerator):
    """Sum of several load generators (independent competing users)."""

    def __init__(self, generators: Sequence[LoadGenerator]):
        if not generators:
            raise ConfigError("CompositeLoad needs at least one generator")
        self._gens = list(generators)

    def k_at(self, t: float) -> int:
        return sum(g.k_at(t) for g in self._gens)

    def next_change(self, t: float) -> float:
        return min(g.next_change(t) for g in self._gens)

    def segment_start(self, t: float) -> float:
        return max(g.segment_start(t) for g in self._gens)

    def __repr__(self) -> str:
        return f"CompositeLoad({self._gens!r})"
