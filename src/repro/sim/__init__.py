"""Discrete-event simulator of a network of workstations.

This subpackage is the substitute for the paper's Nectar testbed: it models
processors with an OS scheduling quantum and time-varying competing loads,
a point-to-point network with latency/bandwidth/per-message CPU costs, and
application tasks written as Python generators that issue simulator
"syscalls" (:class:`Compute`, :class:`Send`, :class:`Recv`, ...).

Typical use::

    from repro.sim import Cluster, Compute, Send, Recv
    from repro.config import ClusterSpec

    def worker(ctx):
        yield Compute(1_000_000)          # one second of dedicated CPU
        yield Send(dst=1, tag="hi", payload=42, nbytes=8)

    cluster = Cluster(ClusterSpec(n_slaves=2))
    cluster.spawn(0, worker)
    cluster.run()
"""

from .engine import BatchEngine, Engine
from .events import Message
from .load import (
    CompositeLoad,
    ConstantLoad,
    LoadGenerator,
    LoadTrace,
    NoLoad,
    OscillatingLoad,
    StepLoad,
)
from .machine import Cluster, TaskContext
from .network import (
    Fabric,
    FatTreeTopology,
    Mesh2DTopology,
    RingTopology,
    Topology,
    TwoClusterTopology,
    build_topology,
)
from .process import Compute, ComputeBatch, Poll, Recv, Send, Sleep, Now
from .processor import Processor
from .rusage import RusageReport
from .trace import Trace

__all__ = [
    "Engine",
    "BatchEngine",
    "Message",
    "LoadGenerator",
    "LoadTrace",
    "NoLoad",
    "ConstantLoad",
    "OscillatingLoad",
    "StepLoad",
    "CompositeLoad",
    "Cluster",
    "TaskContext",
    "Topology",
    "RingTopology",
    "Mesh2DTopology",
    "FatTreeTopology",
    "TwoClusterTopology",
    "build_topology",
    "Fabric",
    "Compute",
    "ComputeBatch",
    "Send",
    "Recv",
    "Poll",
    "Sleep",
    "Now",
    "Processor",
    "RusageReport",
    "Trace",
]
