"""Point-to-point network: mailboxes, wire delays, and topologies.

The default model is a Nectar-style crossbar: any pair of processors has
a dedicated path (no contention), characterised by latency and bandwidth,
with per-message CPU overheads charged on each side through the processor
model (see :class:`repro.config.NetworkSpec`).

With a :class:`repro.config.TopologySpec` configured on the cluster,
messages instead traverse an explicit interconnect — ring, 2-D mesh,
fat-tree, or a WAN-linked two-cluster system — via a :class:`Fabric`
that routes over directed links, sums per-hop latencies, divides by
per-link bandwidth, and (optionally) serializes competing messages on
each link with deterministic store-and-forward busy-time bookkeeping.
Topologies also expose the neighbor sets used by the decentralized
diffusion balancer (see :mod:`repro.baselines.diffusion`).
"""

from __future__ import annotations

import math

from ..config import NetworkSpec, TopologySpec
from ..errors import ConfigError
from ..fastcopy import snapshot_payload
from ..obs import NULL_RECORDER, Recorder
from .events import Message

__all__ = [
    "Mailbox",
    "snapshot_payload",
    "Topology",
    "RingTopology",
    "Mesh2DTopology",
    "FatTreeTopology",
    "TwoClusterTopology",
    "build_topology",
    "Fabric",
]


class Mailbox:
    """Per-processor FIFO of delivered messages with selective receive.

    With an enabled :class:`~repro.obs.Recorder`, each delivery emits a
    ``net/msg`` span covering the message's wire time (send to arrival).

    Storage is a flat list with index-recycled slots rather than a
    deque: a selective ``take`` from the middle leaves a ``None`` hole
    instead of shifting every later element, the head index rides past
    consumed slots, and the backing list is compacted only when holes
    dominate.  FIFO order (oldest matching message first) is unchanged.
    """

    __slots__ = ("pid", "_obs", "_queue", "_head", "_size")

    def __init__(self, pid: int = -1, recorder: Recorder | None = None) -> None:
        self.pid = pid
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._queue: list[Message | None] = []
        self._head = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def deliver(self, msg: Message) -> None:
        """Append an arrived message."""
        self._queue.append(msg)
        self._size += 1
        if self._obs.enabled:
            t_arrived = max(msg.t_arrived, msg.t_sent)
            self._obs.emit_span(
                "net",
                "msg",
                msg.t_sent,
                t_arrived,
                pid=msg.dst,
                value=float(msg.nbytes),
                meta={"src": msg.src, "tag": msg.tag, "queued": self._size},
            )

    @staticmethod
    def _matches(msg: Message, src: int | None, tag: str | None) -> bool:
        return (src is None or msg.src == src) and (tag is None or msg.tag == tag)

    def take(self, src: int | None = None, tag: str | None = None) -> Message | None:
        """Remove and return the oldest matching message, or ``None``."""
        # The match predicate is inlined (see ``_matches``): take() runs
        # once per receive and the call overhead is measurable.
        queue = self._queue
        for i in range(self._head, len(queue)):
            msg = queue[i]
            if msg is None:
                continue
            if (src is None or msg.src == src) and (tag is None or msg.tag == tag):
                queue[i] = None
                size = self._size - 1
                self._size = size
                if size == 0:
                    queue.clear()
                    self._head = 0
                    return msg
                if i == self._head:
                    # Slide the head past the hole run it now leads.
                    head = i + 1
                    n = len(queue)
                    while head < n and queue[head] is None:
                        head += 1
                    self._head = head
                    # Recycle the consumed prefix once it dominates.
                    if head > 32 and head * 2 >= n:
                        del queue[:head]
                        self._head = 0
                elif len(queue) - size > 32 and (len(queue) - size) * 2 >= len(
                    queue
                ):
                    # Mid-queue holes dominate: compact, keeping order.
                    self._queue = [m for m in queue[self._head:] if m is not None]
                    self._head = 0
                return msg
        return None

    def peek(self, src: int | None = None, tag: str | None = None) -> Message | None:
        """Return (without removing) the oldest matching message."""
        for i in range(self._head, len(self._queue)):
            msg = self._queue[i]
            if msg is None:
                continue
            if (src is None or msg.src == src) and (tag is None or msg.tag == tag):
                return msg
        return None


# ----------------------------------------------------------------------
# Interconnect topologies
# ----------------------------------------------------------------------

# A directed link is identified by a small tuple; the fabric keys its
# latency/bandwidth tables and busy-time bookkeeping on these ids.
Link = tuple

class Topology:
    """An interconnect over ``n_members`` member nodes.

    Subclasses define the member adjacency used by decentralized
    balancers (:meth:`neighbors`) and the directed-link routes used by
    the :class:`Fabric` to price messages (:meth:`route`,
    :meth:`link_latency`, :meth:`link_bandwidth`).
    """

    kind = "abstract"

    def __init__(self, n_members: int, spec: TopologySpec, net: NetworkSpec):
        if n_members < 2:
            raise ConfigError(
                f"{self.kind} topology needs >= 2 members, got {n_members}"
            )
        self.n_members = n_members
        self.spec = spec
        self.hop_latency = (
            spec.hop_latency if spec.hop_latency is not None else net.latency
        )
        self.base_bandwidth = net.bandwidth

    def neighbors(self, node: int) -> tuple[int, ...]:
        raise NotImplementedError

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        """Directed links traversed from member ``src`` to member ``dst``."""
        raise NotImplementedError

    def link_latency(self, link: Link) -> float:
        return self.hop_latency

    def link_bandwidth(self, link: Link) -> float:
        return self.base_bandwidth

    def hops(self, src: int, dst: int) -> int:
        """Number of links on the ``src`` -> ``dst`` route."""
        return len(self.route(src, dst))

    def _check_member(self, node: int) -> None:
        if not 0 <= node < self.n_members:
            raise ConfigError(
                f"{self.kind} member {node} out of range 0..{self.n_members - 1}"
            )


class RingTopology(Topology):
    """Members on a bidirectional ring; routes walk the shorter arc."""

    kind = "ring"

    def neighbors(self, node: int) -> tuple[int, ...]:
        self._check_member(node)
        n = self.n_members
        if n == 2:
            return ((node + 1) % 2,)
        return ((node - 1) % n, (node + 1) % n)

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        self._check_member(src)
        self._check_member(dst)
        if src == dst:
            return ()
        n = self.n_members
        fwd = (dst - src) % n
        step = 1 if fwd <= n - fwd else -1  # tie goes clockwise
        links = []
        node = src
        while node != dst:
            nxt = (node + step) % n
            links.append(("r", node, nxt))
            node = nxt
        return tuple(links)


class Mesh2DTopology(Topology):
    """Members on a ``rows x cols`` grid with dimension-ordered routing.

    The grid is the most-square factorization of the member count
    (``rows * cols == n_members``); routes go vertically first, then
    horizontally, over directed nearest-neighbor links.
    """

    kind = "mesh2d"

    def __init__(self, n_members: int, spec: TopologySpec, net: NetworkSpec):
        super().__init__(n_members, spec, net)
        rows = int(math.isqrt(n_members))
        while rows > 1 and n_members % rows:
            rows -= 1
        self.rows = rows
        self.cols = n_members // rows

    def _rc(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    def neighbors(self, node: int) -> tuple[int, ...]:
        self._check_member(node)
        r, c = self._rc(node)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            rr, cc = r + dr, c + dc
            if 0 <= rr < self.rows and 0 <= cc < self.cols:
                out.append(rr * self.cols + cc)
        return tuple(out)

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        self._check_member(src)
        self._check_member(dst)
        if src == dst:
            return ()
        r0, c0 = self._rc(src)
        r1, c1 = self._rc(dst)
        links = []
        node = src
        while r0 != r1:
            r0 += 1 if r1 > r0 else -1
            nxt = r0 * self.cols + c0
            links.append(("m", node, nxt))
            node = nxt
        while c0 != c1:
            c0 += 1 if c1 > c0 else -1
            nxt = r0 * self.cols + c0
            links.append(("m", node, nxt))
            node = nxt
        return tuple(links)


class FatTreeTopology(Topology):
    """Members are leaves of a radix-``k`` switch tree.

    Routes climb to the lowest common ancestor switch and descend; the
    link between tree level ``l`` and ``l + 1`` has bandwidth
    ``base * fat_factor**l`` (``fat_factor == radix`` is full bisection,
    smaller values model oversubscription).  The diffusion neighbor set
    of a leaf is its siblings under the same edge switch plus the
    same-position leaf in each adjacent switch group (a ring of groups),
    so decentralized exchange has both cheap local and one inter-group
    edge per leaf.
    """

    kind = "fat_tree"

    def __init__(self, n_members: int, spec: TopologySpec, net: NetworkSpec):
        super().__init__(n_members, spec, net)
        self.radix = spec.radix
        self.fat_factor = spec.fat_factor
        # Entity counts per level: level 0 = leaves, then switches.
        counts = [n_members]
        while counts[-1] > 1:
            counts.append(-(-counts[-1] // self.radix))
        self.levels = len(counts) - 1  # switch levels above the leaves

    def n_groups(self) -> int:
        return -(-self.n_members // self.radix)

    def neighbors(self, node: int) -> tuple[int, ...]:
        self._check_member(node)
        k = self.radix
        group, pos = divmod(node, k)
        out = [
            leaf
            for leaf in range(group * k, min((group + 1) * k, self.n_members))
            if leaf != node
        ]
        ngroups = self.n_groups()
        if ngroups > 1:
            for g in ((group - 1) % ngroups, (group + 1) % ngroups):
                if g == group:
                    continue
                peer = g * k + pos
                if peer < self.n_members and peer not in out:
                    out.append(peer)
        return tuple(out)

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        self._check_member(src)
        self._check_member(dst)
        if src == dst:
            return ()
        k = self.radix
        up, down = [], []
        a, b = src, dst
        level = 0
        while a // k != b // k:
            up.append(("fu", level, a))
            down.append(("fd", level, b))
            a //= k
            b //= k
            level += 1
        up.append(("fu", level, a))
        down.append(("fd", level, b))
        return tuple(up + list(reversed(down)))

    def link_bandwidth(self, link: Link) -> float:
        return self.base_bandwidth * (self.fat_factor ** link[1])


class TwoClusterTopology(Topology):
    """Two crossbar clusters joined by one shared WAN link.

    Members ``< split`` form cluster A, the rest cluster B.  Intra-cluster
    messages use a dedicated per-pair path (crossbar); inter-cluster
    messages traverse the sender's access port plus the shared WAN link,
    whose latency may be asymmetric (``wan_latency`` A->B vs
    ``wan_latency_back`` B->A).  Diffusion neighbors form a ring within
    each cluster plus one gateway edge between member 0 and member
    ``split``.
    """

    kind = "two_cluster"

    def __init__(self, n_members: int, spec: TopologySpec, net: NetworkSpec):
        super().__init__(n_members, spec, net)
        split = spec.split if spec.split is not None else n_members // 2
        if not 1 <= split < n_members:
            raise ConfigError(
                f"two_cluster split {split} must be in 1..{n_members - 1}"
            )
        self.split = split
        self.wan_latency = spec.wan_latency
        self.wan_latency_back = (
            spec.wan_latency_back
            if spec.wan_latency_back is not None
            else spec.wan_latency
        )
        self.wan_bandwidth = spec.wan_bandwidth

    def cluster_of(self, node: int) -> int:
        return 0 if node < self.split else 1

    def neighbors(self, node: int) -> tuple[int, ...]:
        self._check_member(node)
        lo, hi = (
            (0, self.split) if node < self.split else (self.split, self.n_members)
        )
        size = hi - lo
        out = []
        if size > 1:
            i = node - lo
            if size == 2:
                out = [lo + (i + 1) % 2]
            else:
                out = [lo + (i - 1) % size, lo + (i + 1) % size]
        if node == 0:
            out.append(self.split)
        elif node == self.split:
            out.append(0)
        return tuple(out)

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        self._check_member(src)
        self._check_member(dst)
        if src == dst:
            return ()
        if self.cluster_of(src) == self.cluster_of(dst):
            return (("x", src, dst),)
        return (("acc", src), ("wan", self.cluster_of(src)))

    def link_latency(self, link: Link) -> float:
        if link[0] == "wan":
            return self.wan_latency if link[1] == 0 else self.wan_latency_back
        return self.hop_latency

    def link_bandwidth(self, link: Link) -> float:
        if link[0] == "wan":
            return self.wan_bandwidth
        return self.base_bandwidth


_TOPOLOGIES = {
    "ring": RingTopology,
    "mesh2d": Mesh2DTopology,
    "fat_tree": FatTreeTopology,
    "two_cluster": TwoClusterTopology,
}


def build_topology(
    spec: TopologySpec, n_members: int, net: NetworkSpec | None = None
) -> Topology:
    """Instantiate the topology described by ``spec`` over ``n_members``."""
    cls = _TOPOLOGIES.get(spec.kind)
    if cls is None:
        raise ConfigError(f"unknown topology kind {spec.kind!r}")
    return cls(n_members, spec, net if net is not None else NetworkSpec())


class Fabric:
    """Prices message transfers over a :class:`Topology`.

    Processors that are fabric members (pid < ``n_members``) sit on their
    own node; other processors (masters, sub-masters) are attached to a
    member node via ``attach`` (default member 0), sharing its network
    position.  Same-node transfers cost the crossbar base time.

    With contention enabled, each directed link serializes: a message
    reaching a busy link queues behind the messages already on it
    (store-and-forward, deterministic busy-time bookkeeping).  Without
    contention, arrival is departure plus the route's summed latency and
    per-link byte times — O(1) per message after the route is cached.
    """

    def __init__(
        self,
        topology: Topology,
        net: NetworkSpec,
        attach: dict[int, int] | None = None,
    ):
        self.topology = topology
        self.base_latency = net.latency
        self.base_bandwidth = net.bandwidth
        self.contention = topology.spec.contention
        self._attach = dict(attach or {})
        for pid, node in self._attach.items():
            topology._check_member(node)
        self._routes: dict[tuple[int, int], tuple[Link, ...]] = {}
        # (summed latency, summed 1/bandwidth) per node pair, for the
        # contention-free fast path.
        self._price: dict[tuple[int, int], tuple[float, float]] = {}
        self._busy: dict[Link, float] = {}

    def node_of(self, pid: int) -> int:
        if pid < self.topology.n_members:
            return pid
        return self._attach.get(pid, 0)

    def arrival(self, src_pid: int, dst_pid: int, nbytes: int, t: float) -> float:
        """Arrival time of a message departing node ports at time ``t``."""
        src = self.node_of(src_pid)
        dst = self.node_of(dst_pid)
        if src == dst:
            return t + (self.base_latency + nbytes / self.base_bandwidth)
        key = (src, dst)
        topo = self.topology
        route = self._routes.get(key)
        if route is None:
            route = topo.route(src, dst)
            self._routes[key] = route
            self._price[key] = (
                sum(topo.link_latency(lk) for lk in route),
                sum(1.0 / topo.link_bandwidth(lk) for lk in route),
            )
        if not self.contention:
            lat, inv_bw = self._price[key]
            return t + lat + nbytes * inv_bw
        busy = self._busy
        for lk in route:
            start = busy.get(lk, 0.0)
            if start < t:
                start = t
            t = start + topo.link_latency(lk) + nbytes / topo.link_bandwidth(lk)
            busy[lk] = t
        return t
