"""Point-to-point network: mailboxes with tag matching and wire delays.

Models a Nectar-style crossbar: any pair of processors has a dedicated
path (no contention), characterised by latency and bandwidth, with
per-message CPU overheads charged on each side through the processor
model (see :class:`repro.config.NetworkSpec`).
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Any

import numpy as np

from .events import Message

__all__ = ["Mailbox", "snapshot_payload"]


def snapshot_payload(payload: Any) -> Any:
    """Copy mutable numeric state out of a payload at send time.

    NumPy arrays (including arrays nested one level deep in dicts, lists
    and tuples) are copied; other objects are passed through unchanged.
    This mirrors a real network, where the bytes leave the sender's
    buffers at send time.
    """
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, dict):
        return {k: snapshot_payload(v) for k, v in payload.items()}
    if isinstance(payload, (list, tuple)):
        cls = type(payload)
        copied = [snapshot_payload(v) for v in payload]
        return cls(copied) if cls is not tuple else tuple(copied)
    if hasattr(payload, "__dict__") and getattr(payload, "_snapshot_deep", False):
        return copy.deepcopy(payload)
    return payload


class Mailbox:
    """Per-processor FIFO of delivered messages with selective receive."""

    def __init__(self) -> None:
        self._queue: deque[Message] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def deliver(self, msg: Message) -> None:
        """Append an arrived message."""
        self._queue.append(msg)

    @staticmethod
    def _matches(msg: Message, src: int | None, tag: str | None) -> bool:
        return (src is None or msg.src == src) and (tag is None or msg.tag == tag)

    def take(self, src: int | None = None, tag: str | None = None) -> Message | None:
        """Remove and return the oldest matching message, or ``None``."""
        for i, msg in enumerate(self._queue):
            if self._matches(msg, src, tag):
                del self._queue[i]
                return msg
        return None

    def peek(self, src: int | None = None, tag: str | None = None) -> Message | None:
        """Return (without removing) the oldest matching message."""
        for msg in self._queue:
            if self._matches(msg, src, tag):
                return msg
        return None
