"""Point-to-point network: mailboxes with tag matching and wire delays.

Models a Nectar-style crossbar: any pair of processors has a dedicated
path (no contention), characterised by latency and bandwidth, with
per-message CPU overheads charged on each side through the processor
model (see :class:`repro.config.NetworkSpec`).
"""

from __future__ import annotations

from collections import deque

from ..fastcopy import snapshot_payload
from ..obs import NULL_RECORDER, Recorder
from .events import Message

__all__ = ["Mailbox", "snapshot_payload"]


class Mailbox:
    """Per-processor FIFO of delivered messages with selective receive.

    With an enabled :class:`~repro.obs.Recorder`, each delivery emits a
    ``net/msg`` span covering the message's wire time (send to arrival).
    """

    __slots__ = ("pid", "_obs", "_queue")

    def __init__(self, pid: int = -1, recorder: Recorder | None = None) -> None:
        self.pid = pid
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._queue: deque[Message] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def deliver(self, msg: Message) -> None:
        """Append an arrived message."""
        self._queue.append(msg)
        if self._obs.enabled:
            t_arrived = max(msg.t_arrived, msg.t_sent)
            self._obs.emit_span(
                "net",
                "msg",
                msg.t_sent,
                t_arrived,
                pid=msg.dst,
                value=float(msg.nbytes),
                meta={"src": msg.src, "tag": msg.tag, "queued": len(self._queue)},
            )

    @staticmethod
    def _matches(msg: Message, src: int | None, tag: str | None) -> bool:
        return (src is None or msg.src == src) and (tag is None or msg.tag == tag)

    def take(self, src: int | None = None, tag: str | None = None) -> Message | None:
        """Remove and return the oldest matching message, or ``None``."""
        # The match predicate is inlined (see ``_matches``): take() runs
        # once per receive and the call overhead is measurable.
        for i, msg in enumerate(self._queue):
            if (src is None or msg.src == src) and (tag is None or msg.tag == tag):
                del self._queue[i]
                return msg
        return None

    def peek(self, src: int | None = None, tag: str | None = None) -> Message | None:
        """Return (without removing) the oldest matching message."""
        for msg in self._queue:
            if (src is None or msg.src == src) and (tag is None or msg.tag == tag):
                return msg
        return None
