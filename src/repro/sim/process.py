"""Simulator syscalls.

Application tasks are Python generator functions.  They interact with the
simulator by ``yield``-ing one of the request objects below; the machine
layer satisfies the request and resumes the generator with the result.

================  =====================================================
``Compute``       consume CPU (``ops`` at the processor's speed);
                  optionally run a real numeric kernel eagerly for
                  correctness.
``ComputeBatch``  consume a whole sequence of compute segments in one
                  syscall; semantically a chain of ``Compute`` yields.
``Send``          asynchronous message send (returns immediately after
                  the sender's per-message CPU overhead).
``Recv``          blocking selective receive -> :class:`Message`.
``Poll``          non-blocking receive -> :class:`Message` or ``None``.
``Sleep``         advance virtual time without consuming CPU.
``Now``           -> current virtual time (float).
================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = ["Compute", "ComputeBatch", "Send", "Recv", "Poll", "Sleep", "Now"]


@dataclass(slots=True)
class Compute:
    """Consume ``ops`` operations of CPU; run ``fn()`` eagerly if given.

    ``fn`` is executed when the computation *starts* in virtual time.
    Because tasks only exchange data through messages (whose payloads are
    snapshots), eager execution is causally consistent.
    """

    ops: float
    fn: Callable[[], Any] | None = None


@dataclass(slots=True)
class ComputeBatch:
    """Consume a sequence of compute segments in one syscall.

    ``yield ComputeBatch(ops)`` is semantically identical to
    ``for o in ops: yield Compute(o)`` — the same virtual finish times,
    the same per-segment CPU accounting and observability spans, and the
    same per-segment event count — except the task's generator is only
    resumed once, after the final segment.  That makes the whole chain a
    single generator round trip, which the batch engine can advance
    analytically (array-wise over the load staircase) when nothing else
    is scheduled inside the chain's time window.

    ``fns``, when given, must have one entry per segment; each non-None
    callable runs eagerly when its segment *starts* in virtual time,
    exactly like ``Compute.fn``.
    """

    ops: Sequence[float]
    fns: Sequence[Callable[[], Any] | None] | None = None


@dataclass(slots=True)
class Send:
    """Send ``payload`` to processor ``dst`` under ``tag``.

    Costs the sender ``NetworkSpec.send_cpu`` seconds of CPU; the message
    arrives at the destination mailbox after wire latency + size/bandwidth.
    """

    dst: int
    tag: str
    payload: Any = None
    nbytes: int = 0


@dataclass(slots=True)
class Recv:
    """Block until a message matching ``(src, tag)`` is available.

    ``None`` matches anything.  Costs the receiver ``NetworkSpec.recv_cpu``
    seconds of CPU once a match is found.
    """

    src: int | None = None
    tag: str | None = None


@dataclass(slots=True)
class Poll:
    """Non-blocking variant of :class:`Recv`; resumes with ``None`` if no
    matching message is queued."""

    src: int | None = None
    tag: str | None = None


@dataclass(slots=True)
class Sleep:
    """Yield the CPU for ``dt`` seconds of virtual time."""

    dt: float


class Now:
    """Request the current virtual time."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Now()"
