"""Message record passed between simulated tasks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]


@dataclass(slots=True)
class Message:
    """A message in flight or delivered to a mailbox.

    Attributes:
        src: sender processor id.
        dst: destination processor id.
        tag: application-level tag used for selective receive.
        payload: arbitrary Python object (numpy arrays are snapshot-copied
            at send time so later mutation by the sender cannot leak).
        nbytes: modelled wire size; determines transfer time.
        t_sent: virtual time the send completed on the sender's CPU.
        t_arrived: virtual time the message entered the destination mailbox.
        seq: per-(src, dst) wire sequence number, stamped only when fault
            injection is active; lets the receiver deduplicate copies.
            ``-1`` means unsequenced (fault-free fast path).
    """

    src: int
    dst: int
    tag: str
    payload: Any = None
    nbytes: int = 0
    t_sent: float = field(default=0.0, compare=False)
    t_arrived: float = field(default=0.0, compare=False)
    seq: int = field(default=-1, compare=False)

    def __repr__(self) -> str:  # keep payloads out of debug output
        return (
            f"Message({self.src}->{self.dst}, tag={self.tag!r}, "
            f"nbytes={self.nbytes}, t={self.t_arrived:.6f})"
        )
