"""Message record passed between simulated tasks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]


@dataclass(slots=True)
class Message:
    """A message in flight or delivered to a mailbox.

    Attributes:
        src: sender processor id.
        dst: destination processor id.
        tag: application-level tag used for selective receive.
        payload: arbitrary Python object (numpy arrays are snapshot-copied
            at send time so later mutation by the sender cannot leak).
        nbytes: modelled wire size; determines transfer time.
        t_sent: virtual time the send completed on the sender's CPU.
        t_arrived: virtual time the message entered the destination mailbox.
        seq: per-(src, dst) wire sequence number, stamped only when fault
            injection is active; lets the receiver deduplicate copies.
            ``-1`` means unsequenced (fault-free fast path).

    Pooling contract (batch engine): the batch cluster recycles message
    shells through a freelist instead of allocating one per send.  A
    shell handed to a receiving task stays valid until that task's
    *next* receive completes — a task that yielded another ``Recv`` or
    ``Poll`` has, by construction, finished reading the previous
    message, so the shell it held is refilled for a later send.  Code
    that retains ``Message`` objects across receives (none in this
    repository does) must keep the payload, not the shell, or run with
    ``engine="reference"`` where every message is a fresh allocation.
    """

    src: int
    dst: int
    tag: str
    payload: Any = None
    nbytes: int = 0
    t_sent: float = field(default=0.0, compare=False)
    t_arrived: float = field(default=0.0, compare=False)
    seq: int = field(default=-1, compare=False)

    def fill(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: Any,
        nbytes: int,
        t_sent: float,
    ) -> "Message":
        """Reinitialize a pooled shell in place (batch-engine freelist).

        Resets every field the constructor would, including the
        ``t_arrived`` / ``seq`` defaults, so a recycled shell is
        indistinguishable from ``Message(src, dst, tag, ...)``.
        """
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.t_sent = t_sent
        self.t_arrived = 0.0
        self.seq = -1
        return self

    def __repr__(self) -> str:  # keep payloads out of debug output
        return (
            f"Message({self.src}->{self.dst}, tag={self.tag!r}, "
            f"nbytes={self.nbytes}, t={self.t_arrived:.6f})"
        )
