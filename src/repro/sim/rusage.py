"""Per-task CPU accounting — the simulator's ``getrusage`` equivalent.

The paper evaluates load balancing with the resource-usage efficiency

    efficiency = T_seq / sum_p (T_elapsed - T_competing(p))

where ``T_competing`` is the CPU time consumed by competing tasks on each
slave processor (measured with ``getrusage`` on the real system).  The
simulator computes both terms exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["TaskUsage", "RusageReport"]


@dataclass(frozen=True)
class TaskUsage:
    """CPU accounting for one processor over a run."""

    pid: int
    elapsed: float
    app_cpu: float
    competing_cpu: float

    @property
    def available_cpu(self) -> float:
        """Elapsed time minus competing CPU — the denominator contribution
        in the paper's efficiency formula."""
        return max(0.0, self.elapsed - self.competing_cpu)

    @property
    def idle_cpu(self) -> float:
        """Time neither the app nor competitors used (waiting, comm)."""
        return max(0.0, self.elapsed - self.app_cpu - self.competing_cpu)


@dataclass(frozen=True)
class RusageReport:
    """Accounting for a whole cluster at ``t_end``."""

    usages: Sequence[TaskUsage]
    t_end: float

    def usage_for(self, pid: int) -> TaskUsage:
        for u in self.usages:
            if u.pid == pid:
                return u
        raise KeyError(pid)

    def available_cpu_total(self, pids: Sequence[int]) -> float:
        """Sum of available CPU over the given processors."""
        return sum(self.usage_for(p).available_cpu for p in pids)

    def efficiency(self, sequential_time: float, pids: Sequence[int]) -> float:
        """The paper's efficiency metric over the slave processors."""
        avail = self.available_cpu_total(pids)
        if avail <= 0:
            return 0.0
        return sequential_time / avail
