"""Finite-state abstraction of the failure-tolerant DLB control plane.

Extends the centralized-plane model (``runtime/protocol_model.py``)
with the FT recovery protocol of ``runtime/master.py`` /
``runtime/slave.py``:

- **Crash nondeterminism.**  Each slave named in ``crashable`` may
  crash at any live point (running, blocked on an instruction, or
  waiting for moved work).  A crash emits an ``fd.crash`` oracle
  message to the master from a pseudo-source ``fd`` — the model of an
  *accurate* failure detector: detection may race arbitrarily with the
  victim's own in-flight messages (separate channel), but never accuses
  a live process.  Suspicion of live processes (inaccurate detection)
  is handled by the runtime's suspicion grace logic and is out of this
  model's scope.
- **Declare-dead resolution.**  On ``fd.crash`` the master tombstones
  the victim, voids its queued orders, and resolves every in-flight
  move touching it exactly like ``Master.declare_dead``: the surviving
  peer gets a cancel control and the move's units are *parked*
  (``contested``) until the peer's ack reports whether the move was
  ``applied`` (units live at/through the peer) or ``canceled`` (units
  reclaimed to the master's pool).  Non-contested units owned by the
  victim are swept to the pool — unless the victim had banked its final
  result, which survives it (the FT early-result protocol).
- **Regrant.**  Pooled units are granted to a live slave (``lb.ctrl``
  grant + explicit ack); the release barrier additionally waits for an
  empty pool, no contested moves, and no unacknowledged grants.

``MUTATIONS`` seeds recovery-protocol corruptions the checker must
catch: dropping the cancel leg (deadlock), sweeping contested units
(duplication), and forgetting to regrant (unit loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, NamedTuple

from ..analysis.model.core import Model, Msg, Step, selective
from ..runtime.protocol_model import (
    MASTER,
    CentralConfig,
    CentralMaster,
    CentralSlave,
    MasterLocal,
    MoveRec,
    SlaveLocal,
    _bank_set,
    _terminal_map,
    _view_adjust,
    _view_get,
    unit_conservation,
)

__all__ = ["FTConfig", "MUTATIONS", "build_model"]

#: Seeded recovery-protocol corruptions for the checker's test suite.
MUTATIONS: dict[str, str] = {
    "drop_cancel": (
        "declare_dead never cancels in-flight moves with the survivor"
    ),
    "sweep_contested": (
        "declare_dead sweeps contested in-flight units into the pool"
    ),
    "forget_regrant": "recovered units are dropped instead of pooled",
}


@dataclass(frozen=True)
class FTConfig(CentralConfig):
    """Centralized configuration plus a crash fault script."""

    crashable: tuple[str, ...] = ("s1",)


class FTSlave(CentralSlave):
    """Centralized slave plus crash and ``lb.ctrl`` handling."""

    def __init__(self, name: str, cfg: FTConfig, index: int):
        super().__init__(name, cfg, index)
        self.crashable = name in cfg.crashable

    def _ctrl_steps(
        self, s: SlaveLocal, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        for msg in selective(pending, lambda m: m.tag == "lb.ctrl"):
            payload = msg.payload
            assert isinstance(payload, tuple)
            kind = payload[0]
            if kind == "grant":
                units = frozenset(payload[1])
                yield Step(
                    actor=self.name,
                    label=f"ctrl(grant {payload[1]})",
                    next_state=s._replace(
                        owned=s.owned | units, remaining=s.remaining | units
                    ),
                    consumed=msg,
                    sends=(
                        Msg(
                            self.name,
                            MASTER,
                            "lb.ack",
                            ("ack_grant", payload[1]),
                        ),
                    ),
                )
            elif kind == "cancel":
                mid = payload[1]
                if mid in s.moved:
                    # The move already went through on this side.
                    yield Step(
                        actor=self.name,
                        label=f"ctrl(cancel m{mid}: already applied)",
                        next_state=s,
                        consumed=msg,
                        sends=(
                            Msg(
                                self.name,
                                MASTER,
                                "lb.ack",
                                ("ack", mid, "applied"),
                            ),
                        ),
                    )
                else:
                    nxt = s._replace(canceled=s.canceled | {mid})
                    if s.phase == "wait_move" and s.wait_mid == mid:
                        nxt = nxt._replace(phase="run", wait_mid=-1)
                    yield Step(
                        actor=self.name,
                        label=f"ctrl(cancel m{mid}: canceled)",
                        next_state=nxt,
                        consumed=msg,
                        sends=(
                            Msg(
                                self.name,
                                MASTER,
                                "lb.ack",
                                ("ack", mid, "canceled"),
                            ),
                        ),
                    )
            else:  # pragma: no cover - malformed model
                raise ValueError(f"unknown control {payload!r}")

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        s = local
        assert isinstance(s, SlaveLocal)
        if s.phase in ("done", "crashed"):
            return
        if self.crashable:
            yield Step(
                actor=self.name,
                label="crash",
                next_state=s._replace(phase="crashed"),
                sends=(Msg("fd", MASTER, "fd.crash", (self.name,)),),
            )
        yield from self._ctrl_steps(s, pending)
        yield from super().steps(local, pending)


class FTMasterLocal(NamedTuple):
    phase: str  # run | final
    view: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...]
    parked: frozenset[str]
    pending: tuple[tuple[str, tuple[Hashable, ...]], ...]
    outstanding: tuple[MoveRec, ...]
    moves_left: int
    next_mid: int
    banked: tuple[tuple[str, tuple[int, ...]], ...]
    dead: frozenset[str]
    pool: frozenset[int]
    contested: tuple[MoveRec, ...]  # canceled, awaiting the peer's ack
    granted: tuple[tuple[str, tuple[int, ...]], ...]  # unacked grants


class FTMaster(CentralMaster):
    """Centralized master plus declare-dead recovery and regranting."""

    def __init__(self, cfg: FTConfig):
        super().__init__(cfg)
        self.ft_cfg = cfg

    def init(self) -> Hashable:
        base = super().init()
        assert isinstance(base, MasterLocal)
        return FTMasterLocal(
            *base,
            dead=frozenset(),
            pool=frozenset(),
            contested=(),
            granted=(),
        )

    # -- hooks -----------------------------------------------------------

    def _live(self, m: MasterLocal) -> frozenset[str]:
        dead = getattr(m, "dead", frozenset())
        return frozenset(self.cfg.slave_names()) - dead

    def _extra_release_blockers(self, m: MasterLocal) -> bool:
        return bool(
            getattr(m, "pool", None)
            or getattr(m, "contested", None)
            or getattr(m, "granted", None)
        )

    # -- recovery --------------------------------------------------------

    def _declare_step(self, m: FTMasterLocal, msg: Msg) -> Step:
        payload = msg.payload
        assert isinstance(payload, tuple)
        victim = str(payload[0])
        if victim in m.dead:
            return Step(
                actor=self.name,
                label=f"fd({victim}: already declared)",
                next_state=m,
                consumed=msg,
            )
        mutation = self.cfg.mutation
        dead = m.dead | {victim}
        sends: list[Msg] = []

        # Void queued orders destined for the victim.
        pending = tuple(
            (dst, order) for dst, order in m.pending if dst != victim
        )
        voided_mids = frozenset(
            order[1]
            for dst, order in m.pending
            if dst == victim and isinstance(order[1], int)
        )

        # Split in-flight moves into untouched and victim-involved.
        keep: list[MoveRec] = []
        hit: list[MoveRec] = []
        for rec in m.outstanding:
            (hit if victim in (rec[1], rec[2]) else keep).append(rec)

        # Banked final results survive their owner iff they match the
        # ledger; otherwise they are stale and dropped.
        owned_t, _ = _view_get(m.view, victim)
        banked = dict(m.banked)
        keep_bank = banked.get(victim) == owned_t
        new_banked = (
            m.banked if keep_bank else _bank_set(m.banked, victim, None)
        )
        kept_bank_units: frozenset[int] = frozenset(
            u
            for slave, units in new_banked
            if slave in dead
            for u in units
        )

        contested = list(m.contested)
        pool = set(m.pool)
        contested_units: set[int] = set()
        for rec in hit:
            mid, src, dst, units = rec
            peer = dst if src == victim else src
            if peer in dead:
                # Both endpoints dead: the move cannot be resolved by an
                # ack; re-execute unless the work is already banked.
                pool.update(frozenset(units) - kept_bank_units)
                continue
            if mid in voided_mids:
                # The peer never saw its half of the order; still cancel
                # so the mid is voided everywhere and acked uniformly.
                pass
            if mutation == "sweep_contested":
                pool.update(units)
            contested_units.update(units)
            contested.append(rec)
            if mutation != "drop_cancel":
                sends.append(
                    Msg(self.name, peer, "lb.ctrl", ("cancel", mid))
                )
        # A previously contested move whose surviving peer just died can
        # no longer be acked: resolve it to the pool.
        still_contested: list[MoveRec] = []
        for rec in contested:
            mid, src, dst, units = rec
            if src in dead and dst in dead:
                pool.update(frozenset(units) - kept_bank_units)
            else:
                still_contested.append(rec)

        # Sweep the victim's non-contested ledger units for re-execution
        # (skip entirely when its final result is banked).
        if not keep_bank:
            sweep = frozenset(owned_t) - frozenset(contested_units)
            pool.update(sweep)

        # Unacked grants to the victim are part of its swept ledger.
        granted = tuple(g for g in m.granted if g[0] != victim)

        if mutation == "forget_regrant":
            pool = set(m.pool)

        nxt = m._replace(
            view=m.view,
            parked=m.parked - {victim},
            pending=pending,
            outstanding=tuple(keep),
            banked=new_banked,
            dead=dead,
            pool=frozenset(pool),
            contested=tuple(still_contested),
            granted=granted,
        )
        nxt = self._finish(nxt, sends)
        return Step(
            actor=self.name,
            label=f"declare_dead({victim})",
            next_state=nxt,
            consumed=msg,
            sends=tuple(sends),
        )

    def _ack_steps(self, m: FTMasterLocal, msg: Msg) -> Iterable[Step]:
        payload = msg.payload
        assert isinstance(payload, tuple)
        if payload[0] == "ack_grant":
            units = payload[1]
            granted = tuple(
                g for g in m.granted if g != (msg.src, units)
            )
            nxt = m._replace(granted=granted)
            sends: list[Msg] = []
            label = f"ack_grant({msg.src})"
            banked = dict(nxt.banked)
            owned_t, _ = _view_get(nxt.view, msg.src)
            if msg.src in nxt.parked and banked.get(msg.src) != owned_t:
                # The grantee parked on a stale done-report; wake it.
                nxt = nxt._replace(parked=nxt.parked - {msg.src})
                sends.append(Msg(self.name, msg.src, "lb.instr", ("noop",)))
                label += " + wake"
            nxt = self._finish(nxt, sends)
            yield Step(
                actor=self.name,
                label=label,
                next_state=nxt,
                consumed=msg,
                sends=tuple(sends),
            )
            return
        _, mid, status = payload
        rec = next((r for r in m.contested if r[0] == mid), None)
        if rec is None:
            yield Step(
                actor=self.name,
                label=f"ack(m{mid}: stale, dropped)",
                next_state=m,
                consumed=msg,
            )
            return
        _, src, dst, units = rec
        u = frozenset(units)
        nxt = m._replace(
            contested=tuple(r for r in m.contested if r[0] != mid)
        )
        if status == "applied":
            if dst in m.dead:
                # Live sender shipped into a tombstone: reclaim.
                nxt = nxt._replace(
                    pool=nxt.pool | u,
                    view=_view_adjust(nxt.view, dst, drop=u),
                )
            # else: src dead, live dst applied — ledger credited the
            # units to dst at issue time; nothing to do.
        else:  # canceled
            if dst in m.dead:
                # Live sender never shipped: undo the issue-time debit.
                nxt = nxt._replace(
                    view=_view_adjust(
                        _view_adjust(nxt.view, dst, drop=u),
                        src,
                        add=u,
                    )
                )
            else:
                # Dead sender, live receiver canceled: units lost with
                # the sender; reclaim for re-execution.
                nxt = nxt._replace(
                    pool=nxt.pool | u,
                    view=_view_adjust(nxt.view, dst, drop=u),
                )
        sends2: list[Msg] = []
        nxt = self._finish(nxt, sends2)
        yield Step(
            actor=self.name,
            label=f"ack(m{mid}: {status})",
            next_state=nxt,
            consumed=msg,
            sends=tuple(sends2),
        )

    def _grant_step(self, m: FTMasterLocal) -> Step:
        target = sorted(self._live(m))[0]
        units = tuple(sorted(m.pool))
        nxt = m._replace(
            pool=frozenset(),
            view=_view_adjust(m.view, target, add=frozenset(units)),
            granted=m.granted + ((target, units),),
        )
        return Step(
            actor=self.name,
            label=f"grant {units} -> {target}",
            next_state=nxt,
            sends=(Msg(self.name, target, "lb.ctrl", ("grant", units)),),
        )

    # -- dispatch --------------------------------------------------------

    def steps(
        self, local: Hashable, pending: tuple[Msg, ...]
    ) -> Iterable[Step]:
        m = local
        assert isinstance(m, FTMasterLocal)
        for msg in selective(pending, lambda x: x.tag == "fd.crash"):
            yield self._declare_step(m, msg)
        if m.phase != "run":
            return
        for msg in selective(
            pending,
            lambda x: x.tag in ("lb.status", "lb.ack") and x.src in m.dead,
        ):
            yield Step(
                actor=self.name,
                label=f"drop ghost {msg.tag} from {msg.src}",
                next_state=m,
                consumed=msg,
            )
        for msg in selective(
            pending,
            lambda x: x.tag == "lb.status" and x.src not in m.dead,
        ):
            yield from self._status_steps(m, msg)
        for msg in selective(
            pending, lambda x: x.tag == "lb.ack" and x.src not in m.dead
        ):
            yield from self._ack_steps(m, msg)
        if m.pool and self._live(m):
            yield self._grant_step(m)


def build_model(
    cfg: FTConfig | None = None, mutation: str | None = None
) -> Model:
    """Build the FT-plane model for one configuration."""
    cfg = cfg or FTConfig()
    if mutation is not None:
        if mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutation!r}")
        cfg = FTConfig(
            n_slaves=cfg.n_slaves,
            units=cfg.units,
            moves=cfg.moves,
            shape=cfg.shape,
            mutation=mutation,
            crashable=cfg.crashable,
        )
    name = (
        f"ft-p{cfg.n_slaves}-u{cfg.units}-m{cfg.moves}"
        f"-x{len(cfg.crashable)}"
    )
    if cfg.mutation:
        name += f"!{cfg.mutation}"
    actors = [FTMaster(cfg)] + [
        FTSlave(n, cfg, i) for i, n in enumerate(cfg.slave_names())
    ]
    return Model(
        name=name,
        plane="ft",
        actors=actors,  # type: ignore[arg-type]
        invariants=[unit_conservation(cfg)],
        terminal=_terminal_map(cfg),
        dead_of=lambda locals_: getattr(
            locals_[MASTER], "dead", frozenset()
        ),
        notes=(
            "accurate failure detector (fd.crash oracle); crashes are "
            "fail-stop; suspicion grace and retransmission are runtime "
            "concerns outside this model"
        ),
    )
