"""Fault plans: declarative, seeded descriptions of injected failures.

A :class:`FaultPlan` schedules every perturbation a chaos run applies to
the simulated cluster:

- :class:`MessageFault` — probabilistic message **drop**, **duplicate**,
  **delay**, or **reorder** on the wire, optionally filtered by tag
  prefix, endpoints, and a time window;
- :class:`SlaveCrash` — a slave's host dies permanently at a point in
  virtual time;
- :class:`SlaveStall` — a slave freezes (no CPU progress, no message
  handling) for a window, then resumes with its state intact;
- :class:`LinkPartition` — the master--slave link for one slave drops
  every message in both directions for a window.

Plans are plain frozen dataclasses, JSON round-trippable
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`), and fully
deterministic: the plan's ``seed`` drives every probabilistic decision
in :class:`~repro.faults.injector.FaultInjector`, so the same plan over
the same run replays the same faults.

Crash and stall times may be given as a fraction of a *horizon* (the
fault-free elapsed time of the same run); :meth:`FaultPlan.resolved`
pins them to absolute virtual times.  Named built-in plans
(:func:`named_plan`) cover the chaos suite's standard scenarios.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

from ..errors import FaultPlanError

__all__ = [
    "MESSAGE_FAULT_KINDS",
    "NAMED_PLANS",
    "FaultPlan",
    "LinkPartition",
    "MessageFault",
    "SlaveCrash",
    "SlaveStall",
    "TransportPolicy",
    "load_plan",
    "named_plan",
]

MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay", "reorder")


def _check_window(t_start: float, t_end: float, what: str) -> None:
    if math.isnan(t_start) or math.isnan(t_end):
        raise FaultPlanError(f"{what}: NaN time window")
    if t_start < 0:
        raise FaultPlanError(f"{what}: window start must be >= 0, got {t_start}")
    if t_end < t_start:
        raise FaultPlanError(f"{what}: window [{t_start}, {t_end}] reversed")


@dataclass(frozen=True)
class MessageFault:
    """One probabilistic message perturbation on the wire.

    ``kind`` is one of ``drop`` (the copy never arrives; the transport
    layer retransmits), ``duplicate`` (two copies arrive; the receiver
    deduplicates), ``delay`` (arrival late by ``delay`` seconds), or
    ``reorder`` (held back by ``delay`` seconds so later messages on the
    same link overtake it).  ``probability`` applies independently per
    wire transmission; ``tag_prefix``/``src``/``dst`` and the
    ``[t_start, t_end)`` window filter which messages are eligible.
    """

    kind: str
    probability: float = 1.0
    tag_prefix: str | None = None
    src: int | None = None
    dst: int | None = None
    t_start: float = 0.0
    t_end: float = math.inf
    delay: float = 0.005

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown message-fault kind {self.kind!r}; "
                f"choices: {', '.join(MESSAGE_FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"message-fault probability must be in [0, 1], got {self.probability}"
            )
        if self.delay < 0:
            raise FaultPlanError(f"message-fault delay must be >= 0, got {self.delay}")
        _check_window(self.t_start, self.t_end, "message fault")

    def applies(self, src: int, dst: int, tag: str, t: float) -> bool:
        """Is a message ``src -> dst`` with ``tag`` sent at ``t`` eligible?"""
        if not self.t_start <= t < self.t_end:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return self.tag_prefix is None or tag.startswith(self.tag_prefix)


@dataclass(frozen=True)
class SlaveCrash:
    """Slave ``pid``'s host dies permanently.

    Exactly one of ``at`` (absolute virtual time) or ``at_fraction``
    (fraction of the run's fault-free elapsed time; needs
    :meth:`FaultPlan.resolved`) must be given.
    """

    pid: int
    at: float | None = None
    at_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise FaultPlanError(f"crash pid must be >= 0, got {self.pid}")
        if (self.at is None) == (self.at_fraction is None):
            raise FaultPlanError("crash needs exactly one of at/at_fraction")
        if self.at is not None and self.at < 0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at}")
        if self.at_fraction is not None and not 0.0 <= self.at_fraction <= 1.0:
            raise FaultPlanError(
                f"crash at_fraction must be in [0, 1], got {self.at_fraction}"
            )


@dataclass(frozen=True)
class SlaveStall:
    """Slave ``pid`` freezes for ``duration`` seconds, then resumes."""

    pid: int
    duration: float
    at: float | None = None
    at_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise FaultPlanError(f"stall pid must be >= 0, got {self.pid}")
        if self.duration <= 0:
            raise FaultPlanError(f"stall duration must be > 0, got {self.duration}")
        if (self.at is None) == (self.at_fraction is None):
            raise FaultPlanError("stall needs exactly one of at/at_fraction")
        if self.at is not None and self.at < 0:
            raise FaultPlanError(f"stall time must be >= 0, got {self.at}")
        if self.at_fraction is not None and not 0.0 <= self.at_fraction <= 1.0:
            raise FaultPlanError(
                f"stall at_fraction must be in [0, 1], got {self.at_fraction}"
            )


@dataclass(frozen=True)
class LinkPartition:
    """The master--slave link for slave ``pid`` drops everything in
    ``[t_start, t_end)``, both directions."""

    pid: int
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise FaultPlanError(f"partition pid must be >= 0, got {self.pid}")
        _check_window(self.t_start, self.t_end, "link partition")


@dataclass(frozen=True)
class TransportPolicy:
    """Retransmission policy of the reliable transport layer.

    A dropped wire transmission is retried after ``rto * backoff**k``
    seconds (attempt ``k``), up to ``max_retries`` attempts; after that
    the message is lost for good and recovery is the runtime's problem
    (heartbeat timeouts and work reassignment).
    """

    rto: float = 0.05
    backoff: float = 2.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.rto <= 0:
            raise FaultPlanError(f"transport rto must be > 0, got {self.rto}")
        if self.backoff < 1.0:
            raise FaultPlanError(f"transport backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise FaultPlanError(
                f"transport max_retries must be >= 0, got {self.max_retries}"
            )

    def delay_for(self, attempt: int) -> float:
        """Backoff delay before retransmission attempt ``attempt`` (1-based)."""
        return self.rto * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class FaultPlan:
    """Everything a chaos run injects, plus the seed that replays it."""

    seed: int = 0
    message_faults: tuple[MessageFault, ...] = ()
    crashes: tuple[SlaveCrash, ...] = ()
    stalls: tuple[SlaveStall, ...] = ()
    partitions: tuple[LinkPartition, ...] = ()
    transport: TransportPolicy = field(default_factory=TransportPolicy)
    name: str = ""

    def __post_init__(self) -> None:
        crashed = [c.pid for c in self.crashes]
        if len(crashed) != len(set(crashed)):
            raise FaultPlanError(f"duplicate crash pids: {sorted(crashed)}")

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.message_faults or self.crashes or self.stalls or self.partitions
        )

    @property
    def needs_horizon(self) -> bool:
        """True when any crash/stall time is still a run fraction."""
        return any(c.at_fraction is not None for c in self.crashes) or any(
            s.at_fraction is not None for s in self.stalls
        )

    def resolved(self, horizon: float) -> "FaultPlan":
        """Pin fractional crash/stall times against ``horizon`` seconds."""
        if horizon <= 0:
            raise FaultPlanError(f"horizon must be positive, got {horizon}")
        crashes = tuple(
            c
            if c.at_fraction is None
            else replace(c, at=c.at_fraction * horizon, at_fraction=None)
            for c in self.crashes
        )
        stalls = tuple(
            s
            if s.at_fraction is None
            else replace(s, at=s.at_fraction * horizon, at_fraction=None)
            for s in self.stalls
        )
        return replace(self, crashes=crashes, stalls=stalls)

    def validate_for(self, n_slaves: int) -> None:
        """Check every targeted pid is a slave of an ``n_slaves`` cluster."""
        for what, pids in (
            ("crash", [c.pid for c in self.crashes]),
            ("stall", [s.pid for s in self.stalls]),
            ("partition", [p.pid for p in self.partitions]),
        ):
            for pid in pids:
                if pid >= n_slaves:
                    raise FaultPlanError(
                        f"{what} targets pid {pid} but the cluster has only "
                        f"{n_slaves} slaves (the master cannot be faulted; "
                        f"it is the documented single point of failure)"
                    )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-safe dict (``inf`` windows become the string ``"inf"``)."""

        def _t(value: float) -> float | str:
            return "inf" if math.isinf(value) else value

        return {
            "schema": "repro.faults.plan/1",
            "name": self.name,
            "seed": self.seed,
            "message_faults": [
                {
                    "kind": m.kind,
                    "probability": m.probability,
                    "tag_prefix": m.tag_prefix,
                    "src": m.src,
                    "dst": m.dst,
                    "t_start": _t(m.t_start),
                    "t_end": _t(m.t_end),
                    "delay": m.delay,
                }
                for m in self.message_faults
            ],
            "crashes": [
                {"pid": c.pid, "at": c.at, "at_fraction": c.at_fraction}
                for c in self.crashes
            ],
            "stalls": [
                {
                    "pid": s.pid,
                    "duration": s.duration,
                    "at": s.at,
                    "at_fraction": s.at_fraction,
                }
                for s in self.stalls
            ],
            "partitions": [
                {"pid": p.pid, "t_start": _t(p.t_start), "t_end": _t(p.t_end)}
                for p in self.partitions
            ],
            "transport": {
                "rto": self.transport.rto,
                "backoff": self.transport.backoff,
                "max_retries": self.transport.max_retries,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (tolerates missing optional keys)."""

        def _time(value: object, default: float) -> float:
            if value is None:
                return default
            if isinstance(value, str):
                if value == "inf":
                    return math.inf
                raise FaultPlanError(f"bad time value {value!r}")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise FaultPlanError(f"bad time value {value!r}")
            return float(value)

        def _opt_float(value: object) -> float | None:
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise FaultPlanError(f"expected a number, got {value!r}")
            return float(value)

        def _opt_int(value: object) -> int | None:
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, int):
                raise FaultPlanError(f"expected an integer, got {value!r}")
            return value

        def _int(value: object, what: str) -> int:
            out = _opt_int(value)
            if out is None:
                raise FaultPlanError(f"{what} is required")
            return out

        def _rows(key: str) -> list[Mapping[str, object]]:
            raw = data.get(key, [])
            if not isinstance(raw, list):
                raise FaultPlanError(f"{key} must be a list")
            rows: list[Mapping[str, object]] = []
            for row in raw:
                if not isinstance(row, Mapping):
                    raise FaultPlanError(f"{key} entries must be objects")
                rows.append(row)
            return rows

        message_faults = tuple(
            MessageFault(
                kind=str(row.get("kind", "")),
                probability=_time(row.get("probability", 1.0), 1.0),
                tag_prefix=(
                    None
                    if row.get("tag_prefix") is None
                    else str(row.get("tag_prefix"))
                ),
                src=_opt_int(row.get("src")),
                dst=_opt_int(row.get("dst")),
                t_start=_time(row.get("t_start"), 0.0),
                t_end=_time(row.get("t_end"), math.inf),
                delay=_time(row.get("delay"), 0.005),
            )
            for row in _rows("message_faults")
        )
        crashes = tuple(
            SlaveCrash(
                pid=_int(row.get("pid"), "crash pid"),
                at=_opt_float(row.get("at")),
                at_fraction=_opt_float(row.get("at_fraction")),
            )
            for row in _rows("crashes")
        )
        stalls = tuple(
            SlaveStall(
                pid=_int(row.get("pid"), "stall pid"),
                duration=_time(row.get("duration"), 0.0),
                at=_opt_float(row.get("at")),
                at_fraction=_opt_float(row.get("at_fraction")),
            )
            for row in _rows("stalls")
        )
        partitions = tuple(
            LinkPartition(
                pid=_int(row.get("pid"), "partition pid"),
                t_start=_time(row.get("t_start"), 0.0),
                t_end=_time(row.get("t_end"), math.inf),
            )
            for row in _rows("partitions")
        )
        transport_raw = data.get("transport", {})
        transport = TransportPolicy()
        if isinstance(transport_raw, Mapping):
            transport = TransportPolicy(
                rto=_time(transport_raw.get("rto"), 0.05),
                backoff=_time(transport_raw.get("backoff"), 2.0),
                max_retries=int(_time(transport_raw.get("max_retries"), 8)),
            )
        return cls(
            seed=int(_time(data.get("seed", 0), 0.0)),
            message_faults=message_faults,
            crashes=crashes,
            stalls=stalls,
            partitions=partitions,
            transport=transport,
            name=str(data.get("name", "")),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, Mapping):
            raise FaultPlanError(f"expected a JSON object in {path}")
        return cls.from_dict(data)


def _builtin_plans(seed: int) -> dict[str, FaultPlan]:
    return {
        "none": FaultPlan(seed=seed, name="none"),
        "message-light": FaultPlan(
            seed=seed,
            name="message-light",
            message_faults=(
                MessageFault(kind="drop", probability=0.05),
                MessageFault(kind="delay", probability=0.05, delay=0.01),
            ),
        ),
        "message-heavy": FaultPlan(
            seed=seed,
            name="message-heavy",
            message_faults=(
                MessageFault(kind="drop", probability=0.2),
                MessageFault(kind="duplicate", probability=0.15),
                MessageFault(kind="delay", probability=0.2, delay=0.02),
                MessageFault(kind="reorder", probability=0.1, delay=0.01),
            ),
        ),
        "dup-reorder": FaultPlan(
            seed=seed,
            name="dup-reorder",
            message_faults=(
                MessageFault(kind="duplicate", probability=0.25),
                MessageFault(kind="reorder", probability=0.25, delay=0.01),
            ),
        ),
        "one-crash": FaultPlan(
            seed=seed,
            name="one-crash",
            crashes=(SlaveCrash(pid=1, at_fraction=0.4),),
        ),
        "stall": FaultPlan(
            seed=seed,
            name="stall",
            stalls=(SlaveStall(pid=0, at_fraction=0.3, duration=1.5),),
        ),
        "partition": FaultPlan(
            seed=seed,
            name="partition",
            partitions=(LinkPartition(pid=0, t_start=2.0, t_end=4.0),),
        ),
    }


NAMED_PLANS = tuple(sorted(_builtin_plans(0)))
"""Names accepted by :func:`named_plan` (and the CLI's ``--faults``)."""


def named_plan(name: str, seed: int = 0) -> FaultPlan:
    """A built-in plan by name, with every decision driven by ``seed``."""
    plans = _builtin_plans(seed)
    if name not in plans:
        raise FaultPlanError(
            f"unknown fault plan {name!r}; choices: {', '.join(sorted(plans))}"
        )
    return plans[name]


def load_plan(name_or_path: str, seed: int = 0) -> FaultPlan:
    """Resolve ``--faults`` arguments: a built-in name or a JSON file."""
    if name_or_path in _builtin_plans(seed):
        return named_plan(name_or_path, seed)
    path = Path(name_or_path)
    if path.exists():
        plan = FaultPlan.load(path)
        return replace(plan, seed=seed) if seed != 0 else plan
    raise FaultPlanError(
        f"--faults wants a built-in plan name or a JSON file; "
        f"{name_or_path!r} is neither (names: {', '.join(NAMED_PLANS)})"
    )
