"""Deterministic fault injector: a resolved plan applied to a run.

The :class:`FaultInjector` is the only object the simulator talks to.
It is seeded from the plan, so given the same plan and the same message
sequence it makes the same decisions — chaos runs replay exactly.

The injector deliberately knows nothing about the simulator's classes;
it consumes plain ``(src, dst, tag, t)`` tuples and returns value
objects, which keeps this package importable under ``mypy --strict``
without dragging the untyped ``sim`` layer into the perimeter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import FaultPlanError
from .plan import FaultPlan, TransportPolicy

__all__ = ["FaultInjector", "WireFate"]


@dataclass(frozen=True)
class WireFate:
    """What happens to one wire transmission.

    ``dropped`` means this transmission never arrives (the transport
    layer will retransmit).  Otherwise ``extra_delays`` holds one entry
    per arriving copy — ``(0.0,)`` for a clean delivery, two entries for
    a duplicate, a positive entry for a delayed/reordered copy.
    ``kinds`` names the message-fault kinds that fired, for obs events.
    """

    extra_delays: tuple[float, ...] = (0.0,)
    dropped: bool = False
    kinds: tuple[str, ...] = ()

    @property
    def faulted(self) -> bool:
        return self.dropped or bool(self.kinds)


_CLEAN = WireFate()


class FaultInjector:
    """Applies a resolved :class:`FaultPlan` to a run, deterministically."""

    def __init__(self, plan: FaultPlan, master_pid: int) -> None:
        if plan.needs_horizon:
            raise FaultPlanError(
                "fault plan still has fractional crash/stall times; call "
                "FaultPlan.resolved(horizon) before building the injector"
            )
        self.plan = plan
        self.master_pid = master_pid
        self._rng = random.Random(plan.seed ^ 0x5EED_FA17)
        self._stalls = tuple(
            (s.pid, s.at if s.at is not None else 0.0, s.duration) for s in plan.stalls
        )

    @property
    def transport(self) -> TransportPolicy:
        return self.plan.transport

    # -- message path ----------------------------------------------------

    def _partitioned(self, src: int, dst: int, t: float) -> bool:
        for p in self.plan.partitions:
            if not p.t_start <= t < p.t_end:
                continue
            pair = {src, dst}
            if pair == {p.pid, self.master_pid}:
                return True
        return False

    def on_message(self, src: int, dst: int, tag: str, t: float) -> WireFate:
        """Decide the fate of one wire transmission sent at time ``t``.

        Called for every transmission, including retransmissions, so a
        retried message can be dropped again.  Consumes randomness in
        plan order regardless of outcome, keeping decisions aligned
        across runs that share a plan.
        """
        if self._partitioned(src, dst, t):
            return WireFate(dropped=True, kinds=("partition",))
        if not self.plan.message_faults:
            return _CLEAN
        extra = 0.0
        copies = 1
        kinds: list[str] = []
        for fault in self.plan.message_faults:
            roll = self._rng.random()
            if roll >= fault.probability or not fault.applies(src, dst, tag, t):
                continue
            kinds.append(fault.kind)
            if fault.kind == "drop":
                return WireFate(dropped=True, kinds=tuple(kinds))
            if fault.kind == "duplicate":
                copies += 1
            else:  # delay / reorder: hold the message back
                extra += fault.delay
        if not kinds:
            return _CLEAN
        return WireFate(
            extra_delays=tuple([extra] * copies), dropped=False, kinds=tuple(kinds)
        )

    # -- host faults -----------------------------------------------------

    def crash_times(self) -> tuple[tuple[int, float], ...]:
        """``(pid, time)`` for every scheduled permanent crash."""
        return tuple(
            (c.pid, c.at if c.at is not None else 0.0) for c in self.plan.crashes
        )

    def stall_clamp(self, pid: int, t: float) -> float:
        """Earliest time ``pid`` may make progress, given time ``t``.

        Returns ``t`` unchanged when the pid is not inside a stall
        window; otherwise the window's end.  Windows are applied
        repeatedly so back-to-back stalls compose.
        """
        out = t
        for spid, at, duration in self._stalls:
            if spid == pid and at <= out < at + duration:
                out = at + duration
        return out

    def stall_windows(self, pid: int) -> tuple[tuple[float, float], ...]:
        """``(start, end)`` stall windows for ``pid``, for diagnostics."""
        return tuple(
            (at, at + duration) for spid, at, duration in self._stalls if spid == pid
        )
