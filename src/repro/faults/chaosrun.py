"""Picklable chaos-matrix cells for orchestrated fan-out.

``repro chaos`` submits one job per application to
:func:`repro.orchestrator.submit_sweep`; each job runs that app's
fault-free baseline once and then every fault-plan cell against it,
returning plain JSON-safe cell dicts.  Keeping baseline + cells inside
one job preserves the original semantics (one baseline run per app) and
makes the job deterministic in its parameters — which is what lets the
orchestrator's content-hash cache serve repeated chaos cells for free.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from ..config import CheckpointConfig, ClusterSpec, RunConfig

__all__ = ["chaos_app_cells", "chaos_hier_cells", "chaos_strategy_cells"]


def _results_identical(a: object, b: object) -> bool:
    """Deep bit-identity between two run results (dicts/arrays/None)."""
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _results_identical(a[k], b[k]) for k in a
        )
    if a is None or b is None:
        return a is b
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))


def _build_plan(app: str, n: int, n_slaves: int) -> Any:
    from ..apps import REGISTRY

    return REGISTRY[app](n=n, n_slaves_hint=n_slaves)


def chaos_app_cells(
    app: str,
    plans: list[str],
    n: int,
    slaves: int,
    seed: int,
    fault_seed: int,
    ckpt: bool = False,
    ckpt_interval: float | None = None,
    ckpt_placement: str | None = None,
    reports_dir: str | None = None,
) -> list[dict[str, Any]]:
    """One app's row of the central chaos matrix (baseline + each plan).

    Message-only plans must leave results bit-identical to the fault-free
    baseline; crash plans must recover (or be legitimately lost when the
    effective configuration cannot recover).  Cell dicts match the
    historical ``repro chaos`` output schema exactly.
    """
    from ..errors import SlaveLostError
    from ..faults import load_plan
    from ..obs import Recorder
    from ..runtime import run_application
    from ..runtime.launcher import resolve_run_cfg
    from ..runtime.master import can_recover

    defaults = CheckpointConfig()
    plan = _build_plan(app, n, slaves)
    cfg = RunConfig(
        cluster=ClusterSpec(n_slaves=slaves),
        ckpt=CheckpointConfig(
            enabled=ckpt,
            interval=ckpt_interval if ckpt_interval is not None else defaults.interval,
            placement=ckpt_placement or defaults.placement,
        ),
    )
    base = run_application(plan, cfg, seed=seed)
    base_result = base.result
    if reports_dir is not None:
        os.makedirs(reports_dir, exist_ok=True)
    cells: list[dict[str, Any]] = []
    for pname in plans:
        fault_plan = load_plan(pname, seed=fault_seed)
        if fault_plan.needs_horizon:
            fault_plan = fault_plan.resolved(base.elapsed)
        recorder = Recorder() if reports_dir is not None else None
        cell: dict[str, Any] = {"app": app, "plan": pname}
        has_crash = bool(fault_plan.crashes)
        recoverable = can_recover(plan, resolve_run_cfg(cfg, plan, fault_plan))
        try:
            res = run_application(
                plan, cfg, seed=seed, faults=fault_plan, recorder=recorder
            )
        except SlaveLostError as exc:
            if has_crash and not recoverable:
                cell["outcome"] = "lost-expected"
                cell["detail"] = str(exc)
            else:
                cell["outcome"] = "FAILED"
                cell["detail"] = f"unexpected SlaveLostError: {exc}"
        else:
            identical = _results_identical(res.result, base_result)
            cell["bit_identical"] = identical
            cell["retransmits"] = res.retransmits
            cell["messages_lost"] = res.messages_lost
            cell["dead_pids"] = list(res.dead_pids)
            cell["elapsed"] = res.elapsed
            cell["rollbacks"] = res.log.rollbacks
            cell["units_restored"] = res.log.units_restored
            cell["ckpt_epochs_committed"] = res.log.ckpt_epochs_committed
            cell["ckpt_snapshots"] = res.log.ckpt_snapshots
            if identical:
                cell["outcome"] = "recovered" if res.dead_pids else "identical"
            else:
                cell["outcome"] = "FAILED"
                cell["detail"] = "results diverged from fault-free baseline"
            if recorder is not None and reports_dir is not None:
                res.make_report().save(
                    os.path.join(reports_dir, f"{app}-{pname}.json")
                )
        cells.append(cell)
    return cells


def chaos_hier_cells(
    app: str,
    n: int,
    slaves: int,
    fanout: int,
    seed: int,
) -> dict[str, Any]:
    """One app's row of the hierarchical sub-master-crash matrix.

    Returns ``{"app", "skipped", "cells"}``; ``skipped`` names the loop
    shape when the app has no hierarchical plane (PIPELINE /
    REDUCTION_FRONT), in which case ``cells`` is empty.
    """
    from ..compiler.plan import LoopShape
    from ..faults import FaultPlan, SlaveCrash
    from ..scale import build_tree, hier_can_recover, run_hierarchical

    plan = _build_plan(app, n, slaves)
    if plan.shape is not LoopShape.PARALLEL_MAP:
        return {"app": app, "skipped": plan.shape.name, "cells": []}
    cfg = RunConfig(cluster=ClusterSpec(n_slaves=slaves))
    tree = build_tree(slaves, fanout)
    base = run_hierarchical(plan, cfg, fanout=fanout, seed=seed)
    targets = [
        ("first-submaster", tree.internal[0], 0.4),
        ("last-submaster", tree.internal[-1], 0.6),
    ]
    cells: list[dict[str, Any]] = []
    for label, pid, frac in targets:
        faults = FaultPlan(
            name=f"hier-{label}",
            crashes=(SlaveCrash(pid=pid, at=frac * base.elapsed),),
        )
        assert hier_can_recover(tree, faults)
        cell: dict[str, Any] = {
            "app": app,
            "plan": f"hier-{label}",
            "fanout": fanout,
            "crash_pid": pid,
        }
        res = run_hierarchical(plan, cfg, fanout=fanout, seed=seed, faults=faults)
        identical = _results_identical(res.result, base.result)
        cell["bit_identical"] = identical
        cell["deaths"] = res.deaths
        cell["reparents"] = res.reparents
        cell["dead_pids"] = list(res.dead_pids)
        cell["elapsed"] = res.elapsed
        if identical and res.deaths >= 1 and res.reparents >= 1:
            cell["outcome"] = "recovered"
        else:
            cell["outcome"] = "FAILED"
            cell["detail"] = (
                "results diverged from fault-free baseline"
                if not identical
                else "crash did not exercise the failure detector"
            )
        cells.append(cell)
    return {"app": app, "skipped": None, "cells": cells}


def _results_close(a: object, b: object) -> bool:
    """Numerical closeness between two run results (dicts/arrays/None).

    Strategy planes merge per-chunk partial results whose summation
    order depends on the (fault-dependent) unit-to-worker assignment, so
    bit identity is the wrong bar; closeness is.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_results_close(a[k], b[k]) for k in a)
    if a is None or b is None:
        return a is b
    return bool(np.allclose(np.asarray(a), np.asarray(b)))


def chaos_strategy_cells(
    app: str,
    strategy: str,
    n: int,
    slaves: int,
    seed: int,
) -> dict[str, Any]:
    """One app's row of the robust-strategy crash matrix.

    Crashes one worker mid-run under ``strategy`` (``stealing`` or
    ``rdlb``) and checks the contract those planes promise: the run
    terminates (never hangs), the crash is detected, and the outcome is
    either full recovery (all units complete, result numerically equal
    to the fault-free baseline — rDLB reassigns the dead worker's
    chunks) or an explicit loss report (work stealing gives up the dead
    worker's un-gathered units as ``lost_units``, with the survivors'
    partial result intact).  Silent divergence or a hang is a failure.

    Returns ``{"app", "strategy", "skipped", "cells"}`` with the same
    shape as :func:`chaos_hier_cells`.
    """
    from ..compiler.plan import LoopShape
    from ..errors import SimulationError
    from ..faults import FaultPlan, SlaveCrash
    from ..strategies import run_strategy

    plan = _build_plan(app, n, slaves)
    if plan.shape is not LoopShape.PARALLEL_MAP:
        return {"app": app, "strategy": strategy, "skipped": plan.shape.name, "cells": []}
    cfg = RunConfig(cluster=ClusterSpec(n_slaves=slaves))
    base = run_strategy(strategy, plan, cfg, seed=seed)
    lo, hi = plan.unit_space()
    total = hi - lo
    # Worker pids are 0..slaves-1 in the strategy planes (the master /
    # coordinator sits at pid == slaves and cannot be faulted).
    targets = [
        ("early-crash", 1 % slaves, 0.25),
        ("late-crash", slaves - 1, 0.6),
    ]
    cells: list[dict[str, Any]] = []
    for label, pid, frac in targets:
        faults = FaultPlan(
            name=f"{strategy}-{label}",
            crashes=(SlaveCrash(pid=pid, at=frac * base.elapsed),),
        )
        cell: dict[str, Any] = {
            "app": app,
            "strategy": strategy,
            "plan": f"{strategy}-{label}",
            "crash_pid": pid,
        }
        try:
            res = run_strategy(strategy, plan, cfg, seed=seed, faults=faults)
        except SimulationError as exc:
            cell["outcome"] = "FAILED"
            cell["detail"] = f"simulation did not terminate cleanly: {exc}"
            cells.append(cell)
            continue
        close = _results_close(res.result, base.result)
        cell["deaths"] = res.deaths
        cell["dead_pids"] = list(res.dead_pids)
        cell["lost_units"] = res.lost_units
        cell["elapsed"] = res.elapsed
        cell["result_matches_baseline"] = close
        if not res.dead_pids:
            cell["outcome"] = "FAILED"
            cell["detail"] = "crash did not land before the run finished"
        elif res.lost_units == 0 and close:
            cell["outcome"] = "recovered"
        elif 0 < res.lost_units < total:
            cell["outcome"] = "lost-expected"
            cell["detail"] = (
                f"{res.lost_units}/{total} units lost with the dead worker"
            )
        else:
            cell["outcome"] = "FAILED"
            cell["detail"] = (
                "results diverged from fault-free baseline"
                if res.lost_units == 0
                else f"implausible loss: {res.lost_units}/{total} units"
            )
        cells.append(cell)
    return {"app": app, "strategy": strategy, "skipped": None, "cells": cells}
