"""Self-chaos: fault injection aimed at the orchestrator itself.

The rest of ``repro.faults`` injects failures into the *simulated*
cluster.  :class:`SelfChaos` instead injects real process failures into
``repro.orchestrator`` sweeps — SIGKILLing a warm worker mid-job, or
the orchestrator process mid-sweep — which is how the resume and
retry machinery proves itself (the CI ``orchestrator`` job and
``tests/orchestrator/test_resume.py`` both drive it).

Specs parse from compact CLI strings::

    kill-worker:2                   # SIGKILL the worker running the 2nd dispatch
    kill-orchestrator:3             # SIGKILL the orchestrator after 3 jobs finish
    kill-worker:1,kill-orchestrator:4

Each trigger fires at most once per process: a resumed sweep is given a
fresh spec (or none) by its operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import FaultPlanError

__all__ = ["SelfChaos"]


@dataclass(frozen=True)
class SelfChaos:
    """Deterministic kill schedule for orchestrator self-testing.

    ``kill_worker_dispatch`` — 1-based pool-wide dispatch number whose
    worker is SIGKILLed at job start (the job is retried on a fresh
    worker).  ``kill_orchestrator_jobs`` — SIGKILL the orchestrator
    process itself once this many jobs have reached a final state (the
    sweep must then be resumed from the journal).
    """

    kill_worker_dispatch: int | None = None
    kill_orchestrator_jobs: int | None = None

    def __post_init__(self) -> None:
        for label, value in (
            ("kill-worker", self.kill_worker_dispatch),
            ("kill-orchestrator", self.kill_orchestrator_jobs),
        ):
            if value is not None and value < 1:
                raise FaultPlanError(f"self-chaos {label} wants a count >= 1")

    @property
    def empty(self) -> bool:
        """True when no trigger is armed."""
        return (
            self.kill_worker_dispatch is None
            and self.kill_orchestrator_jobs is None
        )

    @classmethod
    def parse(cls, text: str) -> "SelfChaos":
        """Parse the ``kill-worker:N,kill-orchestrator:M`` CLI syntax."""
        worker: int | None = None
        orchestrator: int | None = None
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, count = part.partition(":")
            if not sep:
                raise FaultPlanError(
                    f"self-chaos trigger {part!r} wants 'kind:count'"
                )
            try:
                n = int(count)
            except ValueError as exc:
                raise FaultPlanError(
                    f"self-chaos trigger {part!r}: bad count {count!r}"
                ) from exc
            if kind == "kill-worker":
                worker = n
            elif kind == "kill-orchestrator":
                orchestrator = n
            else:
                raise FaultPlanError(
                    f"unknown self-chaos trigger {kind!r}; "
                    "choices: kill-worker, kill-orchestrator"
                )
        return cls(kill_worker_dispatch=worker, kill_orchestrator_jobs=orchestrator)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe encoding."""
        return {
            "kill_worker_dispatch": self.kill_worker_dispatch,
            "kill_orchestrator_jobs": self.kill_orchestrator_jobs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SelfChaos":
        """Inverse of :meth:`to_dict`."""
        worker = data.get("kill_worker_dispatch")
        orch = data.get("kill_orchestrator_jobs")
        return cls(
            kill_worker_dispatch=int(worker) if worker is not None else None,
            kill_orchestrator_jobs=int(orch) if orch is not None else None,
        )
