"""Seeded, deterministic fault injection for the simulated cluster.

``repro.faults`` describes failures declaratively (:class:`FaultPlan`)
and applies them deterministically (:class:`FaultInjector`).  The
simulator consults the injector at transmission time; the
failure-tolerant runtime (heartbeats, retransmission, work
reassignment) is what makes the injected faults survivable.  See
``docs/fault-tolerance.md``.
"""

from .injector import FaultInjector, WireFate
from .plan import (
    NAMED_PLANS,
    FaultPlan,
    LinkPartition,
    MessageFault,
    SlaveCrash,
    SlaveStall,
    TransportPolicy,
    load_plan,
    named_plan,
)
from .selfchaos import SelfChaos

__all__ = [
    "NAMED_PLANS",
    "FaultInjector",
    "FaultPlan",
    "LinkPartition",
    "MessageFault",
    "SelfChaos",
    "SlaveCrash",
    "SlaveStall",
    "TransportPolicy",
    "WireFate",
    "load_plan",
    "named_plan",
]
